//! Offline stand-in for the `rand` crate, API- and stream-compatible with
//! the subset of rand 0.8 this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this crate (see `[patch.crates-io]` in the root
//! `Cargo.toml`). `SmallRng` is the same xoshiro256++ generator rand 0.8
//! ships on 64-bit targets, seeded through the same SplitMix64 expansion,
//! and `gen`/`gen_bool`/`gen_range` reproduce the 0.8 distribution
//! algorithms bit-for-bit so seeded tests keep their random streams.

pub mod distributions;
pub mod rngs;

pub use distributions::Distribution;

/// Core generator interface (mirrors `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generator interface (mirrors `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed material accepted by [`SeedableRng::from_seed`].
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it over the full seed.
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, as in rand_core 0.6.
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            for (b, out) in z.to_le_bytes().iter().zip(chunk.iter_mut()) {
                *out = *b;
            }
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
        Self: Sized,
    {
        distributions::Standard.sample(self)
    }

    /// Samples from the given distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T
    where
        Self: Sized,
    {
        distr.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let d = distributions::Bernoulli::new(p)
            .expect("gen_bool: probability must be in [0, 1]");
        self.sample(d)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: distributions::uniform::SampleUniform,
        R: distributions::uniform::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
