//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The small, fast generator of rand 0.8 on 64-bit targets:
/// xoshiro256++ by Blackman and Vigna.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        if seed.iter().all(|&b| b == 0) {
            // An all-zero state would be a fixed point; rand re-seeds via
            // SplitMix64(0) in this case.
            return Self::seed_from_u64(0);
        }
        for (i, chunk) in seed.chunks_exact(8).enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(w);
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u32(&mut self) -> u32 {
        // The low bits of xoshiro256++ have weak linear structure; rand
        // derives u32 values from the high half.
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn xoshiro256plusplus_reference_vector() {
        // Reference sequence from the xoshiro256++ C source with state
        // {1, 2, 3, 4}.
        let mut rng = SmallRng {
            s: [1, 2, 3, 4],
        };
        let expect: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expect {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(0xEC0);
        let mut b = SmallRng::seed_from_u64(0xEC0);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(0xEC1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u32 = rng.gen_range(0..5);
            assert!(w < 5);
            let x: i32 = rng.gen_range(-4..4);
            assert!((-4..4).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
        let hits = (0..4096).filter(|_| rng.gen_bool(0.5)).count();
        assert!((1500..2600).contains(&hits), "p=0.5 hits: {hits}");
    }
}
