//! Distributions, reproducing the rand 0.8 sampling algorithms.

use crate::{Rng, RngCore};

/// Types that can produce values of `T` from a generator.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: uniform over all values.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<u64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u8> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8 compares the most significant bit of a u32: the low
        // bits of some generators have visible structure.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        let fraction = rng.next_u64() >> 11;
        fraction as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
        let fraction = rng.next_u32() >> 8;
        fraction as f32 * (1.0 / ((1u32 << 24) as f32))
    }
}

/// Error returned by [`Bernoulli::new`] for probabilities outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BernoulliError;

impl std::fmt::Display for BernoulliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("p is outside [0, 1]")
    }
}

impl std::error::Error for BernoulliError {}

/// The Bernoulli distribution, with rand 0.8's fixed-point comparison.
#[derive(Debug, Clone, Copy)]
pub struct Bernoulli {
    p_int: u64,
}

const ALWAYS_TRUE: u64 = u64::MAX;
const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

impl Bernoulli {
    /// Creates a Bernoulli distribution returning `true` with probability
    /// `p`.
    ///
    /// # Errors
    ///
    /// Returns [`BernoulliError`] when `p` is outside `[0, 1]`.
    pub fn new(p: f64) -> Result<Bernoulli, BernoulliError> {
        if !(0.0..1.0).contains(&p) {
            if p == 1.0 {
                return Ok(Bernoulli { p_int: ALWAYS_TRUE });
            }
            return Err(BernoulliError);
        }
        Ok(Bernoulli {
            p_int: (p * SCALE) as u64,
        })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p_int == ALWAYS_TRUE {
            return true;
        }
        let v: u64 = rng.next_u64();
        v < self.p_int
    }
}

pub mod uniform {
    //! Uniform range sampling via widening multiply with rejection, the
    //! `UniformInt` algorithm of rand 0.8.

    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// Marker trait: integer types [`Rng::gen_range`] accepts.
    pub trait SampleUniform: Sized {
        /// Uniform sample from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform sample from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(
            low: Self,
            high: Self,
            rng: &mut R,
        ) -> Self;
    }

    /// Range types accepted by [`Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_single(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            assert!(start <= end, "cannot sample empty range");
            T::sample_single_inclusive(start, end, rng)
        }
    }

    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $sample:ident) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    Self::sample_single_inclusive(low, high - 1, rng)
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    let range = (high as $unsigned)
                        .wrapping_sub(low as $unsigned)
                        .wrapping_add(1);
                    if range == 0 {
                        // The full type range: every value accepted.
                        return rng.$sample() as $ty;
                    }
                    // Reject samples landing past the largest multiple of
                    // `range`, detected through the widening multiply low
                    // half (Lemire's method as used by rand 0.8).
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: $unsigned = rng.$sample() as $unsigned;
                        let (hi, lo) = widening_mul(v, range);
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    fn widening_mul_u32(a: u32, b: u32) -> (u32, u32) {
        let wide = a as u64 * b as u64;
        ((wide >> 32) as u32, wide as u32)
    }

    fn widening_mul_u64(a: u64, b: u64) -> (u64, u64) {
        let wide = a as u128 * b as u128;
        ((wide >> 64) as u64, wide as u64)
    }

    trait WideningMul: Sized {
        fn widening(self, other: Self) -> (Self, Self);
    }

    impl WideningMul for u32 {
        fn widening(self, other: Self) -> (Self, Self) {
            widening_mul_u32(self, other)
        }
    }

    impl WideningMul for u64 {
        fn widening(self, other: Self) -> (Self, Self) {
            widening_mul_u64(self, other)
        }
    }

    impl WideningMul for usize {
        fn widening(self, other: Self) -> (Self, Self) {
            let (hi, lo) = widening_mul_u64(self as u64, other as u64);
            (hi as usize, lo as usize)
        }
    }

    fn widening_mul<T: WideningMul>(a: T, b: T) -> (T, T) {
        a.widening(b)
    }

    uniform_int_impl! { i32, u32, next_u32 }
    uniform_int_impl! { u32, u32, next_u32 }
    uniform_int_impl! { i64, u64, next_u64 }
    uniform_int_impl! { u64, u64, next_u64 }
    uniform_int_impl! { usize, usize, next_u64 }
    uniform_int_impl! { u8, u32, next_u32 }
    uniform_int_impl! { u16, u32, next_u32 }
}
