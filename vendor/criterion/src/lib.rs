//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `criterion` to this crate. It implements the API subset the benches in
//! `crates/bench` use — groups, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple wall-clock measurement loop instead of the statistical
//! machinery of the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifier of a parameterized benchmark.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A new id from a function name and a parameter.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Measures `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up call, then timed samples.
        black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        iterations: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id}: no samples recorded");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{id}: median {median:?}, mean {mean:?} ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
