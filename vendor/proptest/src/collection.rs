//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive bound on generated collection lengths.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            lo: range.start,
            hi: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            lo: *range.start(),
            hi: *range.end(),
        }
    }
}

/// Strategy generating `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Returns a strategy for vectors whose length falls in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
