//! Test-run configuration and the deterministic generator behind it.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(pub(crate) SmallRng);

impl TestRng {
    /// A generator with a fixed seed.
    pub fn deterministic(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.0.fill_bytes(dest)
    }
}

/// Derives the base seed for a test: an FNV-1a hash of the test name,
/// overridable through `PROPTEST_SEED` for reproduction.
pub fn resolve_seed(test_name: &str) -> u64 {
    if let Ok(text) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = text.trim().parse::<u64>() {
            return seed;
        }
    }
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
