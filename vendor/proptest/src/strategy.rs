//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use rand::distributions::uniform::SampleUniform;
use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `map` to every generated value.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map {
            source: self,
            map,
        }
    }

    /// Generates a value, then generates from the strategy `flat_map`
    /// derives from it.
    fn prop_flat_map<S, F>(self, flat_map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap {
            source: self,
            flat_map,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps an inner strategy into a one-level-deeper strategy. `depth`
    /// bounds the nesting; the size hints of the real API are accepted and
    /// ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // At each level, favour recursion slightly so interesting
            // structures appear while expected size stays finite.
            let deeper = recurse(current).boxed();
            current = Union::new_weighted(vec![(1, leaf.clone()), (2, deeper)]).boxed();
        }
        current
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    flat_map: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.flat_map)(self.source.generate(rng)).generate(rng)
    }
}

/// Weighted choice between strategies of a common value type.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u32,
}

impl<T> Union<T> {
    /// Uniform choice between `arms`.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Choice between `arms`, each picked proportionally to its weight.
    ///
    /// # Panics
    ///
    /// Panics when `arms` is empty or all weights are zero.
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(
            !arms.is_empty() && total_weight > 0,
            "Union requires at least one positively weighted arm"
        );
        Union {
            arms,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.gen_range(0..self.total_weight);
        for (weight, arm) in &self.arms {
            if roll < *weight {
                return arm.generate(rng);
            }
            roll -= weight;
        }
        unreachable!("roll below total weight always lands in an arm")
    }
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
