//! `any::<T>()` — uniform generation over a type's full value range.

use rand::distributions::{Distribution, Standard};
use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy generating uniformly distributed values of `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

/// Returns a strategy generating arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}
