//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace patches
//! `proptest` to this crate. It implements the subset the test suites use:
//! the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_flat_map` / `prop_recursive`, ranges, tuples, `any`, `Just`,
//! `collection::vec`, `prop_oneof!`, and the `proptest!` test macro.
//!
//! Compared to the real crate this engine only random-samples — there is no
//! shrinking. Failures print the generated arguments and the deterministic
//! seed; rerun with `PROPTEST_SEED=<seed>` to reproduce a specific run.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let base_seed = $crate::test_runner::resolve_seed(stringify!($name));
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        base_seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let described = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    // The body may `return Ok(())` early, as with the real
                    // crate, so it runs as a `Result`-valued closure.
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::std::result::Result<(), ::std::string::String> {
                                $body
                                Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(reason)) => {
                            panic!(
                                "proptest {}: case {}/{} rejected: {} (PROPTEST_SEED={} reruns this test)\n  inputs: {}",
                                stringify!($name),
                                case + 1,
                                config.cases,
                                reason,
                                base_seed,
                                described,
                            );
                        }
                        Err(panic) => {
                            eprintln!(
                                "proptest {}: case {}/{} failed (PROPTEST_SEED={} reruns this test)\n  inputs: {}",
                                stringify!($name),
                                case + 1,
                                config.cases,
                                base_seed,
                                described,
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
}

/// Uniform (or weighted, with `weight => strategy` arms) choice between
/// strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}
