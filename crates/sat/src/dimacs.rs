//! DIMACS CNF reading and writing.
//!
//! Lets the solver interoperate with the standard SAT ecosystem: formulas
//! can be dumped for cross-checking against reference solvers, and external
//! instances can be loaded for benchmarking.

use std::error::Error;
use std::fmt;

use crate::{Lit, Solver, Var};

/// Errors produced when parsing DIMACS text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseDimacsError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A token was not an integer literal.
    BadLiteral {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A literal referenced a variable beyond the header's count.
    VarOutOfRange {
        /// 1-based line number.
        line: usize,
        /// The variable index (1-based, as in the file).
        var: i64,
    },
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::BadHeader { line } => {
                write!(f, "line {line}: missing or malformed `p cnf` header")
            }
            ParseDimacsError::BadLiteral { line, token } => {
                write!(f, "line {line}: bad literal {token:?}")
            }
            ParseDimacsError::VarOutOfRange { line, var } => {
                write!(f, "line {line}: variable {var} beyond the declared count")
            }
        }
    }
}

impl Error for ParseDimacsError {}

/// A plain CNF: variable count and clauses as signed DIMACS literals
/// mirrored into [`Lit`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// Clauses over variables `0..num_vars`.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Loads this formula into a fresh solver, returning the solver and its
    /// variables in index order.
    pub fn into_solver(&self) -> (Solver, Vec<Var>) {
        let mut s = Solver::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| s.new_var()).collect();
        for clause in &self.clauses {
            s.add_clause(clause);
        }
        (s, vars)
    }
}

/// Parses DIMACS CNF text.
///
/// Comment lines (`c …`) are skipped; clauses may span lines and are
/// terminated by `0`.
///
/// # Errors
///
/// See [`ParseDimacsError`].
pub fn read_dimacs(text: &str) -> Result<Cnf, ParseDimacsError> {
    let mut num_vars: Option<usize> = None;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if trimmed.starts_with('p') {
            let tokens: Vec<&str> = trimmed.split_whitespace().collect();
            if tokens.len() != 4 || tokens[1] != "cnf" {
                return Err(ParseDimacsError::BadHeader { line });
            }
            let nv: usize = tokens[2]
                .parse()
                .map_err(|_| ParseDimacsError::BadHeader { line })?;
            num_vars = Some(nv);
            continue;
        }
        let nv = num_vars.ok_or(ParseDimacsError::BadHeader { line })? as i64;
        for token in trimmed.split_whitespace() {
            let value: i64 = token.parse().map_err(|_| ParseDimacsError::BadLiteral {
                line,
                token: token.to_string(),
            })?;
            if value == 0 {
                clauses.push(std::mem::take(&mut current));
                continue;
            }
            let var = value.unsigned_abs() as i64;
            if var > nv {
                return Err(ParseDimacsError::VarOutOfRange { line, var });
            }
            let v = Var::from_index((var - 1) as usize);
            current.push(Lit::with_phase(v, value > 0));
        }
    }
    if !current.is_empty() {
        clauses.push(current);
    }
    Ok(Cnf {
        num_vars: num_vars.unwrap_or(0),
        clauses,
    })
}

/// Serializes a CNF to DIMACS text.
pub fn write_dimacs(cnf: &Cnf) -> String {
    use std::fmt::Write;
    let mut out = format!("p cnf {} {}\n", cnf.num_vars, cnf.clauses.len());
    for clause in &cnf.clauses {
        for &l in clause {
            let signed = (l.var().index() as i64 + 1) * if l.is_neg() { -1 } else { 1 };
            let _ = write!(out, "{signed} ");
        }
        out.push_str("0\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parse_and_solve_sat() {
        let text = "c comment\np cnf 3 2\n1 -2 0\n2 3 0\n";
        let cnf = read_dimacs(text).unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        let (mut s, _) = cnf.into_solver();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn parse_and_solve_unsat() {
        let text = "p cnf 1 2\n1 0\n-1 0\n";
        let cnf = read_dimacs(text).unwrap();
        let (mut s, _) = cnf.into_solver();
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn roundtrip() {
        let text = "p cnf 4 3\n1 -2 0\n3 4 -1 0\n2 0\n";
        let cnf = read_dimacs(text).unwrap();
        let again = read_dimacs(&write_dimacs(&cnf)).unwrap();
        assert_eq!(cnf, again);
    }

    #[test]
    fn clause_spanning_lines() {
        let text = "p cnf 3 1\n1 2\n3 0\n";
        let cnf = read_dimacs(text).unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 3);
    }

    #[test]
    fn header_required() {
        assert!(matches!(
            read_dimacs("1 2 0\n"),
            Err(ParseDimacsError::BadHeader { .. })
        ));
        assert!(matches!(
            read_dimacs("p dnf 2 1\n1 0\n"),
            Err(ParseDimacsError::BadHeader { .. })
        ));
    }

    #[test]
    fn out_of_range_var_rejected() {
        assert!(matches!(
            read_dimacs("p cnf 2 1\n5 0\n"),
            Err(ParseDimacsError::VarOutOfRange { .. })
        ));
    }

    #[test]
    fn bad_token_rejected() {
        assert!(matches!(
            read_dimacs("p cnf 2 1\nxyz 0\n"),
            Err(ParseDimacsError::BadLiteral { .. })
        ));
    }

    #[test]
    fn error_display_nonempty() {
        let cases = [
            ParseDimacsError::BadHeader { line: 1 },
            ParseDimacsError::BadLiteral {
                line: 2,
                token: "z".into(),
            },
            ParseDimacsError::VarOutOfRange { line: 3, var: 9 },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }
}
