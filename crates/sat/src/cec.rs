//! Combinational equivalence-checking assistance (fraiging-lite).
//!
//! Monolithic CDCL on a miter of two *structurally dissimilar*
//! implementations of the same function is exponentially hard — precisely
//! the situation every ECO query here is in (an optimized implementation
//! against a lightly synthesized specification). Industrial equivalence
//! checkers solve this by discovering **internal equivalence points**:
//! candidate pairs found by random simulation, proven bottom-up with
//! budgeted SAT, and added as equality constraints so downstream proofs
//! become local.
//!
//! [`assist_equivalences`] does exactly that on an already-encoded pair of
//! circuits. It is sound: an equality clause is only added after both
//! implications are proven UNSAT under the current formula, so the model
//! set over circuit variables never changes.

use std::collections::HashMap;

use eco_netlist::{sim, topo, Circuit, GateKind, NetId, NetlistError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::tseitin::VarMap;
use crate::{SolveResult, Solver};

/// Options for the internal-equivalence discovery pass.
#[derive(Debug, Clone)]
pub struct CecOptions {
    /// 64-pattern simulation blocks used for candidate signatures.
    pub sim_blocks: usize,
    /// Conflict budget per implication proof.
    pub pair_budget: u64,
    /// Maximum candidate pairs attempted.
    pub max_pairs: usize,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for CecOptions {
    fn default() -> Self {
        CecOptions {
            sim_blocks: 4,
            pair_budget: 4_000,
            max_pairs: 4_096,
            seed: 0xCEC,
        }
    }
}

/// Statistics of an [`assist_equivalences`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CecStats {
    /// Candidate pairs examined.
    pub candidates: usize,
    /// Equivalences proven and asserted.
    pub proven: usize,
    /// Complementary equivalences proven and asserted.
    pub proven_complement: usize,
}

/// Discovers and asserts internal equivalences between two encoded
/// circuits.
///
/// `left_map`/`right_map` are the net→variable maps from
/// [`crate::tseitin::encode_pairs`]. Inputs are matched by label for the
/// shared simulation. For every simulation-supported candidate pair, both
/// implications are checked with a conflict budget; proven pairs (equal or
/// complementary) are asserted as binary clauses, making subsequent
/// output-level queries on the same solver cheap.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulation.
pub fn assist_equivalences(
    solver: &mut Solver,
    left: &Circuit,
    right: &Circuit,
    left_map: &VarMap,
    right_map: &VarMap,
    options: &CecOptions,
) -> Result<CecStats, NetlistError> {
    let mut rng = SmallRng::seed_from_u64(options.seed);
    let mut stats = CecStats::default();

    // Shared random simulation, inputs matched by label.
    let mut left_sigs: HashMap<NetId, Vec<u64>> = HashMap::new();
    let mut right_sigs: HashMap<NetId, Vec<u64>> = HashMap::new();
    for _ in 0..options.sim_blocks.max(1) {
        let mut by_label: HashMap<&str, u64> = HashMap::new();
        for circuit in [left, right] {
            for &id in circuit.inputs() {
                by_label
                    .entry(circuit.node(id).name().unwrap_or(""))
                    .or_insert_with(|| rng.gen());
            }
        }
        let patterns = |c: &Circuit| -> Vec<u64> {
            c.inputs()
                .iter()
                .map(|&id| by_label[c.node(id).name().unwrap_or("")])
                .collect()
        };
        let lw = sim::simulate64(left, &patterns(left))?;
        let rw = sim::simulate64(right, &patterns(right))?;
        for id in left.iter_live() {
            let net: NetId = id.into();
            left_sigs.entry(net).or_default().push(lw[net.index()]);
        }
        for id in right.iter_live() {
            let net: NetId = id.into();
            right_sigs.entry(net).or_default().push(rw[net.index()]);
        }
    }

    // Index left nets by signature (and complemented signature).
    let mut by_sig: HashMap<Vec<u64>, Vec<NetId>> = HashMap::new();
    for id in left.iter_live() {
        if left.node(id).kind() == GateKind::Input {
            continue; // inputs are already shared variables
        }
        let net: NetId = id.into();
        by_sig.entry(left_sigs[&net].clone()).or_default().push(net);
    }

    // Candidate pairs in topological (level) order of the right side, so
    // proofs build on already-asserted equivalences below them.
    let right_levels = topo::levels(right)?;
    let mut right_nets: Vec<NetId> = right
        .iter_live()
        .filter(|&id| {
            let k = right.node(id).kind();
            k != GateKind::Input && !k.is_const()
        })
        .map(NetId::from)
        .collect();
    right_nets.sort_by_key(|w| right_levels[w.index()]);

    let left_levels = topo::levels(left)?;
    solver.set_conflict_budget(Some(options.pair_budget));
    'outer: for rnet in right_nets {
        let sig = &right_sigs[&rnet];
        let complement: Vec<u64> = sig.iter().map(|w| !w).collect();
        for (cands, comp) in [(by_sig.get(sig), false), (by_sig.get(&complement), true)] {
            let Some(cands) = cands else { continue };
            // Prefer the shallowest left candidate.
            let mut cands: Vec<NetId> = cands.clone();
            cands.sort_by_key(|w| left_levels[w.index()]);
            for lnet in cands.into_iter().take(2) {
                if stats.candidates >= options.max_pairs {
                    break 'outer;
                }
                stats.candidates += 1;
                let a = left_map.lit(lnet).expect("left net encoded");
                let b = right_map.lit(rnet).expect("right net encoded");
                let b = if comp { !b } else { b };
                // Prove a ≡ b: both (a ∧ ¬b) and (¬a ∧ b) unsatisfiable.
                if solver.solve(&[a, !b]) != SolveResult::Unsat {
                    continue;
                }
                if solver.solve(&[!a, b]) != SolveResult::Unsat {
                    continue;
                }
                solver.add_clause(&[!a, b]);
                solver.add_clause(&[a, !b]);
                if comp {
                    stats.proven_complement += 1;
                } else {
                    stats.proven += 1;
                }
                break; // one representative equality suffices
            }
        }
    }
    solver.set_conflict_budget(None);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tseitin::encode_pairs;

    /// Two structurally different implementations of the same functions.
    fn dissimilar_pair() -> (Circuit, Circuit) {
        let mut a = Circuit::new("a");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let z = a.add_input("z");
        let g1 = a.add_gate(GateKind::And, &[x, y]).unwrap();
        let g2 = a.add_gate(GateKind::Or, &[g1, z]).unwrap();
        a.add_output("o", g2);

        let mut b = Circuit::new("b");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let z = b.add_input("z");
        // De Morgan form of the same function.
        let nx = b.add_gate(GateKind::Not, &[x]).unwrap();
        let ny = b.add_gate(GateKind::Not, &[y]).unwrap();
        let o1 = b.add_gate(GateKind::Or, &[nx, ny]).unwrap();
        let nand = b.add_gate(GateKind::Not, &[o1]).unwrap();
        let nz = b.add_gate(GateKind::Not, &[z]).unwrap();
        let n2 = b.add_gate(GateKind::Not, &[nand]).unwrap();
        let and2 = b.add_gate(GateKind::And, &[n2, nz]).unwrap();
        let o = b.add_gate(GateKind::Not, &[and2]).unwrap();
        b.add_output("o", o);
        (a, b)
    }

    #[test]
    fn proves_internal_equivalences() {
        let (a, b) = dissimilar_pair();
        let mut solver = Solver::new();
        let pairs = [(a.outputs()[0].net(), b.outputs()[0].net())];
        let miter = encode_pairs(&mut solver, &a, &b, &pairs).unwrap();
        let stats = assist_equivalences(
            &mut solver,
            &a,
            &b,
            &miter.left,
            &miter.right,
            &CecOptions::default(),
        )
        .unwrap();
        assert!(
            stats.proven + stats.proven_complement >= 1,
            "the AND point or its complement should be proven: {stats:?}"
        );
        // The output query must now be UNSAT (equivalent).
        assert_eq!(solver.solve(&[miter.diff_lits[0]]), SolveResult::Unsat);
    }

    #[test]
    fn soundness_on_differing_circuits() {
        // Equivalence assistance must never make a differing pair UNSAT.
        let mut a = Circuit::new("a");
        let x = a.add_input("x");
        let y = a.add_input("y");
        let g = a.add_gate(GateKind::And, &[x, y]).unwrap();
        a.add_output("o", g);
        let mut b = Circuit::new("b");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let g = b.add_gate(GateKind::Or, &[x, y]).unwrap();
        b.add_output("o", g);
        let mut solver = Solver::new();
        let pairs = [(a.outputs()[0].net(), b.outputs()[0].net())];
        let miter = encode_pairs(&mut solver, &a, &b, &pairs).unwrap();
        assist_equivalences(
            &mut solver,
            &a,
            &b,
            &miter.left,
            &miter.right,
            &CecOptions::default(),
        )
        .unwrap();
        assert_eq!(solver.solve(&[miter.diff_lits[0]]), SolveResult::Sat);
    }

    #[test]
    fn budget_zero_proves_nothing_but_stays_sound() {
        let (a, b) = dissimilar_pair();
        let mut solver = Solver::new();
        let pairs = [(a.outputs()[0].net(), b.outputs()[0].net())];
        let miter = encode_pairs(&mut solver, &a, &b, &pairs).unwrap();
        let opts = CecOptions {
            pair_budget: 0,
            ..Default::default()
        };
        let stats =
            assist_equivalences(&mut solver, &a, &b, &miter.left, &miter.right, &opts).unwrap();
        // With no conflict budget, only propagation-trivial pairs can be
        // proven — whatever was added must keep the formula sound.
        let _ = stats;
        assert_eq!(solver.solve(&[miter.diff_lits[0]]), SolveResult::Unsat);
    }
}
