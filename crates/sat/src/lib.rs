//! Conflict-driven clause-learning SAT solving for syseco.
//!
//! The ECO flow uses SAT in two roles (paper §5.1–§5.2):
//!
//! 1. **Error-domain enumeration** — a miter between the current
//!    implementation `C` and the revised specification `C'` whose models are
//!    the error minterms `𝔼 = {x | f(x) ≠ f'(x)}` that seed the sampling
//!    domain, and
//! 2. **Resource-constrained validation** — candidate rewire operations found
//!    in the sampling domain are checked on the exact domain with a conflict
//!    budget; a model is a false-positive counterexample that refines the
//!    domain.
//!
//! The [`Solver`] is a self-contained CDCL engine in the MiniSAT lineage
//! (two-literal watching, first-UIP learning, VSIDS-style activities, phase
//! saving, Luby restarts, incremental assumptions, conflict budgets). The
//! [`tseitin`] module encodes [`eco_netlist::Circuit`]s into CNF and builds
//! miters.
//!
//! # Example
//!
//! ```
//! use eco_sat::{Lit, SolveResult, Solver};
//!
//! let mut s = Solver::new();
//! let a = s.new_var();
//! let b = s.new_var();
//! s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
//! s.add_clause(&[Lit::neg(a)]);
//! assert_eq!(s.solve(&[]), SolveResult::Sat);
//! assert_eq!(s.value(b), Some(true));
//! ```

pub mod cec;
pub mod dimacs;
mod solver;
pub mod tseitin;

pub use dimacs::{read_dimacs, write_dimacs, Cnf, ParseDimacsError};
pub use solver::{Lit, SolveResult, Solver, SolverStats, Var};
