//! Tseitin encoding of circuits and miter construction.
//!
//! The encoder assigns one SAT variable per circuit net and emits the
//! standard gate consistency clauses. [`encode_miter`] builds the
//! non-equivalence check used both for error-domain enumeration and for
//! validating candidate rewire operations on the exact input domain.

use std::collections::HashMap;

use eco_netlist::{topo, Circuit, GateKind, NetId, NetlistError};

use crate::{Lit, Solver, Var};

/// Mapping from the nets of an encoded circuit to solver variables.
#[derive(Debug, Clone, Default)]
pub struct VarMap {
    map: HashMap<NetId, Var>,
}

impl VarMap {
    /// The solver variable of `net`, if the net was encoded.
    pub fn var(&self, net: NetId) -> Option<Var> {
        self.map.get(&net).copied()
    }

    /// The positive literal of `net`, if encoded.
    pub fn lit(&self, net: NetId) -> Option<Lit> {
        self.var(net).map(Lit::pos)
    }

    /// Number of encoded nets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no nets are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Encodes the live logic of `circuit` into `solver`.
///
/// `shared_inputs` optionally pre-assigns variables to primary inputs (used
/// by miters so both circuits read the same input variables); inputs are
/// looked up **by label**. Returns the net→variable map.
///
/// # Errors
///
/// Propagates [`NetlistError::Cyclic`] from the topological sort.
pub fn encode_circuit(
    solver: &mut Solver,
    circuit: &Circuit,
    shared_inputs: Option<&HashMap<String, Var>>,
) -> Result<VarMap, NetlistError> {
    let order = topo::topo_order(circuit)?;
    let mut map = VarMap::default();
    for id in order {
        let node = circuit.node(id);
        let net: NetId = id.into();
        let v = match node.kind() {
            GateKind::Input => {
                let label = node.name().unwrap_or("");
                match shared_inputs.and_then(|m| m.get(label)) {
                    Some(&v) => v,
                    None => solver.new_var(),
                }
            }
            _ => solver.new_var(),
        };
        map.map.insert(net, v);
        let out = Lit::pos(v);
        let fanins: Vec<Lit> = node.fanins().iter().map(|f| Lit::pos(map.map[f])).collect();
        emit_gate_clauses(solver, node.kind(), out, &fanins);
    }
    Ok(map)
}

/// Emits the consistency clauses `out ≡ kind(fanins)`.
///
/// # Panics
///
/// Panics when `fanins.len()` is illegal for `kind` (the netlist guarantees
/// legal arities for well-formed circuits).
pub fn emit_gate_clauses(solver: &mut Solver, kind: GateKind, out: Lit, fanins: &[Lit]) {
    match kind {
        GateKind::Input => {}
        GateKind::Const0 => {
            solver.add_clause(&[!out]);
        }
        GateKind::Const1 => {
            solver.add_clause(&[out]);
        }
        GateKind::Buf => {
            solver.add_clause(&[!fanins[0], out]);
            solver.add_clause(&[fanins[0], !out]);
        }
        GateKind::Not => {
            solver.add_clause(&[fanins[0], out]);
            solver.add_clause(&[!fanins[0], !out]);
        }
        GateKind::And | GateKind::Nand => {
            let o = if kind == GateKind::And { out } else { !out };
            // o -> fi for each i; (⋀ fi) -> o.
            let mut big: Vec<Lit> = fanins.iter().map(|&f| !f).collect();
            big.push(o);
            for &f in fanins {
                solver.add_clause(&[!o, f]);
            }
            solver.add_clause(&big);
        }
        GateKind::Or | GateKind::Nor => {
            let o = if kind == GateKind::Or { out } else { !out };
            // fi -> o for each i; o -> (⋁ fi).
            let mut big: Vec<Lit> = fanins.to_vec();
            big.push(!o);
            for &f in fanins {
                solver.add_clause(&[!f, o]);
            }
            solver.add_clause(&big);
        }
        GateKind::Xor | GateKind::Xnor => {
            // Chain through auxiliary variables for arity > 2.
            let target = if kind == GateKind::Xor { out } else { !out };
            let mut acc = fanins[0];
            for (i, &f) in fanins.iter().enumerate().skip(1) {
                let res = if i + 1 == fanins.len() {
                    target
                } else {
                    Lit::pos(solver.new_var())
                };
                // res ≡ acc xor f
                solver.add_clause(&[!res, acc, f]);
                solver.add_clause(&[!res, !acc, !f]);
                solver.add_clause(&[res, !acc, f]);
                solver.add_clause(&[res, acc, !f]);
                acc = res;
            }
        }
        GateKind::Mux => {
            let (s, d0, d1) = (fanins[0], fanins[1], fanins[2]);
            // s -> (out ≡ d1); !s -> (out ≡ d0).
            solver.add_clause(&[!s, !d1, out]);
            solver.add_clause(&[!s, d1, !out]);
            solver.add_clause(&[s, !d0, out]);
            solver.add_clause(&[s, d0, !out]);
        }
    }
}

/// Result of encoding a miter between two circuits.
#[derive(Debug)]
pub struct Miter {
    /// Variables of the shared primary inputs, by label.
    pub inputs: HashMap<String, Var>,
    /// Net→variable map of the first circuit.
    pub left: VarMap,
    /// Net→variable map of the second circuit.
    pub right: VarMap,
    /// One selector literal per compared output pair: the literal is forced
    /// true exactly when the pair differs.
    pub diff_lits: Vec<Lit>,
}

/// Encodes a miter asserting that **some** compared output pair differs.
///
/// `pairs` lists `(left_net, right_net)` output pairs to compare. Inputs are
/// shared by label: every label appearing in either circuit maps to one
/// variable. A model of the solver is an input assignment on which the
/// circuits disagree on at least one listed pair — an element of the error
/// domain `𝔼`.
///
/// # Errors
///
/// Propagates [`NetlistError::Cyclic`] from either circuit.
pub fn encode_miter(
    solver: &mut Solver,
    left: &Circuit,
    right: &Circuit,
    pairs: &[(NetId, NetId)],
) -> Result<Miter, NetlistError> {
    let miter = encode_pairs(solver, left, right, pairs)?;
    solver.add_clause(&miter.diff_lits);
    Ok(miter)
}

/// Encodes both circuits and per-pair difference literals **without**
/// asserting any difference.
///
/// Solving under the assumption `diff_lits[i]` asks whether pair `i`
/// differs; this turns one encoding into many per-output equivalence
/// queries (used for bulk failing-output classification).
///
/// # Errors
///
/// Propagates [`NetlistError::Cyclic`] from either circuit.
pub fn encode_pairs(
    solver: &mut Solver,
    left: &Circuit,
    right: &Circuit,
    pairs: &[(NetId, NetId)],
) -> Result<Miter, NetlistError> {
    let mut inputs: HashMap<String, Var> = HashMap::new();
    for circuit in [left, right] {
        for &id in circuit.inputs() {
            let label = circuit.node(id).name().unwrap_or("").to_string();
            inputs.entry(label).or_insert_with(|| solver.new_var());
        }
    }
    let lmap = encode_circuit(solver, left, Some(&inputs))?;
    let rmap = encode_circuit(solver, right, Some(&inputs))?;
    let mut diff_lits = Vec::with_capacity(pairs.len());
    for &(lw, rw) in pairs {
        let a = lmap.lit(lw).expect("left net encoded");
        let b = rmap.lit(rw).expect("right net encoded");
        let d = Lit::pos(solver.new_var());
        // d ≡ a xor b
        solver.add_clause(&[!d, a, b]);
        solver.add_clause(&[!d, !a, !b]);
        solver.add_clause(&[d, !a, b]);
        solver.add_clause(&[d, a, !b]);
        diff_lits.push(d);
    }
    Ok(Miter {
        inputs,
        left: lmap,
        right: rmap,
        diff_lits,
    })
}

/// Extracts the shared-input assignment from a satisfied miter, ordered by
/// the labels of `reference`'s primary inputs.
///
/// Unconstrained inputs default to `false`.
pub fn model_inputs(solver: &Solver, miter: &Miter, reference: &Circuit) -> Vec<bool> {
    reference
        .inputs()
        .iter()
        .map(|&id| {
            let label = reference.node(id).name().unwrap_or("");
            miter
                .inputs
                .get(label)
                .and_then(|&v| solver.value(v))
                .unwrap_or(false)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;
    use eco_netlist::{Circuit, GateKind};

    fn adder_bit(flip: bool) -> Circuit {
        let mut c = Circuit::new(if flip { "bad" } else { "good" });
        let a = c.add_input("a");
        let b = c.add_input("b");
        let kind = if flip { GateKind::Xnor } else { GateKind::Xor };
        let s = c.add_gate(kind, &[a, b]).unwrap();
        c.add_output("s", s);
        c
    }

    #[test]
    fn encode_and_check_model_consistency() {
        let c = adder_bit(false);
        let mut s = Solver::new();
        let map = encode_circuit(&mut s, &c, None).unwrap();
        let out = map.lit(c.outputs()[0].net()).unwrap();
        // Force output true; model must satisfy a xor b.
        s.add_clause(&[out]);
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let a = s
            .value(map.var(c.input_by_name("a").unwrap()).unwrap())
            .unwrap();
        let b = s
            .value(map.var(c.input_by_name("b").unwrap()).unwrap())
            .unwrap();
        assert!(a ^ b);
    }

    #[test]
    fn equivalent_circuits_make_unsat_miter() {
        let c1 = adder_bit(false);
        let c2 = adder_bit(false);
        let mut s = Solver::new();
        let pairs = [(c1.outputs()[0].net(), c2.outputs()[0].net())];
        encode_miter(&mut s, &c1, &c2, &pairs).unwrap();
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn different_circuits_make_sat_miter_with_witness() {
        let c1 = adder_bit(false);
        let c2 = adder_bit(true);
        let mut s = Solver::new();
        let pairs = [(c1.outputs()[0].net(), c2.outputs()[0].net())];
        let miter = encode_miter(&mut s, &c1, &c2, &pairs).unwrap();
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        let inputs = model_inputs(&s, &miter, &c1);
        // Witness must actually distinguish the circuits.
        assert_ne!(c1.eval(&inputs).unwrap(), c2.eval(&inputs).unwrap());
    }

    #[test]
    fn all_gate_kinds_encode_correctly() {
        // For each kind, compare SAT models of "out forced" against eval.
        let kinds = [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ];
        for kind in kinds {
            let mut c = Circuit::new("k");
            let a = c.add_input("a");
            let b = c.add_input("b");
            let d = c.add_input("d");
            let g = c.add_gate(kind, &[a, b, d]).unwrap();
            c.add_output("y", g);
            // Exhaustively check: for every input assignment, the encoding
            // admits exactly the matching output value.
            for j in 0..8u8 {
                let assign = [(j & 1) == 1, (j & 2) == 2, (j & 4) == 4];
                let expect = c.eval(&assign).unwrap()[0];
                let mut s = Solver::new();
                let map = encode_circuit(&mut s, &c, None).unwrap();
                let lits: Vec<Lit> = [a, b, d]
                    .iter()
                    .zip(assign.iter())
                    .map(|(&w, &v)| Lit::with_phase(map.var(w).unwrap(), v))
                    .collect();
                for l in &lits {
                    s.add_clause(&[*l]);
                }
                let out = map.lit(g).unwrap();
                s.add_clause(&[if expect { out } else { !out }]);
                assert_eq!(s.solve(&[]), SolveResult::Sat, "{kind} {assign:?}");
                let mut s2 = Solver::new();
                let map2 = encode_circuit(&mut s2, &c, None).unwrap();
                for (&w, &v) in [a, b, d].iter().zip(assign.iter()) {
                    s2.add_clause(&[Lit::with_phase(map2.var(w).unwrap(), v)]);
                }
                let out2 = map2.lit(g).unwrap();
                s2.add_clause(&[if expect { !out2 } else { out2 }]);
                assert_eq!(s2.solve(&[]), SolveResult::Unsat, "{kind} {assign:?}");
            }
        }
    }

    #[test]
    fn mux_and_const_encode_correctly() {
        let mut c = Circuit::new("m");
        let s0 = c.add_input("s");
        let a = c.add_input("a");
        let k1 = c.constant(true);
        let g = c.add_gate(GateKind::Mux, &[s0, a, k1]).unwrap();
        c.add_output("y", g);
        for j in 0..4u8 {
            let assign = [(j & 1) == 1, (j & 2) == 2];
            let expect = c.eval(&assign).unwrap()[0];
            let mut solver = Solver::new();
            let map = encode_circuit(&mut solver, &c, None).unwrap();
            solver.add_clause(&[Lit::with_phase(map.var(s0).unwrap(), assign[0])]);
            solver.add_clause(&[Lit::with_phase(map.var(a).unwrap(), assign[1])]);
            let out = map.lit(g).unwrap();
            solver.add_clause(&[if expect { !out } else { out }]);
            assert_eq!(solver.solve(&[]), SolveResult::Unsat, "{assign:?}");
        }
    }

    #[test]
    fn miter_enumeration_with_blocking_clauses() {
        // Enumerate the full error domain of xor-vs-xnor (all 4 inputs).
        let c1 = adder_bit(false);
        let c2 = adder_bit(true);
        let mut s = Solver::new();
        let pairs = [(c1.outputs()[0].net(), c2.outputs()[0].net())];
        let miter = encode_miter(&mut s, &c1, &c2, &pairs).unwrap();
        let mut found = Vec::new();
        while s.solve(&[]) == SolveResult::Sat {
            let inputs = model_inputs(&s, &miter, &c1);
            found.push(inputs.clone());
            // Block this input assignment.
            let block: Vec<Lit> = c1
                .inputs()
                .iter()
                .zip(inputs.iter())
                .map(|(&id, &v)| {
                    let label = c1.node(id).name().unwrap().to_string();
                    Lit::with_phase(miter.inputs[&label], !v)
                })
                .collect();
            s.add_clause(&block);
        }
        // xor != xnor everywhere: all 4 assignments are errors.
        assert_eq!(found.len(), 4);
    }
}
