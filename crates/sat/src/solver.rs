//! A CDCL SAT solver in the MiniSAT lineage.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(u32);

impl Var {
    /// Raw index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates a variable from its raw index.
    ///
    /// Only meaningful for indices previously returned by
    /// [`Solver::new_var`] on the same solver.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        Var(index as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    #[inline]
    pub fn pos(v: Var) -> Self {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    #[inline]
    pub fn neg(v: Var) -> Self {
        Lit((v.0 << 1) | 1)
    }

    /// Creates a literal with an explicit phase (`true` = positive).
    #[inline]
    pub fn with_phase(v: Var, phase: bool) -> Self {
        if phase {
            Lit::pos(v)
        } else {
            Lit::neg(v)
        }
    }

    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this literal is negated.
    #[inline]
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    #[inline]
    fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_neg() {
            write!(f, "!{}", self.var())
        } else {
            write!(f, "{}", self.var())
        }
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// A model was found; read it with [`Solver::value`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
    /// A resource limit ended the search before a decision was reached —
    /// the conflict budget of paper §5.1, a wall-clock deadline, or a
    /// cooperative interrupt.
    Unknown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

type ClauseRef = u32;

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
}

/// A snapshot of a [`Solver`]'s cumulative search counters.
///
/// Obtained from [`Solver::stats`]; the counters are deterministic for a
/// deterministic clause/assumption sequence, and `+=` folds snapshots from
/// independent solvers (sums are order-insensitive).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Conflicts observed across all `solve` calls.
    pub conflicts: u64,
    /// Decisions made.
    pub decisions: u64,
    /// Unit propagations performed.
    pub propagations: u64,
    /// Luby restarts performed.
    pub restarts: u64,
    /// Clauses learnt from conflicts (asserting units included).
    pub learnt_clauses: u64,
    /// Literals across every learnt clause, after minimization.
    pub learnt_literals: u64,
}

impl std::ops::AddAssign for SolverStats {
    fn add_assign(&mut self, rhs: SolverStats) {
        self.conflicts += rhs.conflicts;
        self.decisions += rhs.decisions;
        self.propagations += rhs.propagations;
        self.restarts += rhs.restarts;
        self.learnt_clauses += rhs.learnt_clauses;
        self.learnt_literals += rhs.learnt_literals;
    }
}

/// A CDCL SAT solver.
///
/// See the [crate-level documentation](crate) for the role it plays in the
/// ECO flow and a usage example.
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<ClauseRef>>, // indexed by literal code
    assigns: Vec<LBool>,
    levels: Vec<u32>,
    reasons: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    heap: Vec<Var>, // lazy binary max-heap by activity
    heap_pos: Vec<Option<u32>>,
    saved_phase: Vec<bool>,
    ok: bool,
    conflict_budget: Option<u64>,
    deadline: Option<Instant>,
    interrupt: Option<Arc<AtomicBool>>,
    stopped: bool,
    check_countdown: u32,
    conflicts: u64,
    decisions: u64,
    propagations: u64,
    restarts: u64,
    learnt_clauses: u64,
    learnt_literals: u64,
    seen: Vec<bool>,
    pending_reset: bool,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const ACTIVITY_RESCALE: f64 = 1e100;

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            levels: Vec::new(),
            reasons: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            heap: Vec::new(),
            heap_pos: Vec::new(),
            saved_phase: Vec::new(),
            ok: true,
            conflict_budget: None,
            deadline: None,
            interrupt: None,
            stopped: false,
            check_countdown: 0,
            conflicts: 0,
            decisions: 0,
            propagations: 0,
            restarts: 0,
            learnt_clauses: 0,
            learnt_literals: 0,
            seen: Vec::new(),
            pending_reset: false,
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.saved_phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.heap_pos.push(None);
        self.heap_insert(v);
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses currently stored (original + learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Conflicts observed so far (across all `solve` calls).
    pub fn num_conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Decisions made so far.
    pub fn num_decisions(&self) -> u64 {
        self.decisions
    }

    /// Propagations performed so far.
    pub fn num_propagations(&self) -> u64 {
        self.propagations
    }

    /// All cumulative search counters in one copyable snapshot.
    #[inline]
    pub fn stats(&self) -> SolverStats {
        SolverStats {
            conflicts: self.conflicts,
            decisions: self.decisions,
            propagations: self.propagations,
            restarts: self.restarts,
            learnt_clauses: self.learnt_clauses,
            learnt_literals: self.learnt_literals,
        }
    }

    /// Limits the *next* [`solve`](Solver::solve) calls to `budget` conflicts
    /// each; `None` removes the limit. When the budget is exhausted the
    /// solver returns [`SolveResult::Unknown`].
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.conflict_budget = budget;
    }

    /// Sets an absolute wall-clock deadline for subsequent
    /// [`solve`](Solver::solve) calls; `None` removes it. The search loop
    /// polls the clock periodically and returns [`SolveResult::Unknown`]
    /// once the deadline has passed.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Installs a cooperative interrupt flag; `None` removes it. Setting
    /// the flag (from any thread) makes an in-flight
    /// [`solve`](Solver::solve) return [`SolveResult::Unknown`] at its next
    /// periodic check.
    pub fn set_interrupt(&mut self, interrupt: Option<Arc<AtomicBool>>) {
        self.interrupt = interrupt;
    }

    /// Whether the most recent [`solve`](Solver::solve) call stopped early
    /// because of the deadline or the interrupt flag (as opposed to the
    /// conflict budget).
    pub fn interrupted(&self) -> bool {
        self.stopped
    }

    /// Periodic deadline/interrupt poll, amortized over ~1024 search-loop
    /// iterations so the clock and atomic reads stay off the hot path.
    #[inline]
    fn should_stop(&mut self) -> bool {
        if self.check_countdown > 0 {
            self.check_countdown -= 1;
            return false;
        }
        self.check_countdown = 1023;
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        if let Some(flag) = &self.interrupt {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        false
    }

    /// Adds a clause. Returns `false` when the formula became trivially
    /// unsatisfiable (empty clause, or a conflicting unit at level 0).
    ///
    /// Clauses may only be added at decision level 0, i.e. between `solve`
    /// calls.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.reset_if_needed();
        debug_assert!(self.trail_lim.is_empty(), "add_clause at level 0 only");
        if !self.ok {
            return false;
        }
        // Normalize: sort, dedup, drop false lits, detect tautology/satisfied.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        let mut i = 0;
        while i < ls.len() {
            let l = ls[i];
            if i + 1 < ls.len() && ls[i + 1] == !l {
                return true; // tautology: x ∨ !x
            }
            match self.lit_value(l) {
                LBool::True => return true, // already satisfied at level 0
                LBool::False => {}          // drop falsified literal
                LBool::Undef => out.push(l),
            }
            i += 1;
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(out[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(out);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>) -> ClauseRef {
        let cref = self.clauses.len() as ClauseRef;
        self.watches[lits[0].code()].push(cref);
        self.watches[lits[1].code()].push(cref);
        self.clauses.push(Clause { lits });
        cref
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> LBool {
        match self.assigns[l.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// The model value of `v` after a [`SolveResult::Sat`] outcome; `None`
    /// when the variable was irrelevant (never assigned).
    pub fn value(&self, v: Var) -> Option<bool> {
        match self.assigns[v.index()] {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    #[inline]
    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var();
        self.assigns[v.index()] = if l.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.levels[v.index()] = self.decision_level();
        self.reasons[v.index()] = reason;
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause on conflict.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;
            let false_lit = !p;
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                // Make sure false_lit is at position 1.
                let lits = &mut self.clauses[cref as usize].lits;
                if lits[0] == false_lit {
                    lits.swap(0, 1);
                }
                debug_assert_eq!(lits[1], false_lit);
                let first = lits[0];
                if self.lit_value(first) == LBool::True {
                    i += 1;
                    continue; // clause satisfied
                }
                // Look for a new literal to watch.
                let mut moved = false;
                for k in 2..self.clauses[cref as usize].lits.len() {
                    let lk = self.clauses[cref as usize].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[cref as usize].lits.swap(1, k);
                        self.watches[lk.code()].push(cref);
                        ws.swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Clause is unit or conflicting.
                if self.lit_value(first) == LBool::False {
                    // Conflict: restore remaining watches and report.
                    self.watches[false_lit.code()] = ws;
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[false_lit.code()] = ws;
        }
        None
    }

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > ACTIVITY_RESCALE {
            for a in &mut self.activity {
                *a *= 1.0 / ACTIVITY_RESCALE;
            }
            self.var_inc *= 1.0 / ACTIVITY_RESCALE;
        }
        self.heap_update(v);
    }

    fn var_decay(&mut self) {
        self.var_inc *= VAR_DECAY;
    }

    // ---------------- binary max-heap keyed by activity ----------------

    fn heap_less(&self, a: Var, b: Var) -> bool {
        self.activity[a.index()] < self.activity[b.index()]
    }

    fn heap_insert(&mut self, v: Var) {
        if self.heap_pos[v.index()].is_some() {
            return;
        }
        self.heap.push(v);
        self.heap_pos[v.index()] = Some((self.heap.len() - 1) as u32);
        self.heap_up(self.heap.len() - 1);
    }

    fn heap_update(&mut self, v: Var) {
        if let Some(pos) = self.heap_pos[v.index()] {
            self.heap_up(pos as usize);
        } else {
            self.heap_insert(v);
        }
    }

    fn heap_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(self.heap[parent], self.heap[i]) {
                self.heap_swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn heap_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len() && self.heap_less(self.heap[best], self.heap[l]) {
                best = l;
            }
            if r < self.heap.len() && self.heap_less(self.heap[best], self.heap[r]) {
                best = r;
            }
            if best == i {
                break;
            }
            self.heap_swap(i, best);
            i = best;
        }
    }

    fn heap_swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.heap_pos[self.heap[i].index()] = Some(i as u32);
        self.heap_pos[self.heap[j].index()] = Some(j as u32);
    }

    fn heap_pop(&mut self) -> Option<Var> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.len() - 1;
        self.heap_swap(0, last);
        self.heap.pop();
        self.heap_pos[top.index()] = None;
        if !self.heap.is_empty() {
            self.heap_down(0);
        }
        Some(top)
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    // ---------------- conflict analysis ----------------

    /// First-UIP learning. Returns the learnt clause (asserting literal
    /// first) and the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut confl = Some(confl);

        loop {
            let cref = confl.expect("analysis requires a reason");
            let start = if p.is_some() { 1 } else { 0 };
            // Cheap copy to appease the borrow checker; clauses are short.
            let lits = self.clauses[cref as usize].lits.clone();
            for &q in &lits[start..] {
                let v = q.var();
                if !self.seen[v.index()] && self.levels[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    self.var_bump(v);
                    if self.levels[v.index()] >= self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select next trail literal to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pl = self.trail[index];
            p = Some(pl);
            self.seen[pl.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reasons[pl.var().index()];
            // Reorder clause so the propagated literal is first (reason
            // invariant: lits[0] is the enqueued literal).
            if let Some(cr) = confl {
                let ls = &mut self.clauses[cr as usize].lits;
                if ls[0] != pl {
                    let pos = ls.iter().position(|&l| l == pl).expect("reason lit");
                    ls.swap(0, pos);
                }
            }
        }
        learnt[0] = !p.expect("first UIP exists");

        // Basic learnt-clause minimization: a non-asserting literal is
        // redundant when its reason resolves entirely within the clause
        // (every antecedent is marked seen or fixed at level 0).
        let mut kept = vec![learnt[0]];
        #[allow(clippy::needless_range_loop)]
        for idx in 1..learnt.len() {
            let l = learnt[idx];
            let redundant = match self.reasons[l.var().index()] {
                None => false,
                Some(cref) => self.clauses[cref as usize].lits.iter().all(|&q| {
                    q.var() == l.var()
                        || self.seen[q.var().index()]
                        || self.levels[q.var().index()] == 0
                }),
            };
            if !redundant {
                kept.push(l);
            }
        }
        // Clear seen flags for all originally learnt literals.
        for &l in &learnt {
            self.seen[l.var().index()] = false;
        }
        let mut learnt = kept;

        // Backtrack level: second-highest level in the clause.
        let bt = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().index()] > self.levels[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.levels[learnt[1].var().index()]
        };
        (learnt, bt)
    }

    fn backtrack(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail nonempty");
                let v = l.var();
                self.saved_phase[v.index()] = !l.is_neg();
                self.assigns[v.index()] = LBool::Undef;
                self.reasons[v.index()] = None;
                self.heap_insert(v);
            }
        }
        // Everything still on the trail was fully propagated before the
        // levels above it were opened.
        self.qhead = self.trail.len();
    }

    /// Solves the formula under `assumptions`.
    ///
    /// Assumption literals are decided first (in order); a conflict that
    /// reaches assumption levels yields [`SolveResult::Unsat`]. The model
    /// after [`SolveResult::Sat`] is read with [`value`](Solver::value).
    pub fn solve(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.reset_if_needed();
        self.stopped = false;
        self.check_countdown = 0; // poll the deadline on entry
        if !self.ok {
            return SolveResult::Unsat;
        }
        let budget_start = self.conflicts;
        let mut luby_index = 0u32;
        let mut restart_limit = 64u64 * luby(luby_index);
        let mut conflicts_in_run = 0u64;

        let result = 'outer: loop {
            if (self.deadline.is_some() || self.interrupt.is_some()) && self.should_stop() {
                self.stopped = true;
                break 'outer SolveResult::Unknown;
            }
            // Propagate pending facts.
            if let Some(confl) = self.propagate() {
                self.conflicts += 1;
                conflicts_in_run += 1;
                if self.decision_level() <= assumptions.len() as u32 {
                    // Conflict within (or below) the assumption prefix.
                    if self.decision_level() == 0 {
                        self.ok = false;
                    }
                    break 'outer SolveResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                self.learnt_clauses += 1;
                self.learnt_literals += learnt.len() as u64;
                // Backtracking below the assumption prefix is fine: the
                // decide step re-installs assumptions in order.
                self.backtrack(bt);
                let assert_lit = learnt[0];
                if learnt.len() == 1 {
                    self.backtrack(0);
                    if self.lit_value(assert_lit) == LBool::False {
                        self.ok = false;
                        break 'outer SolveResult::Unsat;
                    }
                    if self.lit_value(assert_lit) == LBool::Undef {
                        self.enqueue(assert_lit, None);
                    }
                } else {
                    let cref = self.attach_clause(learnt);
                    let first = self.clauses[cref as usize].lits[0];
                    self.enqueue(first, Some(cref));
                }
                self.var_decay();
                if let Some(b) = self.conflict_budget {
                    if self.conflicts - budget_start >= b {
                        break 'outer SolveResult::Unknown;
                    }
                }
                if conflicts_in_run >= restart_limit {
                    // Luby restart: keep level-0 facts, retry decisions.
                    conflicts_in_run = 0;
                    luby_index += 1;
                    restart_limit = 64u64 * luby(luby_index);
                    self.restarts += 1;
                    self.backtrack(assumptions.len() as u32);
                }
                continue;
            }

            // Decide.
            let dl = self.decision_level() as usize;
            if dl < assumptions.len() {
                let a = assumptions[dl];
                match self.lit_value(a) {
                    LBool::True => {
                        // Already implied; open an empty level to keep the
                        // prefix aligned with the assumption index.
                        self.trail_lim.push(self.trail.len());
                    }
                    LBool::False => break 'outer SolveResult::Unsat,
                    LBool::Undef => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, None);
                    }
                }
                continue;
            }
            match self.pick_branch_var() {
                None => break 'outer SolveResult::Sat,
                Some(v) => {
                    self.decisions += 1;
                    self.trail_lim.push(self.trail.len());
                    let phase = self.saved_phase[v.index()];
                    self.enqueue(Lit::with_phase(v, phase), None);
                }
            }
        };

        // On SAT the trail is kept so `value` can read the model; cleanup is
        // deferred to the next solve/add_clause call.
        if result == SolveResult::Sat {
            self.pending_reset = true;
        } else {
            self.backtrack(0);
        }
        result
    }
}

// The model must survive after `solve` returns Sat, but the next call has to
// start from level 0. We keep a flag and reset lazily.
impl Solver {
    fn reset_if_needed(&mut self) {
        if self.pending_reset {
            self.backtrack(0);
            self.pending_reset = false;
        }
    }
}

/// Luby restart sequence (1,1,2,1,1,2,4,...), 0-indexed.
fn luby(mut x: u32) -> u64 {
    // Size of the smallest complete subsequence containing index x.
    let mut size: u64 = 1;
    let mut seq: u32 = 0;
    while size < x as u64 + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x as u64 {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size as u32;
    }
    1u64 << seq
}

// Validation solvers are per-worker in the rectification scheduler, so
// `Send` is load-bearing: keep the solver free of `Rc`/raw-pointer state.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<Solver>();
    assert_send_sync::<Lit>();
    assert_send_sync::<Var>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(s: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| Lit::pos(s.new_var())).collect()
    }

    #[test]
    fn trivial_sat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0], v[1]]));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(s.value(v[0].var()) == Some(true) || s.value(v[1].var()) == Some(true));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause(&[v[0]]));
        assert!(!s.add_clause(&[!v[0]]));
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        s.add_clause(&[v[0]]);
        for i in 0..4 {
            s.add_clause(&[!v[i], v[i + 1]]);
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for l in &v {
            assert_eq!(s.value(l.var()), Some(true));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: p[i][j] = pigeon i in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for pi in &p {
            s.add_clause(&[pi[0], pi[1]]);
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_flip_result() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        s.add_clause(&[!v[0], !v[1]]);
        assert_eq!(s.solve(&[v[0], v[1]]), SolveResult::Unsat);
        assert_eq!(s.solve(&[v[0], !v[1]]), SolveResult::Sat);
        assert_eq!(s.value(v[0].var()), Some(true));
        assert_eq!(s.value(v[1].var()), Some(false));
        // Solver stays reusable afterwards.
        assert_eq!(s.solve(&[]), SolveResult::Sat);
    }

    #[test]
    fn assumption_contradicting_unit_is_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        s.add_clause(&[v[0]]);
        assert_eq!(s.solve(&[!v[0]]), SolveResult::Unsat);
        assert_eq!(s.solve(&[v[0]]), SolveResult::Sat);
    }

    #[test]
    fn conflict_budget_reports_unknown() {
        // A hard instance: pigeonhole 6 into 5 with a 3-conflict budget.
        let mut s = Solver::new();
        let n = 6;
        let m = 5;
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..m).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for pi in p.iter() {
            s.add_clause(&pi.clone());
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
        s.set_conflict_budget(Some(3));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        s.set_conflict_budget(None);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
    }

    fn pigeonhole(s: &mut Solver, n: usize, m: usize) {
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..m).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for pi in p.iter() {
            s.add_clause(&pi.clone());
        }
        #[allow(clippy::needless_range_loop)]
        for j in 0..m {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[!p[i1][j], !p[i2][j]]);
                }
            }
        }
    }

    #[test]
    fn expired_deadline_reports_unknown() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        s.set_deadline(Some(Instant::now()));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        assert!(s.interrupted());
        // Removing the deadline restores normal operation.
        s.set_deadline(None);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(!s.interrupted());
    }

    #[test]
    fn interrupt_flag_stops_search() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        let flag = Arc::new(AtomicBool::new(true));
        s.set_interrupt(Some(Arc::clone(&flag)));
        assert_eq!(s.solve(&[]), SolveResult::Unknown);
        assert!(s.interrupted());
        flag.store(false, Ordering::Relaxed);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        assert!(!s.interrupted());
    }

    #[test]
    fn generous_deadline_does_not_interfere() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause(&[v[0], v[1]]);
        s.set_deadline(Some(Instant::now() + std::time::Duration::from_secs(3600)));
        s.set_interrupt(Some(Arc::new(AtomicBool::new(false))));
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert!(!s.interrupted());
    }

    #[test]
    fn tautologies_and_duplicates_handled() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        assert!(s.add_clause(&[v[0], !v[0]])); // tautology dropped
        assert!(s.add_clause(&[v[1], v[1], v[1]])); // dedup to unit
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        assert_eq!(s.value(v[1].var()), Some(true));
    }

    #[test]
    fn xor_chain_model_is_consistent() {
        // x0 xor x1 = 1, x1 xor x2 = 1, ... via CNF; check model parity.
        let mut s = Solver::new();
        let v = lits(&mut s, 8);
        for i in 0..7 {
            let (a, b) = (v[i], v[i + 1]);
            s.add_clause(&[a, b]);
            s.add_clause(&[!a, !b]);
        }
        assert_eq!(s.solve(&[]), SolveResult::Sat);
        for i in 0..7 {
            let a = s.value(v[i].var()).unwrap();
            let b = s.value(v[i + 1].var()).unwrap();
            assert!(a ^ b, "adjacent vars must differ");
        }
    }

    #[test]
    fn luby_prefix() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u32), e, "luby({i})");
        }
    }

    #[test]
    fn stats_are_tracked() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause(&[v[0], v[1], v[2]]);
        s.solve(&[]);
        assert!(s.num_decisions() >= 1);
        assert!(s.num_vars() == 3);
    }

    #[test]
    fn learnt_and_restart_stats_are_tracked() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7, 6);
        assert_eq!(s.solve(&[]), SolveResult::Unsat);
        let stats = s.stats();
        assert!(stats.conflicts > 0);
        assert!(
            stats.learnt_clauses > 0,
            "a conflict-driven refutation must learn clauses"
        );
        assert!(
            stats.learnt_literals >= stats.learnt_clauses,
            "every learnt clause has at least one literal"
        );
        assert!(
            stats.restarts > 0,
            "php(7,6) needs more than the first 64-conflict Luby run \
             (saw {} conflicts)",
            stats.conflicts
        );
        // Snapshots fold across solvers.
        let mut total = SolverStats::default();
        total += stats;
        total += stats;
        assert_eq!(total.learnt_clauses, 2 * stats.learnt_clauses);
        assert_eq!(total.restarts, 2 * stats.restarts);
    }
}
