//! Property-based tests: the CDCL solver against a brute-force oracle.

use eco_sat::{Lit, SolveResult, Solver, Var};
use proptest::prelude::*;

const MAX_VARS: usize = 8;

/// A random CNF: clauses of literal codes (var, phase).
#[derive(Debug, Clone)]
struct RandomCnf {
    num_vars: usize,
    clauses: Vec<Vec<(usize, bool)>>,
}

fn cnf_strategy() -> impl Strategy<Value = RandomCnf> {
    (2usize..=MAX_VARS).prop_flat_map(|nv| {
        let clause = proptest::collection::vec((0..nv, any::<bool>()), 1..=4);
        let clauses = proptest::collection::vec(clause, 1..24);
        clauses.prop_map(move |clauses| RandomCnf {
            num_vars: nv,
            clauses,
        })
    })
}

fn brute_force(cnf: &RandomCnf) -> Option<Vec<bool>> {
    'outer: for j in 0..(1u32 << cnf.num_vars) {
        let assign: Vec<bool> = (0..cnf.num_vars).map(|i| (j >> i) & 1 == 1).collect();
        for clause in &cnf.clauses {
            if !clause.iter().any(|&(v, phase)| assign[v] == phase) {
                continue 'outer;
            }
        }
        return Some(assign);
    }
    None
}

fn load(cnf: &RandomCnf) -> (Solver, Vec<Var>) {
    let mut s = Solver::new();
    let vars: Vec<Var> = (0..cnf.num_vars).map(|_| s.new_var()).collect();
    for clause in &cnf.clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(v, phase)| Lit::with_phase(vars[v], phase))
            .collect();
        s.add_clause(&lits);
    }
    (s, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_agrees_with_brute_force(cnf in cnf_strategy()) {
        let oracle = brute_force(&cnf);
        let (mut s, vars) = load(&cnf);
        match s.solve(&[]) {
            SolveResult::Sat => {
                prop_assert!(oracle.is_some(), "solver SAT but formula UNSAT");
                // Model must satisfy every clause.
                for clause in &cnf.clauses {
                    let ok = clause.iter().any(|&(v, phase)| {
                        s.value(vars[v]).unwrap_or(false) == phase
                    });
                    prop_assert!(ok, "model violates clause {clause:?}");
                }
            }
            SolveResult::Unsat => {
                prop_assert!(oracle.is_none(), "solver UNSAT but formula SAT");
            }
            SolveResult::Unknown => prop_assert!(false, "no budget was set"),
        }
    }

    #[test]
    fn assumptions_equal_added_units(cnf in cnf_strategy(), phases in proptest::collection::vec(any::<bool>(), MAX_VARS)) {
        // Solving under assumptions must agree with solving a copy where the
        // assumptions are unit clauses.
        let (mut s1, vars1) = load(&cnf);
        let assumptions: Vec<Lit> = (0..cnf.num_vars.min(3))
            .map(|i| Lit::with_phase(vars1[i], phases[i]))
            .collect();
        let r1 = s1.solve(&assumptions);

        let (mut s2, vars2) = load(&cnf);
        let mut ok = true;
        for i in 0..cnf.num_vars.min(3) {
            ok &= s2.add_clause(&[Lit::with_phase(vars2[i], phases[i])]);
        }
        let r2 = if ok { s2.solve(&[]) } else { SolveResult::Unsat };
        prop_assert_eq!(r1, r2);
    }

    #[test]
    fn solver_is_reusable_across_calls(cnf in cnf_strategy()) {
        let (mut s, vars) = load(&cnf);
        let first = s.solve(&[]);
        let second = s.solve(&[]);
        prop_assert_eq!(first, second);
        if first == SolveResult::Sat {
            // Model still satisfies all clauses on the second call.
            for clause in &cnf.clauses {
                let ok = clause.iter().any(|&(v, phase)| {
                    s.value(vars[v]).unwrap_or(false) == phase
                });
                prop_assert!(ok);
            }
        }
    }

    #[test]
    fn model_enumeration_counts_match(cnf in cnf_strategy()) {
        // Count models over the first min(nv,5) vars via blocking clauses,
        // and compare with brute force projected counts.
        let proj = cnf.num_vars.min(5);
        let mut expected = std::collections::HashSet::new();
        for j in 0..(1u32 << cnf.num_vars) {
            let assign: Vec<bool> = (0..cnf.num_vars).map(|i| (j >> i) & 1 == 1).collect();
            let sat = cnf.clauses.iter().all(|clause| {
                clause.iter().any(|&(v, phase)| assign[v] == phase)
            });
            if sat {
                let key: Vec<bool> = assign[..proj].to_vec();
                expected.insert(key);
            }
        }
        let (mut s, vars) = load(&cnf);
        let mut found = 0usize;
        while s.solve(&[]) == SolveResult::Sat {
            let block: Vec<Lit> = (0..proj)
                .map(|i| Lit::with_phase(vars[i], !s.value(vars[i]).unwrap_or(false)))
                .collect();
            found += 1;
            prop_assert!(found <= expected.len(), "enumerated too many models");
            s.add_clause(&block);
        }
        prop_assert_eq!(found, expected.len());
    }
}
