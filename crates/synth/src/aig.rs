//! And-inverter graphs (AIGs).
//!
//! The standard intermediate representation of modern logic synthesis: all
//! logic is decomposed into two-input ANDs with complemented edges, with
//! structural hashing making sharing maximal. `eco-synth` uses AIGs for the
//! most aggressive restructuring mode ([`crate::opt::OptOptions::aggressive`]):
//! converting a typed-gate netlist through an AIG and back erases all
//! original gate boundaries, the strongest structural-dissimilarity
//! treatment available to the workload generator.

use std::collections::HashMap;

use eco_netlist::{topo, Circuit, GateKind, NetId, NetlistError};

/// A literal: an AIG node with an optional complement.
///
/// Node 0 is the constant-false terminal, so `AigLit::FALSE` is `0` and
/// `AigLit::TRUE` its complement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false.
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true.
    pub const TRUE: AigLit = AigLit(1);

    /// The literal for `node` with the given complement flag.
    #[inline]
    pub fn new(node: u32, complement: bool) -> Self {
        AigLit((node << 1) | complement as u32)
    }

    /// Index of the underlying node.
    #[inline]
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// Whether the edge is complemented.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    #[inline]
    #[allow(clippy::should_implement_trait)] // domain name, Copy receiver
    pub fn not(self) -> Self {
        AigLit(self.0 ^ 1)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AigNode {
    Const,
    Input(u32),
    And(AigLit, AigLit),
}

/// An and-inverter graph with structural hashing.
///
/// # Example
///
/// ```
/// use eco_synth::aig::Aig;
///
/// let mut g = Aig::new();
/// let a = g.add_input("a");
/// let b = g.add_input("b");
/// let y = g.xor(a, b);
/// g.add_output("y", y);
/// assert_eq!(g.eval(&[true, false]), vec![true]);
/// assert_eq!(g.eval(&[true, true]), vec![false]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<(AigLit, AigLit), u32>,
    input_names: Vec<String>,
    outputs: Vec<(String, AigLit)>,
}

impl Aig {
    /// Creates an empty AIG.
    pub fn new() -> Self {
        Aig {
            nodes: vec![AigNode::Const],
            strash: HashMap::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Number of nodes (constant and inputs included).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, AigNode::And(..)))
            .count()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.input_names.len()
    }

    /// The output list `(name, literal)`.
    pub fn outputs(&self) -> &[(String, AigLit)] {
        &self.outputs
    }

    /// Adds a primary input and returns its literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> AigLit {
        let id = self.nodes.len() as u32;
        self.nodes
            .push(AigNode::Input(self.input_names.len() as u32));
        self.input_names.push(name.into());
        AigLit::new(id, false)
    }

    /// Registers an output.
    pub fn add_output(&mut self, name: impl Into<String>, lit: AigLit) {
        self.outputs.push((name.into(), lit));
    }

    /// The conjunction of two literals, with constant folding, trivial-case
    /// simplification, and structural hashing.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Normalization and trivial cases.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == b.not() {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(a, b)) {
            return AigLit::new(id, false);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(a, b));
        self.strash.insert((a, b), id);
        AigLit::new(id, false)
    }

    /// Disjunction via De Morgan.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.and(a.not(), b.not()).not()
    }

    /// Exclusive or (two ANDs plus sharing).
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let t1 = self.and(a, b.not());
        let t2 = self.and(a.not(), b);
        self.or(t1, t2)
    }

    /// Multiplexer `s ? d1 : d0`.
    pub fn mux(&mut self, s: AigLit, d0: AigLit, d1: AigLit) -> AigLit {
        let t1 = self.and(s, d1);
        let t0 = self.and(s.not(), d0);
        self.or(t0, t1)
    }

    /// Evaluates the registered outputs on an input assignment.
    ///
    /// # Panics
    ///
    /// Panics when `inputs.len()` differs from the input count.
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.num_inputs(), "input count mismatch");
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match *node {
                AigNode::Const => false,
                AigNode::Input(pos) => inputs[pos as usize],
                AigNode::And(a, b) => {
                    let va = values[a.node() as usize] ^ a.is_complement();
                    let vb = values[b.node() as usize] ^ b.is_complement();
                    va && vb
                }
            };
        }
        self.outputs
            .iter()
            .map(|(_, l)| values[l.node() as usize] ^ l.is_complement())
            .collect()
    }

    /// Logic level (AND depth) of every node.
    pub fn levels(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = node {
                lv[i] = lv[a.node() as usize].max(lv[b.node() as usize]) + 1;
            }
        }
        lv
    }

    /// Maximum output level.
    pub fn depth(&self) -> u32 {
        let lv = self.levels();
        self.outputs
            .iter()
            .map(|(_, l)| lv[l.node() as usize])
            .max()
            .unwrap_or(0)
    }

    /// Imports a gate-level circuit (live logic only).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] for malformed inputs.
    pub fn from_circuit(circuit: &Circuit) -> Result<Self, NetlistError> {
        let mut g = Aig::new();
        let mut lits: HashMap<NetId, AigLit> = HashMap::new();
        for &id in circuit.inputs() {
            let lit = g.add_input(circuit.node(id).name().unwrap_or(""));
            lits.insert(id.into(), lit);
        }
        for id in topo::topo_order(circuit)? {
            let node = circuit.node(id);
            let net: NetId = id.into();
            let f: Vec<AigLit> = node.fanins().iter().map(|w| lits[w]).collect();
            let lit = match node.kind() {
                GateKind::Input => continue,
                GateKind::Const0 => AigLit::FALSE,
                GateKind::Const1 => AigLit::TRUE,
                GateKind::Buf => f[0],
                GateKind::Not => f[0].not(),
                GateKind::And => f.iter().skip(1).fold(f[0], |acc, &x| g.and(acc, x)),
                GateKind::Nand => f.iter().skip(1).fold(f[0], |acc, &x| g.and(acc, x)).not(),
                GateKind::Or => f.iter().skip(1).fold(f[0], |acc, &x| g.or(acc, x)),
                GateKind::Nor => f.iter().skip(1).fold(f[0], |acc, &x| g.or(acc, x)).not(),
                GateKind::Xor => f.iter().skip(1).fold(f[0], |acc, &x| g.xor(acc, x)),
                GateKind::Xnor => f.iter().skip(1).fold(f[0], |acc, &x| g.xor(acc, x)).not(),
                GateKind::Mux => g.mux(f[0], f[1], f[2]),
            };
            lits.insert(net, lit);
        }
        for port in circuit.outputs() {
            g.add_output(port.name(), lits[&port.net()]);
        }
        Ok(g)
    }

    /// Exports back to a typed-gate circuit (AND and NOT gates only).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from construction (cannot occur for a
    /// well-formed AIG).
    pub fn to_circuit(&self, name: impl Into<String>) -> Result<Circuit, NetlistError> {
        let mut c = Circuit::new(name);
        let mut nets: Vec<Option<NetId>> = vec![None; self.nodes.len()];
        let mut inverted: HashMap<NetId, NetId> = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            nets[i] = Some(match *node {
                AigNode::Const => c.constant(false),
                AigNode::Input(pos) => c.add_input(self.input_names[pos as usize].clone()),
                AigNode::And(a, b) => {
                    let wa = resolve(&mut c, &nets, &mut inverted, a)?;
                    let wb = resolve(&mut c, &nets, &mut inverted, b)?;
                    c.add_gate(GateKind::And, &[wa, wb])?
                }
            });
        }
        for (name, lit) in &self.outputs {
            let w = resolve(&mut c, &nets, &mut inverted, *lit)?;
            c.add_output(name.clone(), w);
        }
        c.sweep();
        return Ok(c);

        fn resolve(
            c: &mut Circuit,
            nets: &[Option<NetId>],
            inverted: &mut HashMap<NetId, NetId>,
            lit: AigLit,
        ) -> Result<NetId, NetlistError> {
            let base = nets[lit.node() as usize].expect("topological construction");
            if !lit.is_complement() {
                return Ok(base);
            }
            if let Some(&w) = inverted.get(&base) {
                return Ok(w);
            }
            let w = c.add_gate(GateKind::Not, &[base])?;
            inverted.insert(base, w);
            Ok(w)
        }
    }

    /// Rebuilds the AIG with depth-balanced AND trees.
    ///
    /// Conjunction chains are collected and re-associated as balanced
    /// binary trees (sorted by operand depth), typically reducing logic
    /// depth on long chains at equal node count.
    pub fn balance(&self) -> Aig {
        let mut g = Aig::new();
        let mut map: Vec<Option<AigLit>> = vec![None; self.nodes.len()];
        map[0] = Some(AigLit::FALSE);
        for (i, node) in self.nodes.iter().enumerate() {
            match *node {
                AigNode::Const => {}
                AigNode::Input(pos) => {
                    let lit = g.add_input(self.input_names[pos as usize].clone());
                    map[i] = Some(lit);
                }
                AigNode::And(..) => {
                    // Collect the maximal conjunction chain under this node.
                    let mut leaves: Vec<AigLit> = Vec::new();
                    self.collect_and_leaves(AigLit::new(i as u32, false), &mut leaves);
                    let mut mapped: Vec<AigLit> = leaves
                        .iter()
                        .map(|l| {
                            let m = map[l.node() as usize].expect("topological order");
                            if l.is_complement() {
                                m.not()
                            } else {
                                m
                            }
                        })
                        .collect();
                    // Balanced reduction: combine the two shallowest first.
                    while mapped.len() > 1 {
                        let lv = g.levels();
                        let depth_of = |l: &AigLit| lv[l.node() as usize];
                        mapped.sort_by_key(depth_of);
                        let a = mapped.remove(0);
                        let b = mapped.remove(0);
                        let r = g.and(a, b);
                        mapped.push(r);
                    }
                    map[i] = Some(mapped[0]);
                }
            }
        }
        for (name, lit) in &self.outputs {
            let m = map[lit.node() as usize].expect("outputs are reachable");
            let m = if lit.is_complement() { m.not() } else { m };
            g.add_output(name.clone(), m);
        }
        g
    }

    /// Collects conjunction leaves of `lit`, descending only through
    /// non-complemented AND edges.
    fn collect_and_leaves(&self, lit: AigLit, out: &mut Vec<AigLit>) {
        match self.nodes[lit.node() as usize] {
            AigNode::And(a, b) if !lit.is_complement() => {
                self.collect_and_leaves(a, out);
                self.collect_and_leaves(b, out);
            }
            _ => out.push(lit),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new("s");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Mux, &[d, g1, a]).unwrap();
        let g3 = c.add_gate(GateKind::Nor, &[g2, b, d]).unwrap();
        c.add_output("y", g3);
        c.add_output("t", g1);
        c
    }

    #[test]
    fn literal_encoding() {
        let l = AigLit::new(5, true);
        assert_eq!(l.node(), 5);
        assert!(l.is_complement());
        assert_eq!(l.not().node(), 5);
        assert!(!l.not().is_complement());
        assert_eq!(AigLit::FALSE.not(), AigLit::TRUE);
    }

    #[test]
    fn and_simplification_rules() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        assert_eq!(g.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(g.and(AigLit::TRUE, b), b);
        assert_eq!(g.and(a, a), a);
        assert_eq!(g.and(a, a.not()), AigLit::FALSE);
        // Structural hashing: same operands -> same node.
        let ab1 = g.and(a, b);
        let ab2 = g.and(b, a);
        assert_eq!(ab1, ab2);
    }

    #[test]
    fn roundtrip_preserves_function() {
        let c = sample_circuit();
        let g = Aig::from_circuit(&c).unwrap();
        let back = g.to_circuit("roundtrip").unwrap();
        back.check_well_formed().unwrap();
        for j in 0..8u8 {
            let assign = [(j & 1) == 1, (j & 2) == 2, (j & 4) == 4];
            let expect = c.eval(&assign).unwrap();
            assert_eq!(g.eval(&assign), expect, "aig at {j}");
            assert_eq!(back.eval(&assign).unwrap(), expect, "circuit at {j}");
        }
    }

    #[test]
    fn roundtrip_contains_only_and_not() {
        let c = sample_circuit();
        let g = Aig::from_circuit(&c).unwrap();
        let back = g.to_circuit("rt").unwrap();
        for id in back.iter_live() {
            let k = back.node(id).kind();
            assert!(
                matches!(
                    k,
                    GateKind::Input | GateKind::And | GateKind::Not | GateKind::Const0
                ),
                "unexpected gate kind {k}"
            );
        }
    }

    #[test]
    fn balancing_reduces_chain_depth() {
        // A long AND chain: depth n-1 unbalanced, ~log2(n) balanced.
        let mut g = Aig::new();
        let inputs: Vec<AigLit> = (0..16).map(|i| g.add_input(format!("x{i}"))).collect();
        let mut acc = inputs[0];
        for &x in &inputs[1..] {
            acc = g.and(acc, x);
        }
        g.add_output("y", acc);
        assert_eq!(g.depth(), 15);
        let balanced = g.balance();
        assert!(
            balanced.depth() <= 5,
            "depth {} after balance",
            balanced.depth()
        );
        // Function preserved on a few patterns.
        for j in [0u32, 1, 0xFFFF, 0xAAAA, 0x7FFF] {
            let assign: Vec<bool> = (0..16).map(|i| (j >> i) & 1 == 1).collect();
            assert_eq!(g.eval(&assign), balanced.eval(&assign), "pattern {j:#x}");
        }
    }

    #[test]
    fn balance_preserves_arbitrary_function() {
        let c = sample_circuit();
        let g = Aig::from_circuit(&c).unwrap();
        let balanced = g.balance();
        for j in 0..8u8 {
            let assign = [(j & 1) == 1, (j & 2) == 2, (j & 4) == 4];
            assert_eq!(g.eval(&assign), balanced.eval(&assign), "{j}");
        }
    }

    #[test]
    fn sharing_through_strash() {
        let mut g = Aig::new();
        let a = g.add_input("a");
        let b = g.add_input("b");
        let x1 = g.xor(a, b);
        let x2 = g.xor(a, b);
        assert_eq!(x1, x2);
        assert_eq!(g.num_ands(), 3);
    }

    #[test]
    fn depth_of_constant_graph_is_zero() {
        let mut g = Aig::new();
        g.add_output("k", AigLit::TRUE);
        assert_eq!(g.depth(), 0);
        assert_eq!(g.eval(&[]), vec![true]);
    }
}
