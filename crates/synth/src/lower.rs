//! Lightweight synthesis: direct elaboration of an [`RtlModule`] into gates.
//!
//! Each word signal lowers to one net per bit; input and output words map to
//! bit-level ports named `word[i]`, which is the label convention used for
//! behavioural correspondence between an implementation and a revised
//! specification. No optimization is performed — this is the technology-
//! independent representation the paper synthesizes from VHDL (§6).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use eco_netlist::{Circuit, GateKind, NetId, NetlistError};

use crate::rtl::{ReduceOp, RtlModule, WordExpr};

/// Errors produced by elaboration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// An expression referenced an undefined input or signal.
    UnknownName(String),
    /// Binary operands had different widths.
    WidthMismatch {
        /// Operation description.
        op: &'static str,
        /// Left operand width.
        left: u32,
        /// Right operand width.
        right: u32,
    },
    /// A mux select or `GATE` bit operand was not 1 bit wide.
    NotSingleBit {
        /// Operation description.
        op: &'static str,
        /// Actual width.
        width: u32,
    },
    /// A slice had `lo > hi` or exceeded the operand width.
    BadSlice {
        /// Low bound requested.
        lo: u32,
        /// High bound requested.
        hi: u32,
        /// Operand width.
        width: u32,
    },
    /// A constant's value needs more bits than its declared width.
    ConstTooWide {
        /// Constant value.
        value: u64,
        /// Declared width.
        width: u32,
    },
    /// Netlist construction failed (internal invariant violation).
    Netlist(NetlistError),
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::UnknownName(n) => write!(f, "unknown input or signal {n:?}"),
            SynthesisError::WidthMismatch { op, left, right } => {
                write!(f, "width mismatch in {op}: {left} vs {right}")
            }
            SynthesisError::NotSingleBit { op, width } => {
                write!(f, "{op} control operand must be 1 bit, got {width}")
            }
            SynthesisError::BadSlice { lo, hi, width } => {
                write!(f, "invalid slice [{lo}..{hi}] of a {width}-bit word")
            }
            SynthesisError::ConstTooWide { value, width } => {
                write!(f, "constant {value} does not fit in {width} bits")
            }
            SynthesisError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<NetlistError> for SynthesisError {
    fn from(e: NetlistError) -> Self {
        SynthesisError::Netlist(e)
    }
}

/// The bit-level port label of bit `i` of word `name`.
pub fn bit_label(name: &str, bit: u32) -> String {
    format!("{name}[{bit}]")
}

struct Elaborator<'a> {
    module: &'a RtlModule,
    circuit: Circuit,
    env: HashMap<String, Vec<NetId>>,
}

impl<'a> Elaborator<'a> {
    fn eval(&mut self, expr: &WordExpr) -> Result<Vec<NetId>, SynthesisError> {
        match expr {
            WordExpr::Input(name) | WordExpr::Signal(name) => self
                .env
                .get(name.as_str())
                .cloned()
                .ok_or_else(|| SynthesisError::UnknownName(name.clone())),
            WordExpr::Const { value, width } => {
                if *width < 64 && *value >> *width != 0 {
                    return Err(SynthesisError::ConstTooWide {
                        value: *value,
                        width: *width,
                    });
                }
                Ok((0..*width)
                    .map(|i| self.circuit.constant((*value >> i) & 1 == 1))
                    .collect())
            }
            WordExpr::Not(a) => {
                let a = self.eval(a)?;
                a.iter()
                    .map(|&w| Ok(self.circuit.add_gate(GateKind::Not, &[w])?))
                    .collect()
            }
            WordExpr::And(a, b) => self.bitwise("and", GateKind::And, a, b),
            WordExpr::Or(a, b) => self.bitwise("or", GateKind::Or, a, b),
            WordExpr::Xor(a, b) => self.bitwise("xor", GateKind::Xor, a, b),
            WordExpr::Add(a, b) => {
                let a = self.eval(a)?;
                let b = self.eval(b)?;
                self.check_widths("add", &a, &b)?;
                // Ripple-carry, carry-out discarded (modulo arithmetic).
                let mut out = Vec::with_capacity(a.len());
                let mut carry: Option<NetId> = None;
                for (&ai, &bi) in a.iter().zip(&b) {
                    let s0 = self.circuit.add_gate(GateKind::Xor, &[ai, bi])?;
                    match carry {
                        None => {
                            out.push(s0);
                            carry = Some(self.circuit.add_gate(GateKind::And, &[ai, bi])?);
                        }
                        Some(c) => {
                            let s = self.circuit.add_gate(GateKind::Xor, &[s0, c])?;
                            out.push(s);
                            let g = self.circuit.add_gate(GateKind::And, &[ai, bi])?;
                            let p = self.circuit.add_gate(GateKind::And, &[s0, c])?;
                            carry = Some(self.circuit.add_gate(GateKind::Or, &[g, p])?);
                        }
                    }
                }
                Ok(out)
            }
            WordExpr::Eq(a, b) => {
                let a = self.eval(a)?;
                let b = self.eval(b)?;
                self.check_widths("eq", &a, &b)?;
                let bits: Vec<NetId> = a
                    .iter()
                    .zip(&b)
                    .map(|(&ai, &bi)| {
                        self.circuit
                            .add_gate(GateKind::Xnor, &[ai, bi])
                            .map_err(SynthesisError::from)
                    })
                    .collect::<Result<_, _>>()?;
                Ok(vec![self.reduce_nets(ReduceOp::And, &bits)?])
            }
            WordExpr::Mux { sel, d0, d1 } => {
                let sel = self.single_bit("mux", sel)?;
                let d0 = self.eval(d0)?;
                let d1 = self.eval(d1)?;
                self.check_widths("mux", &d0, &d1)?;
                d0.iter()
                    .zip(&d1)
                    .map(|(&a, &b)| Ok(self.circuit.add_gate(GateKind::Mux, &[sel, a, b])?))
                    .collect()
            }
            WordExpr::Gate(word, bit) => {
                let bit = self.single_bit("gate", bit)?;
                let word = self.eval(word)?;
                word.iter()
                    .map(|&w| Ok(self.circuit.add_gate(GateKind::And, &[w, bit])?))
                    .collect()
            }
            WordExpr::Slice { word, lo, hi } => {
                let word = self.eval(word)?;
                if lo > hi || *hi as usize >= word.len() {
                    return Err(SynthesisError::BadSlice {
                        lo: *lo,
                        hi: *hi,
                        width: word.len() as u32,
                    });
                }
                Ok(word[*lo as usize..=*hi as usize].to_vec())
            }
            WordExpr::Concat(hi, lo) => {
                let hi = self.eval(hi)?;
                let mut out = self.eval(lo)?;
                out.extend(hi);
                Ok(out)
            }
            WordExpr::Reduce(op, a) => {
                let a = self.eval(a)?;
                Ok(vec![self.reduce_nets(*op, &a)?])
            }
        }
    }

    fn bitwise(
        &mut self,
        op: &'static str,
        kind: GateKind,
        a: &WordExpr,
        b: &WordExpr,
    ) -> Result<Vec<NetId>, SynthesisError> {
        let a = self.eval(a)?;
        let b = self.eval(b)?;
        self.check_widths(op, &a, &b)?;
        a.iter()
            .zip(&b)
            .map(|(&ai, &bi)| Ok(self.circuit.add_gate(kind, &[ai, bi])?))
            .collect()
    }

    fn reduce_nets(&mut self, op: ReduceOp, bits: &[NetId]) -> Result<NetId, SynthesisError> {
        let kind = match op {
            ReduceOp::And => GateKind::And,
            ReduceOp::Or => GateKind::Or,
            ReduceOp::Xor => GateKind::Xor,
        };
        let mut acc = bits[0];
        if bits.len() == 1 {
            return Ok(acc);
        }
        for &b in &bits[1..] {
            acc = self.circuit.add_gate(kind, &[acc, b])?;
        }
        Ok(acc)
    }

    fn single_bit(&mut self, op: &'static str, e: &WordExpr) -> Result<NetId, SynthesisError> {
        let bits = self.eval(e)?;
        if bits.len() != 1 {
            return Err(SynthesisError::NotSingleBit {
                op,
                width: bits.len() as u32,
            });
        }
        Ok(bits[0])
    }

    fn check_widths(
        &self,
        op: &'static str,
        a: &[NetId],
        b: &[NetId],
    ) -> Result<(), SynthesisError> {
        if a.len() != b.len() {
            return Err(SynthesisError::WidthMismatch {
                op,
                left: a.len() as u32,
                right: b.len() as u32,
            });
        }
        Ok(())
    }
}

/// Elaborates `module` into a gate-level [`Circuit`] without optimization.
///
/// Input word `w` of width `n` becomes primary inputs `w[0]..w[n-1]`;
/// output port `o` exposing an `n`-bit signal becomes primary outputs
/// `o[0]..o[n-1]`.
///
/// # Errors
///
/// See [`SynthesisError`]; the common cases are unknown names and operand
/// width mismatches.
pub fn synthesize(module: &RtlModule) -> Result<Circuit, SynthesisError> {
    let mut el = Elaborator {
        module,
        circuit: Circuit::new(module.name()),
        env: HashMap::new(),
    };
    for (name, width) in module.inputs() {
        let bits: Vec<NetId> = (0..*width)
            .map(|i| el.circuit.add_input(bit_label(name, i)))
            .collect();
        el.env.insert(name.clone(), bits);
    }
    for (name, expr) in module.signals() {
        let bits = el.eval(expr)?;
        el.env.insert(name.clone(), bits);
    }
    for port in module.outputs() {
        let bits = el
            .env
            .get(&port.signal)
            .cloned()
            .ok_or_else(|| SynthesisError::UnknownName(port.signal.clone()))?;
        for (i, w) in bits.iter().enumerate() {
            el.circuit.add_output(bit_label(&port.name, i as u32), *w);
        }
    }
    let _ = el.module;
    el.circuit.check_well_formed()?;
    Ok(el.circuit)
}

/// Evaluates `module` at the word level (an elaboration-independent oracle
/// used by tests). Input words are given in declaration order.
///
/// # Errors
///
/// Same name/width conditions as [`synthesize`].
pub fn interpret(module: &RtlModule, inputs: &[u64]) -> Result<Vec<(String, u64)>, SynthesisError> {
    let mut env: HashMap<String, (u64, u32)> = HashMap::new();
    for ((name, width), &value) in module.inputs().iter().zip(inputs) {
        let mask = if *width == 64 {
            !0
        } else {
            (1u64 << width) - 1
        };
        env.insert(name.clone(), (value & mask, *width));
    }
    fn eval(e: &WordExpr, env: &HashMap<String, (u64, u32)>) -> Result<(u64, u32), SynthesisError> {
        let mask = |w: u32| if w == 64 { !0u64 } else { (1u64 << w) - 1 };
        Ok(match e {
            WordExpr::Input(n) | WordExpr::Signal(n) => *env
                .get(n.as_str())
                .ok_or_else(|| SynthesisError::UnknownName(n.clone()))?,
            WordExpr::Const { value, width } => (*value & mask(*width), *width),
            WordExpr::Not(a) => {
                let (v, w) = eval(a, env)?;
                (!v & mask(w), w)
            }
            WordExpr::And(a, b) => {
                let (va, wa) = eval(a, env)?;
                let (vb, _) = eval(b, env)?;
                (va & vb, wa)
            }
            WordExpr::Or(a, b) => {
                let (va, wa) = eval(a, env)?;
                let (vb, _) = eval(b, env)?;
                (va | vb, wa)
            }
            WordExpr::Xor(a, b) => {
                let (va, wa) = eval(a, env)?;
                let (vb, _) = eval(b, env)?;
                (va ^ vb, wa)
            }
            WordExpr::Add(a, b) => {
                let (va, wa) = eval(a, env)?;
                let (vb, _) = eval(b, env)?;
                (va.wrapping_add(vb) & mask(wa), wa)
            }
            WordExpr::Eq(a, b) => {
                let (va, _) = eval(a, env)?;
                let (vb, _) = eval(b, env)?;
                ((va == vb) as u64, 1)
            }
            WordExpr::Mux { sel, d0, d1 } => {
                let (s, _) = eval(sel, env)?;
                let (v0, w) = eval(d0, env)?;
                let (v1, _) = eval(d1, env)?;
                (if s & 1 == 1 { v1 } else { v0 }, w)
            }
            WordExpr::Gate(word, bit) => {
                let (v, w) = eval(word, env)?;
                let (b, _) = eval(bit, env)?;
                (if b & 1 == 1 { v } else { 0 }, w)
            }
            WordExpr::Slice { word, lo, hi } => {
                let (v, _) = eval(word, env)?;
                let w = hi - lo + 1;
                ((v >> lo) & mask(w), w)
            }
            WordExpr::Concat(hi, lo) => {
                let (vh, wh) = eval(hi, env)?;
                let (vl, wl) = eval(lo, env)?;
                ((vh << wl) | vl, wh + wl)
            }
            WordExpr::Reduce(op, a) => {
                let (v, w) = eval(a, env)?;
                let bits = (0..w).map(|i| (v >> i) & 1 == 1);
                let r = match op {
                    ReduceOp::And => bits.clone().all(|b| b),
                    ReduceOp::Or => bits.clone().any(|b| b),
                    ReduceOp::Xor => bits.clone().fold(false, |a, b| a ^ b),
                };
                (r as u64, 1)
            }
        })
    }
    let mut out = Vec::new();
    let mut scratch = env;
    for (name, expr) in module.signals() {
        let v = eval(expr, &scratch)?;
        scratch.insert(name.clone(), v);
    }
    for port in module.outputs() {
        let (v, _) = *scratch
            .get(&port.signal)
            .ok_or_else(|| SynthesisError::UnknownName(port.signal.clone()))?;
        out.push((port.name.clone(), v));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rtl::{ReduceOp, RtlModule, WordExpr as E};

    /// Evaluates circuit outputs of word `name` as an integer.
    fn circuit_word(c: &Circuit, inputs: &[(String, u32, u64)], out: &str, width: u32) -> u64 {
        let mut assign = vec![false; c.num_inputs()];
        for (name, w, value) in inputs {
            for i in 0..*w {
                let net = c
                    .input_by_name(&bit_label(name, i))
                    .unwrap_or_else(|| panic!("input {name}[{i}]"));
                let pos = c.input_position(net.source()).unwrap();
                assign[pos] = (value >> i) & 1 == 1;
            }
        }
        let values = c.eval(&assign).unwrap();
        let mut word = 0u64;
        for i in 0..width {
            let idx = c
                .output_by_name(&bit_label(out, i))
                .unwrap_or_else(|| panic!("output {out}[{i}]"));
            if values[idx as usize] {
                word |= 1 << i;
            }
        }
        word
    }

    fn check_against_interpreter(m: &RtlModule, samples: &[Vec<u64>]) {
        let c = synthesize(m).unwrap();
        for s in samples {
            let oracle = interpret(m, s).unwrap();
            let named: Vec<(String, u32, u64)> = m
                .inputs()
                .iter()
                .zip(s)
                .map(|((n, w), &v)| (n.clone(), *w, v))
                .collect();
            for (name, expect) in &oracle {
                // Find output width by counting ports.
                let width = (0..65)
                    .find(|&i| c.output_by_name(&bit_label(name, i)).is_none())
                    .unwrap();
                let got = circuit_word(&c, &named, name, width);
                assert_eq!(got, *expect, "output {name} on {s:?}");
            }
        }
    }

    #[test]
    fn adder_matches_interpreter() {
        let mut m = RtlModule::new("add8");
        m.add_input("a", 8);
        m.add_input("b", 8);
        let s = m.add_signal("s", E::add(E::input("a"), E::input("b")));
        m.add_output("s", s);
        check_against_interpreter(
            &m,
            &[
                vec![0, 0],
                vec![1, 1],
                vec![255, 1],
                vec![170, 85],
                vec![200, 100],
            ],
        );
    }

    #[test]
    fn figure1_style_gating() {
        // V_out := GATE(w_in1, v0) | GATE(w_in2, v1)  (paper Example 1)
        let mut m = RtlModule::new("fig1");
        m.add_input("w_in1", 4);
        m.add_input("w_in2", 4);
        m.add_input("v0", 1);
        m.add_input("v1", 1);
        let g1 = E::gate(E::input("w_in1"), E::input("v0"));
        let g2 = E::gate(E::input("w_in2"), E::input("v1"));
        let v = m.add_signal("vout", E::or(g1, g2));
        m.add_output("vout", v);
        check_against_interpreter(
            &m,
            &[
                vec![0b1010, 0b0101, 0, 0],
                vec![0b1010, 0b0101, 1, 0],
                vec![0b1010, 0b0101, 0, 1],
                vec![0b1010, 0b0101, 1, 1],
            ],
        );
    }

    #[test]
    fn mux_eq_slice_concat_reduce() {
        let mut m = RtlModule::new("misc");
        m.add_input("a", 4);
        m.add_input("b", 4);
        m.add_input("s", 1);
        let eq = m.add_signal("eq", E::eq(E::input("a"), E::input("b")));
        let mx = m.add_signal("mx", E::mux(E::signal("eq"), E::input("a"), E::input("b")));
        let sl = m.add_signal("sl", E::slice(E::signal("mx"), 1, 2));
        let cc = m.add_signal("cc", E::concat(E::signal("sl"), E::input("s")));
        let rd = m.add_signal("rd", E::reduce(ReduceOp::Xor, E::input("a")));
        m.add_output("eq", eq);
        m.add_output("mx", mx);
        m.add_output("sl", sl);
        m.add_output("cc", cc);
        m.add_output("rd", rd);
        check_against_interpreter(
            &m,
            &[vec![3, 3, 1], vec![3, 5, 0], vec![15, 0, 1], vec![9, 9, 0]],
        );
    }

    #[test]
    fn width_mismatch_detected() {
        let mut m = RtlModule::new("bad");
        m.add_input("a", 4);
        m.add_input("b", 2);
        m.add_signal("s", E::and(E::input("a"), E::input("b")));
        assert!(matches!(
            synthesize(&m),
            Err(SynthesisError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn unknown_name_detected() {
        let mut m = RtlModule::new("bad");
        m.add_input("a", 4);
        m.add_signal("s", E::signal("ghost"));
        assert!(matches!(
            synthesize(&m),
            Err(SynthesisError::UnknownName(_))
        ));
    }

    #[test]
    fn bad_slice_detected() {
        let mut m = RtlModule::new("bad");
        m.add_input("a", 4);
        m.add_signal("s", E::slice(E::input("a"), 2, 7));
        assert!(matches!(
            synthesize(&m),
            Err(SynthesisError::BadSlice { .. })
        ));
    }

    #[test]
    fn const_too_wide_detected() {
        let mut m = RtlModule::new("bad");
        m.add_input("a", 2);
        m.add_signal("s", E::and(E::input("a"), E::constant(9, 2)));
        assert!(matches!(
            synthesize(&m),
            Err(SynthesisError::ConstTooWide { .. })
        ));
    }

    #[test]
    fn mux_select_must_be_single_bit() {
        let mut m = RtlModule::new("bad");
        m.add_input("a", 2);
        m.add_signal("s", E::mux(E::input("a"), E::input("a"), E::input("a")));
        assert!(matches!(
            synthesize(&m),
            Err(SynthesisError::NotSingleBit { .. })
        ));
    }
}
