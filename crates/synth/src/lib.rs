//! Lightweight synthesis and logic optimization for syseco.
//!
//! The paper's experimental setup (§6) starts from two artifacts per test
//! case: an implementation `C` that was *heavily optimized* by production
//! synthesis, and a revised specification `C'` obtained from VHDL by
//! *lightweight* technology-independent synthesis. This crate provides both
//! sides:
//!
//! * [`rtl`] — a word-level "RTL-lite" IR ([`RtlModule`], [`WordExpr`])
//!   standing in for the paper's VHDL specifications,
//! * [`lower`] — direct, unoptimized synthesis of an RTL module into an
//!   [`eco_netlist::Circuit`] (the `C'` path),
//! * [`opt`] — the optimization pipeline used to manufacture structural
//!   dissimilarity for the `C` path: constant folding and simplification,
//!   structural hashing, randomized semantics-preserving restructuring
//!   (De Morgan, XOR/MUX decomposition, associativity regrouping), and
//!   SAT-sweeping (merging functionally equivalent nodes), mirroring the
//!   logic-sharing and duplication effects described in §1,
//! * [`aig`] — an and-inverter graph used by the most aggressive
//!   restructuring mode (AIG round-trip + depth balancing).
//!
//! # Example
//!
//! ```
//! use eco_synth::rtl::{RtlModule, WordExpr};
//! use eco_synth::{lower, opt};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = RtlModule::new("demo");
//! m.add_input("a", 4);
//! m.add_input("b", 4);
//! let sum = m.add_signal("sum", WordExpr::add(WordExpr::input("a"), WordExpr::input("b")));
//! m.add_output("sum", sum);
//! let spec = lower::synthesize(&m)?;          // lightweight C'
//! let mut impl_c = spec.clone();
//! opt::optimize(&mut impl_c, &opt::OptOptions::heavy(7))?; // optimized C
//! # Ok(())
//! # }
//! ```

pub mod aig;
pub mod lower;
pub mod opt;
pub mod rtl;

pub use lower::SynthesisError;
pub use rtl::{RtlModule, WordExpr};
