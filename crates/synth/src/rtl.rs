//! RTL-lite: a small word-level IR standing in for the paper's VHDL
//! specifications.
//!
//! A module is a list of word-valued signals defined by [`WordExpr`]s over
//! the module inputs and previously defined signals. Revisions (the "ECO"
//! part) are expressed by editing signal definitions; see `eco-workload`.

use std::collections::HashMap;
use std::fmt;

/// A word-level expression.
///
/// Widths are inferred during elaboration; mismatched operand widths are
/// reported by [`synthesize`](crate::lower::synthesize).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WordExpr {
    /// Reference to a module input by name.
    Input(String),
    /// Reference to a previously defined signal by name.
    Signal(String),
    /// Constant with explicit width (low bits of `value`).
    Const {
        /// Bit value (little-endian).
        value: u64,
        /// Width in bits (1..=64).
        width: u32,
    },
    /// Bitwise negation.
    Not(Box<WordExpr>),
    /// Bitwise conjunction.
    And(Box<WordExpr>, Box<WordExpr>),
    /// Bitwise disjunction.
    Or(Box<WordExpr>, Box<WordExpr>),
    /// Bitwise exclusive or.
    Xor(Box<WordExpr>, Box<WordExpr>),
    /// Unsigned addition (modulo `2^width`, carry discarded).
    Add(Box<WordExpr>, Box<WordExpr>),
    /// Equality comparison; result width 1.
    Eq(Box<WordExpr>, Box<WordExpr>),
    /// Word multiplexer: `sel` must have width 1.
    Mux {
        /// Single-bit select.
        sel: Box<WordExpr>,
        /// Value when `sel = 0`.
        d0: Box<WordExpr>,
        /// Value when `sel = 1`.
        d1: Box<WordExpr>,
    },
    /// The paper's `GATE(word, bit)` operator: bitwise AND of a word with a
    /// single-bit signal (Example 1, §4.2).
    Gate(Box<WordExpr>, Box<WordExpr>),
    /// Bit slice `[lo, hi]` inclusive; result width `hi - lo + 1`.
    Slice {
        /// Operand.
        word: Box<WordExpr>,
        /// Low bit index.
        lo: u32,
        /// High bit index.
        hi: u32,
    },
    /// Concatenation: `hi` occupies the upper bits.
    Concat(Box<WordExpr>, Box<WordExpr>),
    /// Reduction of all bits into one (result width 1).
    Reduce(ReduceOp, Box<WordExpr>),
}

/// Reduction operator for [`WordExpr::Reduce`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// All bits.
    And,
    /// Any bit.
    Or,
    /// Parity.
    Xor,
}

impl WordExpr {
    /// Reference to an input by name.
    pub fn input(name: impl Into<String>) -> Self {
        WordExpr::Input(name.into())
    }

    /// Reference to a defined signal by name.
    pub fn signal(name: impl Into<String>) -> Self {
        WordExpr::Signal(name.into())
    }

    /// A constant of the given width.
    pub fn constant(value: u64, width: u32) -> Self {
        WordExpr::Const { value, width }
    }

    /// Bitwise NOT.
    #[allow(clippy::should_implement_trait)] // static constructor, not an op
    pub fn not(a: WordExpr) -> Self {
        WordExpr::Not(Box::new(a))
    }

    /// Bitwise AND.
    pub fn and(a: WordExpr, b: WordExpr) -> Self {
        WordExpr::And(Box::new(a), Box::new(b))
    }

    /// Bitwise OR.
    pub fn or(a: WordExpr, b: WordExpr) -> Self {
        WordExpr::Or(Box::new(a), Box::new(b))
    }

    /// Bitwise XOR.
    pub fn xor(a: WordExpr, b: WordExpr) -> Self {
        WordExpr::Xor(Box::new(a), Box::new(b))
    }

    /// Unsigned addition.
    #[allow(clippy::should_implement_trait)] // static constructor, not an op
    pub fn add(a: WordExpr, b: WordExpr) -> Self {
        WordExpr::Add(Box::new(a), Box::new(b))
    }

    /// Equality test (1-bit result).
    pub fn eq(a: WordExpr, b: WordExpr) -> Self {
        WordExpr::Eq(Box::new(a), Box::new(b))
    }

    /// Word multiplexer.
    pub fn mux(sel: WordExpr, d0: WordExpr, d1: WordExpr) -> Self {
        WordExpr::Mux {
            sel: Box::new(sel),
            d0: Box::new(d0),
            d1: Box::new(d1),
        }
    }

    /// The paper's `GATE(word, bit)`: word AND-ed with a single-bit signal.
    pub fn gate(word: WordExpr, bit: WordExpr) -> Self {
        WordExpr::Gate(Box::new(word), Box::new(bit))
    }

    /// Bit slice (inclusive bounds).
    pub fn slice(word: WordExpr, lo: u32, hi: u32) -> Self {
        WordExpr::Slice {
            word: Box::new(word),
            lo,
            hi,
        }
    }

    /// Concatenation (`hi` in the upper bits).
    pub fn concat(hi: WordExpr, lo: WordExpr) -> Self {
        WordExpr::Concat(Box::new(hi), Box::new(lo))
    }

    /// Bit reduction.
    pub fn reduce(op: ReduceOp, a: WordExpr) -> Self {
        WordExpr::Reduce(op, Box::new(a))
    }
}

/// A named output of an [`RtlModule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RtlOutput {
    /// Port name; bit `i` lowers to the circuit output `name[i]`.
    pub name: String,
    /// The signal (by name) this port exposes.
    pub signal: String,
}

/// A word-level module: inputs, signal definitions, and outputs.
///
/// Signals must be defined before use (no combinational loops by
/// construction). See the [crate-level example](crate).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RtlModule {
    name: String,
    inputs: Vec<(String, u32)>,
    signals: Vec<(String, WordExpr)>,
    outputs: Vec<RtlOutput>,
    index: HashMap<String, usize>,
}

impl RtlModule {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        RtlModule {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The module name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares an input word of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds 64 (constants are `u64`-backed).
    pub fn add_input(&mut self, name: impl Into<String>, width: u32) {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        self.inputs.push((name.into(), width));
    }

    /// Defines a named signal and returns a reference expression to it.
    pub fn add_signal(&mut self, name: impl Into<String>, expr: WordExpr) -> WordExpr {
        let name = name.into();
        self.index.insert(name.clone(), self.signals.len());
        self.signals.push((name.clone(), expr));
        WordExpr::Signal(name)
    }

    /// Exposes a signal (or input) as a named output port.
    ///
    /// `expr` must be a [`WordExpr::Signal`] or [`WordExpr::Input`]
    /// reference; richer expressions should be defined as a signal first.
    ///
    /// # Panics
    ///
    /// Panics when `expr` is not a plain reference.
    pub fn add_output(&mut self, name: impl Into<String>, expr: WordExpr) {
        let signal = match expr {
            WordExpr::Signal(s) | WordExpr::Input(s) => s,
            other => panic!("output must reference a signal or input, got {other:?}"),
        };
        self.outputs.push(RtlOutput {
            name: name.into(),
            signal,
        });
    }

    /// Declared inputs `(name, width)` in order.
    pub fn inputs(&self) -> &[(String, u32)] {
        &self.inputs
    }

    /// Signal definitions in order.
    pub fn signals(&self) -> &[(String, WordExpr)] {
        &self.signals
    }

    /// Output ports in order.
    pub fn outputs(&self) -> &[RtlOutput] {
        &self.outputs
    }

    /// The definition of signal `name`, if any.
    pub fn signal_expr(&self, name: &str) -> Option<&WordExpr> {
        self.index.get(name).map(|&i| &self.signals[i].1)
    }

    /// Replaces the definition of signal `name`; returns `false` when the
    /// signal does not exist. This is how `eco-workload` injects functional
    /// revisions.
    pub fn replace_signal(&mut self, name: &str, expr: WordExpr) -> bool {
        match self.index.get(name) {
            Some(&i) => {
                self.signals[i].1 = expr;
                true
            }
            None => false,
        }
    }

    /// The declared width of input `name`, if any.
    pub fn input_width(&self, name: &str) -> Option<u32> {
        self.inputs.iter().find(|(n, _)| n == name).map(|&(_, w)| w)
    }
}

impl fmt::Display for RtlModule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "module {} (", self.name)?;
        for (n, w) in &self.inputs {
            writeln!(f, "  input  [{w}] {n};")?;
        }
        for o in &self.outputs {
            writeln!(f, "  output {} = {};", o.name, o.signal)?;
        }
        writeln!(f, ") {} signals", self.signals.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut m = RtlModule::new("m");
        m.add_input("a", 8);
        m.add_input("b", 8);
        let s = m.add_signal(
            "s",
            WordExpr::and(WordExpr::input("a"), WordExpr::input("b")),
        );
        m.add_output("y", s);
        assert_eq!(m.inputs().len(), 2);
        assert_eq!(m.input_width("a"), Some(8));
        assert_eq!(m.input_width("zz"), None);
        assert!(m.signal_expr("s").is_some());
        assert_eq!(m.outputs()[0].signal, "s");
    }

    #[test]
    fn replace_signal_injects_revision() {
        let mut m = RtlModule::new("m");
        m.add_input("a", 4);
        m.add_signal("s", WordExpr::input("a"));
        assert!(m.replace_signal("s", WordExpr::not(WordExpr::input("a"))));
        assert!(!m.replace_signal("nope", WordExpr::input("a")));
        assert_eq!(
            m.signal_expr("s"),
            Some(&WordExpr::not(WordExpr::input("a")))
        );
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_rejected() {
        let mut m = RtlModule::new("m");
        m.add_input("a", 0);
    }

    #[test]
    #[should_panic(expected = "output must reference")]
    fn output_must_be_reference() {
        let mut m = RtlModule::new("m");
        m.add_input("a", 1);
        m.add_output("y", WordExpr::not(WordExpr::input("a")));
    }

    #[test]
    fn display_mentions_ports() {
        let mut m = RtlModule::new("m");
        m.add_input("a", 2);
        let s = m.add_signal("s", WordExpr::input("a"));
        m.add_output("y", s);
        let text = m.to_string();
        assert!(text.contains("module m"));
        assert!(text.contains("input"));
        assert!(text.contains("output"));
    }
}
