//! Logic optimization: the pipeline that turns a freshly synthesized netlist
//! into a "heavily optimized" implementation.
//!
//! The point of this module, for the ECO study, is not area optimality but
//! **structural dissimilarity**: after constant folding, structural hashing,
//! randomized restructuring, and SAT-sweeping, the implementation shares no
//! usable structural correspondence with the lightweight-synthesized
//! specification — the regime the paper's method is designed for (§1).

use std::collections::HashMap;

use eco_netlist::{sim, strash, topo, Circuit, GateKind, NetId, NetlistError, Pin};
use eco_sat::{tseitin, SolveResult, Solver};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Options controlling the [`optimize`] pipeline.
#[derive(Debug, Clone)]
pub struct OptOptions {
    /// Seed for the randomized restructuring decisions.
    pub seed: u64,
    /// Fraction of gates rewritten per restructuring round (0.0 disables).
    pub restructure_fraction: f64,
    /// Number of fold/strash/restructure rounds.
    pub rounds: u32,
    /// Whether to run SAT sweeping (equivalent-node merging) at the end.
    pub sat_sweep: bool,
    /// Conflict budget per SAT equivalence query during sweeping.
    pub sweep_budget: u64,
    /// Round-trip through a depth-balanced AIG, erasing all original gate
    /// boundaries (the strongest structural-dissimilarity treatment).
    pub aig_resynthesis: bool,
}

impl OptOptions {
    /// Aggressive pipeline: the "production synthesis" stand-in.
    pub fn heavy(seed: u64) -> Self {
        OptOptions {
            seed,
            restructure_fraction: 0.45,
            rounds: 3,
            sat_sweep: true,
            sweep_budget: 2_000,
            aig_resynthesis: false,
        }
    }

    /// Light cleanup only (fold + hash), no restructuring.
    pub fn light(seed: u64) -> Self {
        OptOptions {
            seed,
            restructure_fraction: 0.0,
            rounds: 1,
            sat_sweep: false,
            sweep_budget: 0,
            aig_resynthesis: false,
        }
    }

    /// Everything [`heavy`](OptOptions::heavy) does plus an AIG round-trip:
    /// the resulting netlist shares no gate boundaries with its source.
    pub fn aggressive(seed: u64) -> Self {
        OptOptions {
            aig_resynthesis: true,
            ..Self::heavy(seed)
        }
    }
}

/// Summary of an [`optimize`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptReport {
    /// Live gates before optimization.
    pub gates_before: usize,
    /// Live gates after optimization.
    pub gates_after: usize,
    /// Gates merged by SAT sweeping.
    pub swept_equivalences: usize,
}

/// Runs the optimization pipeline in place.
///
/// # Errors
///
/// Propagates [`NetlistError`] from the underlying passes (cyclic circuits
/// cannot occur unless the input was malformed).
pub fn optimize(circuit: &mut Circuit, options: &OptOptions) -> Result<OptReport, NetlistError> {
    let gates_before = eco_netlist::CircuitStats::of(circuit).gates;
    let mut rng = SmallRng::seed_from_u64(options.seed);
    for _ in 0..options.rounds {
        constant_fold(circuit)?;
        strash::strash(circuit)?;
        if options.restructure_fraction > 0.0 {
            restructure(circuit, &mut rng, options.restructure_fraction)?;
            constant_fold(circuit)?;
            strash::strash(circuit)?;
        }
    }
    if options.aig_resynthesis {
        aig_resynthesize(circuit)?;
        constant_fold(circuit)?;
        strash::strash(circuit)?;
    }
    let mut swept = 0;
    if options.sat_sweep {
        swept = sat_sweep(circuit, options.sweep_budget, options.seed ^ 0x5eed)?;
        constant_fold(circuit)?;
        strash::strash(circuit)?;
    }
    circuit.sweep();
    Ok(OptReport {
        gates_before,
        gates_after: eco_netlist::CircuitStats::of(circuit).gates,
        swept_equivalences: swept,
    })
}

/// Round-trips `circuit` through a depth-balanced AIG in place.
///
/// All typed gates are decomposed into two-input ANDs with complemented
/// edges, strashed, depth-balanced, and exported back as AND/NOT logic.
/// Ports are preserved by label.
///
/// # Errors
///
/// Propagates [`NetlistError::Cyclic`] for malformed inputs.
pub fn aig_resynthesize(circuit: &mut Circuit) -> Result<(), NetlistError> {
    let aig = crate::aig::Aig::from_circuit(circuit)?;
    *circuit = aig.balance().to_circuit(circuit.name().to_string())?;
    Ok(())
}

/// Constant folding and local simplification.
///
/// Rules: constants propagate through every gate kind, unit operands of
/// AND/OR/XOR are dropped, duplicate operands are merged, `Not(Not(x))`
/// collapses, `Mux` with constant select or equal branches simplifies, and
/// degenerate gates become buffers/constants. Returns the number of nodes
/// swept away.
///
/// # Errors
///
/// Propagates [`NetlistError::Cyclic`] for malformed inputs.
pub fn constant_fold(circuit: &mut Circuit) -> Result<usize, NetlistError> {
    let order = topo::topo_order(circuit)?;
    let mut rep: HashMap<NetId, NetId> = HashMap::new();

    let resolve = |rep: &HashMap<NetId, NetId>, mut w: NetId| -> NetId {
        while let Some(&r) = rep.get(&w) {
            if r == w {
                break;
            }
            w = r;
        }
        w
    };

    for id in order {
        let kind = circuit.node(id).kind();
        if kind == GateKind::Input || kind.is_const() {
            continue;
        }
        let net: NetId = id.into();
        let fanins: Vec<NetId> = circuit
            .node(id)
            .fanins()
            .iter()
            .map(|&f| resolve(&rep, f))
            .collect();
        let value_of = |w: NetId| -> Option<bool> {
            match circuit.node(w.source()).kind() {
                GateKind::Const0 => Some(false),
                GateKind::Const1 => Some(true),
                _ => None,
            }
        };
        let replacement: Option<NetId> = match kind {
            GateKind::Buf => Some(fanins[0]),
            GateKind::Not => match value_of(fanins[0]) {
                Some(v) => Some(circuit.constant(!v)),
                None => {
                    // Not(Not(x)) = x
                    let inner = circuit.node(fanins[0].source());
                    if inner.kind() == GateKind::Not {
                        Some(resolve(&rep, inner.fanins()[0]))
                    } else {
                        None
                    }
                }
            },
            GateKind::And | GateKind::Nand | GateKind::Or | GateKind::Nor => {
                let (absorbing, neutral) = match kind {
                    GateKind::And | GateKind::Nand => (false, true),
                    _ => (true, false),
                };
                let inverted = matches!(kind, GateKind::Nand | GateKind::Nor);
                let mut kept: Vec<NetId> = Vec::with_capacity(fanins.len());
                let mut result_const: Option<bool> = None;
                for &f in &fanins {
                    match value_of(f) {
                        Some(v) if v == absorbing => {
                            result_const = Some(absorbing);
                            break;
                        }
                        Some(v) if v == neutral => {}
                        _ => {
                            if !kept.contains(&f) {
                                kept.push(f);
                            }
                        }
                    }
                }
                match result_const {
                    Some(v) => Some(circuit.constant(v ^ inverted)),
                    None if kept.is_empty() => Some(circuit.constant(neutral ^ inverted)),
                    None if kept.len() == 1 => {
                        if inverted {
                            Some(circuit.add_gate(GateKind::Not, &[kept[0]])?)
                        } else {
                            Some(kept[0])
                        }
                    }
                    None if kept.len() < fanins.len() => Some(circuit.add_gate(kind, &kept)?),
                    None => None,
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut invert = kind == GateKind::Xnor;
                let mut kept: Vec<NetId> = Vec::with_capacity(fanins.len());
                for &f in &fanins {
                    match value_of(f) {
                        Some(true) => invert = !invert,
                        Some(false) => {}
                        None => {
                            // Equal pairs cancel.
                            if let Some(pos) = kept.iter().position(|&k| k == f) {
                                kept.remove(pos);
                            } else {
                                kept.push(f);
                            }
                        }
                    }
                }
                match kept.len() {
                    0 => Some(circuit.constant(invert)),
                    1 => {
                        if invert {
                            Some(circuit.add_gate(GateKind::Not, &[kept[0]])?)
                        } else {
                            Some(kept[0])
                        }
                    }
                    n if n < fanins.len() || invert != (kind == GateKind::Xnor) => {
                        let k = if invert {
                            GateKind::Xnor
                        } else {
                            GateKind::Xor
                        };
                        Some(circuit.add_gate(k, &kept)?)
                    }
                    _ => None,
                }
            }
            GateKind::Mux => {
                let (s, d0, d1) = (fanins[0], fanins[1], fanins[2]);
                match value_of(s) {
                    Some(true) => Some(d1),
                    Some(false) => Some(d0),
                    None if d0 == d1 => Some(d0),
                    None => match (value_of(d0), value_of(d1)) {
                        (Some(false), Some(true)) => Some(s),
                        (Some(true), Some(false)) => Some(circuit.add_gate(GateKind::Not, &[s])?),
                        _ => None,
                    },
                }
            }
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => None,
        };
        if let Some(r) = replacement {
            if r != net {
                rep.insert(net, r);
            }
        } else {
            // Even without a replacement, resolved fanins must be applied.
            let current: Vec<NetId> = circuit.node(id).fanins().to_vec();
            for (pos, (&old, &new)) in current.iter().zip(&fanins).enumerate() {
                if old != new {
                    circuit
                        .rewire(Pin::gate(id, pos as u8), new)
                        .expect("fold substitution preserves acyclicity");
                }
            }
        }
    }
    if rep.is_empty() {
        return Ok(circuit.sweep());
    }
    // Redirect every remaining reference through the replacement map.
    let live: Vec<_> = circuit.iter_live().collect();
    for id in live {
        let fanins: Vec<NetId> = circuit.node(id).fanins().to_vec();
        for (pos, &f) in fanins.iter().enumerate() {
            let r = resolve(&rep, f);
            if r != f {
                circuit
                    .rewire(Pin::gate(id, pos as u8), r)
                    .expect("fold substitution preserves acyclicity");
            }
        }
    }
    for i in 0..circuit.num_outputs() as u32 {
        let w = circuit.outputs()[i as usize].net();
        let r = resolve(&rep, w);
        if r != w {
            circuit.set_output_net(i, r)?;
        }
    }
    Ok(circuit.sweep())
}

/// Randomized semantics-preserving restructuring.
///
/// Each live gate is rewritten with probability `fraction` into an
/// equivalent form built from fresh nodes (De Morgan for AND/OR/NAND/NOR,
/// sum-of-products decomposition for XOR/XNOR/MUX, random re-bracketing for
/// n-ary gates); all sinks are redirected to the new root. Returns the
/// number of gates rewritten.
///
/// # Errors
///
/// Propagates [`NetlistError`] from gate construction.
pub fn restructure(
    circuit: &mut Circuit,
    rng: &mut SmallRng,
    fraction: f64,
) -> Result<usize, NetlistError> {
    let targets: Vec<_> = circuit
        .iter_live()
        .filter(|&id| {
            let k = circuit.node(id).kind();
            k != GateKind::Input && !k.is_const() && k != GateKind::Buf && k != GateKind::Not
        })
        .filter(|_| rng.gen_bool(fraction))
        .collect();
    let mut rewritten = 0;
    for id in targets {
        let kind = circuit.node(id).kind();
        let fanins: Vec<NetId> = circuit.node(id).fanins().to_vec();
        let new_root: NetId = match kind {
            GateKind::And | GateKind::Nand => {
                // De Morgan: and(f..) = not(or(not f..))
                let negs: Vec<NetId> = fanins
                    .iter()
                    .map(|&f| circuit.add_gate(GateKind::Not, &[f]))
                    .collect::<Result<_, _>>()?;
                let or = build_tree(circuit, GateKind::Or, &negs, rng)?;
                if kind == GateKind::And {
                    circuit.add_gate(GateKind::Not, &[or])?
                } else {
                    or
                }
            }
            GateKind::Or | GateKind::Nor => {
                let negs: Vec<NetId> = fanins
                    .iter()
                    .map(|&f| circuit.add_gate(GateKind::Not, &[f]))
                    .collect::<Result<_, _>>()?;
                let and = build_tree(circuit, GateKind::And, &negs, rng)?;
                if kind == GateKind::Or {
                    circuit.add_gate(GateKind::Not, &[and])?
                } else {
                    and
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                // Fold pairwise with SOP decomposition of binary xor.
                let mut acc = fanins[0];
                for &f in &fanins[1..] {
                    let na = circuit.add_gate(GateKind::Not, &[acc])?;
                    let nf = circuit.add_gate(GateKind::Not, &[f])?;
                    let t1 = circuit.add_gate(GateKind::And, &[acc, nf])?;
                    let t2 = circuit.add_gate(GateKind::And, &[na, f])?;
                    acc = circuit.add_gate(GateKind::Or, &[t1, t2])?;
                }
                if kind == GateKind::Xnor {
                    circuit.add_gate(GateKind::Not, &[acc])?
                } else {
                    acc
                }
            }
            GateKind::Mux => {
                let (s, d0, d1) = (fanins[0], fanins[1], fanins[2]);
                let ns = circuit.add_gate(GateKind::Not, &[s])?;
                let t0 = circuit.add_gate(GateKind::And, &[ns, d0])?;
                let t1 = circuit.add_gate(GateKind::And, &[s, d1])?;
                circuit.add_gate(GateKind::Or, &[t0, t1])?
            }
            _ => continue,
        };
        redirect_sinks(circuit, id.into(), new_root)?;
        rewritten += 1;
    }
    circuit.sweep();
    Ok(rewritten)
}

/// Builds a randomly bracketed binary tree of `kind` over `leaves`.
fn build_tree(
    circuit: &mut Circuit,
    kind: GateKind,
    leaves: &[NetId],
    rng: &mut SmallRng,
) -> Result<NetId, NetlistError> {
    let mut work: Vec<NetId> = leaves.to_vec();
    while work.len() > 1 {
        let i = rng.gen_range(0..work.len());
        let a = work.swap_remove(i);
        let j = rng.gen_range(0..work.len());
        let b = work.swap_remove(j);
        work.push(circuit.add_gate(kind, &[a, b])?);
    }
    Ok(work[0])
}

/// Redirects every sink of `from` to `to` (gate pins and output ports).
fn redirect_sinks(circuit: &mut Circuit, from: NetId, to: NetId) -> Result<(), NetlistError> {
    let fanouts = circuit.fanouts();
    for pin in &fanouts[from.index()] {
        // Skip pins inside the freshly built replacement logic (they consume
        // `from` legitimately, e.g. xor decomposition reuses the operand).
        circuit.rewire(*pin, to)?;
    }
    Ok(())
}

/// SAT sweeping: merges functionally equivalent gates.
///
/// Simulation signatures (three 64-pattern blocks, seeded by `seed`) group
/// candidate nets; candidates are confirmed by two incremental SAT calls
/// under assumptions with a conflict budget of `budget` each, then merged by
/// redirecting sinks to the earliest (topologically) representative. Returns
/// the number of merges performed.
///
/// # Errors
///
/// Propagates [`NetlistError`] from analysis; SAT `Unknown` outcomes simply
/// skip the merge.
pub fn sat_sweep(circuit: &mut Circuit, budget: u64, seed: u64) -> Result<usize, NetlistError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let order = topo::topo_order(circuit)?;
    let topo_pos: HashMap<NetId, usize> = order
        .iter()
        .enumerate()
        .map(|(i, &n)| (NetId::from(n), i))
        .collect();

    // Signatures from three random pattern blocks.
    let mut signatures: HashMap<NetId, [u64; 3]> = HashMap::new();
    for block in 0..3 {
        let patterns: Vec<u64> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
        let words = sim::simulate64(circuit, &patterns)?;
        for &id in &order {
            let net = NetId::from(id);
            signatures.entry(net).or_insert([0; 3])[block] = words[net.index()];
        }
    }

    // Group candidate gates by signature.
    let mut groups: HashMap<[u64; 3], Vec<NetId>> = HashMap::new();
    for &id in &order {
        let kind = circuit.node(id).kind();
        if kind == GateKind::Input || kind.is_const() {
            continue;
        }
        groups
            .entry(signatures[&NetId::from(id)])
            .or_default()
            .push(id.into());
    }

    let mut solver = Solver::new();
    let map = tseitin::encode_circuit(&mut solver, circuit, None)?;
    solver.set_conflict_budget(Some(budget));

    let mut merges = 0;
    for (_, mut members) in groups {
        if members.len() < 2 {
            continue;
        }
        members.sort_by_key(|w| topo_pos[w]);
        let rep = members[0];
        let rep_lit = map.lit(rep).expect("net encoded");
        for &m in &members[1..] {
            let m_lit = map.lit(m).expect("net encoded");
            let r1 = solver.solve(&[rep_lit, !m_lit]);
            if r1 != SolveResult::Unsat {
                continue;
            }
            let r2 = solver.solve(&[!rep_lit, m_lit]);
            if r2 != SolveResult::Unsat {
                continue;
            }
            // Equivalent: move every sink of m to rep, skipping any pin whose
            // rewiring would create a cycle (possible when rep is a fanout of
            // m's consumer chain).
            let fanouts = circuit.fanouts();
            let mut moved = true;
            for pin in &fanouts[m.index()] {
                if circuit.rewire(*pin, rep).is_err() {
                    moved = false;
                }
            }
            if moved {
                merges += 1;
            }
        }
    }
    circuit.sweep();
    Ok(merges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::CircuitStats;

    fn exhaustive_equal(a: &Circuit, b: &Circuit) -> bool {
        assert!(a.num_inputs() <= 12, "test circuits stay small");
        assert_eq!(a.num_inputs(), b.num_inputs());
        for j in 0..(1u32 << a.num_inputs()) {
            let assign: Vec<bool> = (0..a.num_inputs()).map(|i| (j >> i) & 1 == 1).collect();
            if a.eval(&assign).unwrap() != b.eval(&assign).unwrap() {
                return false;
            }
        }
        true
    }

    fn demo_circuit() -> Circuit {
        let mut c = Circuit::new("demo");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let k1 = c.constant(true);
        let g1 = c.add_gate(GateKind::And, &[a, k1]).unwrap(); // = a
        let g2 = c.add_gate(GateKind::Xor, &[g1, b]).unwrap();
        let g3 = c.add_gate(GateKind::Mux, &[d, g2, g2]).unwrap(); // = g2
        let g4 = c.add_gate(GateKind::Or, &[g3, d]).unwrap();
        let g5 = c.add_gate(GateKind::Not, &[g4]).unwrap();
        let g6 = c.add_gate(GateKind::Not, &[g5]).unwrap(); // = g4
        c.add_output("y", g6);
        c
    }

    #[test]
    fn fold_simplifies_and_preserves() {
        let reference = demo_circuit();
        let mut c = demo_circuit();
        constant_fold(&mut c).unwrap();
        assert!(exhaustive_equal(&reference, &c));
        let stats = CircuitStats::of(&c);
        assert!(
            stats.gates <= 2,
            "expected aggressive folding, got {} gates",
            stats.gates
        );
    }

    #[test]
    fn fold_handles_constant_only_gates() {
        let mut c = Circuit::new("k");
        let k0 = c.constant(false);
        let k1 = c.constant(true);
        let g = c.add_gate(GateKind::And, &[k0, k1]).unwrap();
        let h = c.add_gate(GateKind::Xor, &[g, k1]).unwrap();
        c.add_output("y", h);
        constant_fold(&mut c).unwrap();
        assert_eq!(c.eval(&[]).unwrap(), vec![true]);
        assert_eq!(CircuitStats::of(&c).gates, 0);
    }

    #[test]
    fn fold_cancels_xor_pairs() {
        let mut c = Circuit::new("x");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::Xor, &[a, b, a]).unwrap(); // = b
        c.add_output("y", g);
        constant_fold(&mut c).unwrap();
        assert_eq!(CircuitStats::of(&c).gates, 0);
        assert_eq!(c.eval(&[true, true]).unwrap(), vec![true]);
        assert_eq!(c.eval(&[true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn restructure_preserves_function() {
        let reference = demo_circuit();
        let mut c = demo_circuit();
        let mut rng = SmallRng::seed_from_u64(42);
        let n = restructure(&mut c, &mut rng, 1.0).unwrap();
        assert!(n > 0);
        assert!(exhaustive_equal(&reference, &c));
        c.check_well_formed().unwrap();
    }

    #[test]
    fn restructure_changes_structure() {
        let mut c = demo_circuit();
        let before = CircuitStats::of(&c);
        let mut rng = SmallRng::seed_from_u64(1);
        restructure(&mut c, &mut rng, 1.0).unwrap();
        let after = CircuitStats::of(&c);
        assert_ne!(before.gates, after.gates);
    }

    #[test]
    fn sat_sweep_merges_duplicated_cones() {
        let mut c = Circuit::new("dup");
        let a = c.add_input("a");
        let b = c.add_input("b");
        // Two different-looking implementations of a&b.
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let na = c.add_gate(GateKind::Not, &[a]).unwrap();
        let nb = c.add_gate(GateKind::Not, &[b]).unwrap();
        let o = c.add_gate(GateKind::Or, &[na, nb]).unwrap();
        let g2 = c.add_gate(GateKind::Not, &[o]).unwrap();
        let y = c.add_gate(GateKind::Xor, &[g1, g2]).unwrap(); // constant 0
        c.add_output("y", y);
        c.add_output("z", g2);
        let reference = c.clone();
        let merges = sat_sweep(&mut c, 10_000, 3).unwrap();
        assert!(merges >= 1, "equivalent cones should merge");
        assert!(exhaustive_equal(&reference, &c));
        assert!(CircuitStats::of(&c).gates < CircuitStats::of(&reference).gates);
    }

    #[test]
    fn optimize_pipeline_preserves_function() {
        let reference = demo_circuit();
        let mut c = demo_circuit();
        let report = optimize(&mut c, &OptOptions::heavy(99)).unwrap();
        assert!(exhaustive_equal(&reference, &c));
        assert!(report.gates_before >= 1);
        c.check_well_formed().unwrap();
    }

    #[test]
    fn light_options_are_deterministic() {
        let mut c1 = demo_circuit();
        let mut c2 = demo_circuit();
        optimize(&mut c1, &OptOptions::light(5)).unwrap();
        optimize(&mut c2, &OptOptions::light(5)).unwrap();
        assert_eq!(CircuitStats::of(&c1), CircuitStats::of(&c2));
    }
}
