//! Property-based tests: random RTL modules through synthesis and the full
//! optimization pipeline, checked against the word-level interpreter.

use eco_synth::lower::{bit_label, interpret, synthesize};
use eco_synth::opt::{optimize, OptOptions};
use eco_synth::rtl::{ReduceOp, RtlModule, WordExpr as E};
use proptest::prelude::*;

const WIDTH: u32 = 4;

/// Recipe for one random signal definition over prior names.
#[derive(Debug, Clone)]
struct SignalRecipe {
    op: u8,
    a: u32,
    b: u32,
    c: u32,
    konst: u64,
}

#[derive(Debug, Clone)]
struct ModuleRecipe {
    num_inputs: usize,
    signals: Vec<SignalRecipe>,
}

fn module_strategy() -> impl Strategy<Value = ModuleRecipe> {
    (2usize..4, 1usize..10).prop_flat_map(|(ni, ns)| {
        let sig = (
            any::<u8>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u64>(),
        )
            .prop_map(|(op, a, b, c, konst)| SignalRecipe { op, a, b, c, konst });
        (Just(ni), proptest::collection::vec(sig, ns)).prop_map(|(num_inputs, signals)| {
            ModuleRecipe {
                num_inputs,
                signals,
            }
        })
    })
}

/// Builds a module where every signal has width `WIDTH` except derived
/// single-bit signals, which are re-widened through `Gate`.
fn build(recipe: &ModuleRecipe) -> RtlModule {
    let mut m = RtlModule::new("prop");
    let mut names: Vec<String> = Vec::new();
    for i in 0..recipe.num_inputs {
        let n = format!("x{i}");
        m.add_input(&n, WIDTH);
        names.push(n);
    }
    for (i, s) in recipe.signals.iter().enumerate() {
        let pick = |sel: u32| E::signal(names[sel as usize % names.len()].clone());
        let expr = match s.op % 8 {
            0 => E::and(pick(s.a), pick(s.b)),
            1 => E::or(pick(s.a), pick(s.b)),
            2 => E::xor(pick(s.a), pick(s.b)),
            3 => E::not(pick(s.a)),
            4 => E::add(pick(s.a), pick(s.b)),
            5 => E::mux(E::reduce(ReduceOp::Or, pick(s.c)), pick(s.a), pick(s.b)),
            6 => E::gate(pick(s.a), E::reduce(ReduceOp::Xor, pick(s.b))),
            _ => E::xor(pick(s.a), E::constant(s.konst & 0xF, WIDTH)),
        };
        // Signal references use E::signal uniformly; synthesize resolves
        // inputs and signals from one environment, so this is fine.
        let name = format!("s{i}");
        m.add_signal(&name, expr);
        names.push(name);
    }
    // Expose the last two signals (or fewer) as outputs.
    let n = names.len();
    let first_out = n.saturating_sub(2).max(recipe.num_inputs);
    for (k, name) in names[first_out..].iter().enumerate() {
        m.add_output(format!("y{k}"), E::signal(name.clone()));
    }
    m
}

fn eval_circuit_words(
    c: &eco_netlist::Circuit,
    m: &RtlModule,
    inputs: &[u64],
) -> Vec<(String, u64)> {
    let mut assign = vec![false; c.num_inputs()];
    for ((name, w), &value) in m.inputs().iter().zip(inputs) {
        for i in 0..*w {
            let net = c.input_by_name(&bit_label(name, i)).expect("input bit");
            let pos = c.input_position(net.source()).unwrap();
            assign[pos] = (value >> i) & 1 == 1;
        }
    }
    let values = c.eval(&assign).unwrap();
    let mut out = Vec::new();
    for port in m.outputs() {
        let mut word = 0u64;
        let mut i = 0;
        while let Some(idx) = c.output_by_name(&bit_label(&port.name, i)) {
            if values[idx as usize] {
                word |= 1 << i;
            }
            i += 1;
        }
        out.push((port.name.clone(), word));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn synthesis_matches_interpreter(recipe in module_strategy(), samples in proptest::collection::vec(proptest::collection::vec(0u64..16, 4), 6)) {
        let m = build(&recipe);
        let c = synthesize(&m).unwrap();
        for s in &samples {
            let inputs = &s[..recipe.num_inputs];
            let oracle = interpret(&m, inputs).unwrap();
            let got = eval_circuit_words(&c, &m, inputs);
            prop_assert_eq!(got, oracle);
        }
    }

    #[test]
    fn heavy_optimization_preserves_function(recipe in module_strategy(), seed in any::<u64>()) {
        let m = build(&recipe);
        let mut c = synthesize(&m).unwrap();
        optimize(&mut c, &OptOptions::heavy(seed)).unwrap();
        prop_assert!(c.check_well_formed().is_ok());
        // Compare on a deterministic sample of input words.
        for j in 0..12u64 {
            let inputs: Vec<u64> = (0..recipe.num_inputs as u64)
                .map(|i| (j * 7 + i * 13) % 16)
                .collect();
            let oracle = interpret(&m, &inputs).unwrap();
            let got = eval_circuit_words(&c, &m, &inputs);
            prop_assert_eq!(got, oracle, "seed {} inputs {:?}", seed, inputs);
        }
    }

    #[test]
    fn aggressive_optimization_preserves_function(recipe in module_strategy(), seed in any::<u64>()) {
        let m = build(&recipe);
        let mut c = synthesize(&m).unwrap();
        optimize(&mut c, &OptOptions::aggressive(seed)).unwrap();
        prop_assert!(c.check_well_formed().is_ok());
        for j in 0..10u64 {
            let inputs: Vec<u64> = (0..recipe.num_inputs as u64)
                .map(|i| (j * 11 + i * 5) % 16)
                .collect();
            let oracle = interpret(&m, &inputs).unwrap();
            let got = eval_circuit_words(&c, &m, &inputs);
            prop_assert_eq!(got, oracle, "seed {} inputs {:?}", seed, inputs);
        }
    }

    #[test]
    fn optimization_is_deterministic(recipe in module_strategy(), seed in any::<u64>()) {
        let m = build(&recipe);
        let mut c1 = synthesize(&m).unwrap();
        let mut c2 = synthesize(&m).unwrap();
        optimize(&mut c1, &OptOptions::heavy(seed)).unwrap();
        optimize(&mut c2, &OptOptions::heavy(seed)).unwrap();
        prop_assert_eq!(
            eco_netlist::CircuitStats::of(&c1),
            eco_netlist::CircuitStats::of(&c2)
        );
    }
}
