//! Dynamic variable reordering by sifting.
//!
//! Each variable in turn is moved through the order with adjacent-level
//! swaps and parked at the position that minimizes the live node count.
//! Swaps rewrite affected nodes *in place*: a node keeps its arena index
//! (and therefore every outstanding handle) while its `(var, lo, hi)`
//! contents change, so handles denote the same boolean function before
//! and after a reorder — the diagram shape changes, the semantics don't.
//!
//! Like garbage collection, reordering takes an explicit root set: nodes
//! unreachable from `roots` and the protected set are reclaimed eagerly
//! during swaps (exact refcounts make the sift size metric honest).
//! Handles outside the root set may dangle afterwards, exactly as with
//! [`BddManager::gc`].
//!
//! The adjacent swap preserves the canonical-form invariants. For an
//! affected node `n = (x, f0, f1)` with `y` the level below, the rewrite
//! is `n ← (y, B, A)` where `A = mk(x, f01, f11)` and `B = mk(x, f00,
//! f10)`. `f11` is always a regular edge (the `hi` edge of a stored node
//! is regular, and cofactoring a regular edge keeps it regular), so `A`
//! is regular whether or not `mk` collapses it — the stored `hi` edge
//! stays regular. `A == B` would mean `n` does not depend on `y`, which
//! contradicts `n` having a `y`-child under canonicity, so `n` never
//! collapses and its identity is safe to preserve.

use crate::arena::Arena;
use crate::manager::{Bdd, BddEvent, BddManager};
use crate::BddError;

/// Sifting is applied to at most this many variables per pass, largest
/// level first; the tail contributes little and costs the same.
const MAX_SIFT_VARS: usize = 32;

/// Cofactors of `edge` with respect to variable `v`, complement bit
/// pushed into the children.
#[inline]
fn cofactor(arena: &Arena, edge: u32, v: u32) -> (u32, u32) {
    let idx = edge >> 1;
    if arena.var(idx) == v {
        let n = arena.node(idx);
        let c = edge & 1;
        (n.lo ^ c, n.hi ^ c)
    } else {
        (edge, edge)
    }
}

impl BddManager {
    /// Runs one sifting pass now and returns the number of adjacent-level
    /// swaps performed. Semantics of every node reachable from `roots`
    /// (or [`protect`](BddManager::protect)ed) are preserved — handles
    /// keep denoting the same functions, at the same arena indices.
    /// Unreachable nodes are reclaimed; operation caches are invalidated.
    ///
    /// # Errors
    ///
    /// Whatever the installed [event hook](BddManager::set_event_hook)
    /// returns; the diagram is untouched in that case.
    pub fn reorder(&mut self, roots: &[Bdd]) -> Result<usize, BddError> {
        self.fire_event(BddEvent::Reorder)?;
        // Drop garbage first so refcounts and the sift metric see only
        // reachable nodes.
        self.sweep(roots);
        let swaps = self.sift_all(roots);
        self.bump_reorder_counters(swaps);
        Ok(swaps as usize)
    }

    /// Reorders when automatic reordering is enabled
    /// ([`set_reorder_threshold`](BddManager::set_reorder_threshold)) and
    /// the live node count exceeds the adaptive threshold; returns
    /// whether it ran. After a pass the threshold adapts to
    /// `max(threshold, 4 × live)` so a diagram that stays large does not
    /// re-sift on every check.
    ///
    /// # Errors
    ///
    /// Whatever the installed [event hook](BddManager::set_event_hook)
    /// returns.
    pub fn maybe_reorder(&mut self, roots: &[Bdd]) -> Result<bool, BddError> {
        match self.reorder_threshold {
            Some(t) if self.num_nodes() > t => {
                self.reorder(roots)?;
                let adapted = t
                    .max(self.num_nodes() * 4)
                    .max(self.reorder_initial_threshold);
                self.reorder_threshold = Some(adapted);
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn sift_all(&mut self, roots: &[Bdd]) -> u64 {
        let nlevels = self.num_vars() as usize;
        if nlevels < 2 {
            return 0;
        }
        // Exact reference counts over the post-sweep live set. External
        // references (roots + protected) pin nodes the DAG alone doesn't.
        let mut refs: Vec<u32> = vec![0; self.arena().capacity()];
        refs[0] = 1;
        for idx in self.arena().live_indices() {
            let n = self.arena().node(idx);
            refs[(n.lo >> 1) as usize] += 1;
            refs[(n.hi >> 1) as usize] += 1;
        }
        for f in roots {
            refs[(f.0 >> 1) as usize] += 1;
        }
        for idx in self.protected_roots() {
            refs[idx as usize] += 1;
        }
        // Per-variable node lists; entries can go stale (node freed or
        // relabelled) and are filtered by a var check on use.
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nlevels];
        for idx in self.arena().live_indices() {
            lists[self.arena().var(idx) as usize].push(idx);
        }
        // Largest level first; ties broken by variable index so the pass
        // is deterministic.
        let mut order: Vec<u32> = (0..nlevels as u32).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(lists[v as usize].len()), v));
        order.truncate(MAX_SIFT_VARS);

        let start_total = self.num_nodes();
        let mut swaps = 0u64;
        for v in order {
            swaps += self.sift_var(v, &mut lists, &mut refs);
            if self.num_nodes() > start_total.saturating_mul(2) {
                // Runaway growth across the whole pass: stop sifting.
                break;
            }
        }
        swaps
    }

    /// Moves variable `v` to its locally best level: sweep toward the
    /// nearer end of the order first, then the other end, then settle at
    /// the smallest diagram seen.
    fn sift_var(&mut self, v: u32, lists: &mut [Vec<u32>], refs: &mut Vec<u32>) -> u64 {
        let nlevels = lists.len();
        let start = self.var_level(v) as usize;
        let mut best_size = self.num_nodes();
        let mut best_level = start;
        let mut swaps = 0u64;
        if start * 2 < nlevels {
            swaps += self.sweep_dir(v, true, lists, refs, &mut best_size, &mut best_level);
            swaps += self.sweep_dir(v, false, lists, refs, &mut best_size, &mut best_level);
        } else {
            swaps += self.sweep_dir(v, false, lists, refs, &mut best_size, &mut best_level);
            swaps += self.sweep_dir(v, true, lists, refs, &mut best_size, &mut best_level);
        }
        while (self.var_level(v) as usize) < best_level {
            let upper = self.var_level(v) as usize;
            self.swap_adjacent(upper, lists, refs);
            swaps += 1;
        }
        while (self.var_level(v) as usize) > best_level {
            let upper = self.var_level(v) as usize - 1;
            self.swap_adjacent(upper, lists, refs);
            swaps += 1;
        }
        swaps
    }

    /// Sweeps `v` to the top (`up`) or bottom of the order, recording the
    /// best size/level seen; aborts the direction early once the diagram
    /// grows 20% past the best.
    fn sweep_dir(
        &mut self,
        v: u32,
        up: bool,
        lists: &mut [Vec<u32>],
        refs: &mut Vec<u32>,
        best_size: &mut usize,
        best_level: &mut usize,
    ) -> u64 {
        let nlevels = lists.len();
        let mut swaps = 0u64;
        loop {
            let level = self.var_level(v) as usize;
            let upper = if up {
                if level == 0 {
                    break;
                }
                level - 1
            } else {
                if level + 1 >= nlevels {
                    break;
                }
                level
            };
            self.swap_adjacent(upper, lists, refs);
            swaps += 1;
            let size = self.num_nodes();
            if size < *best_size {
                *best_size = size;
                *best_level = self.var_level(v) as usize;
            } else if size * 10 > *best_size * 12 + 20 {
                break;
            }
        }
        swaps
    }

    /// Swaps the variables at `upper` and `upper + 1`, rewriting affected
    /// nodes in place and keeping `refs` exact (orphaned nodes are freed
    /// immediately).
    fn swap_adjacent(&mut self, upper: usize, lists: &mut [Vec<u32>], refs: &mut Vec<u32>) {
        let vu = self.var_at_level(upper);
        let vl = self.var_at_level(upper + 1);
        // Nodes labelled `vu` with a `vl` child are the only ones the swap
        // touches; everything else keeps its label and children.
        let mut affected: Vec<u32> = Vec::new();
        {
            let arena = self.arena();
            for &idx in &lists[vu as usize] {
                let n = arena.node(idx);
                if n.var != vu {
                    continue; // stale list entry: freed or relabelled
                }
                if arena.var(n.lo >> 1) == vl || arena.var(n.hi >> 1) == vl {
                    affected.push(idx);
                }
            }
        }
        // Slot reuse can put the same index in a list twice.
        affected.sort_unstable();
        affected.dedup();
        // Detach the keys first so `mk` can never resolve to a node whose
        // contents are about to change.
        {
            let (arena, unique, _, _) = self.split_for_swap();
            for &idx in affected.iter() {
                unique.remove(arena, idx);
            }
        }
        for &idx in affected.iter() {
            let n = self.arena().node(idx);
            let (f0, f1) = (n.lo, n.hi);
            let (f00, f01) = cofactor(self.arena(), f0, vl);
            let (f10, f11) = cofactor(self.arena(), f1, vl);
            let a = self.mk_tracked(vu, f01, f11, lists, refs);
            let b = self.mk_tracked(vu, f00, f10, lists, refs);
            debug_assert_eq!(a & 1, 0, "hi edge of a swapped node must stay regular");
            refs[(a >> 1) as usize] += 1;
            refs[(b >> 1) as usize] += 1;
            {
                let (arena, unique, _, _) = self.split_for_swap();
                arena.rewrite(idx, vl, b, a);
                unique.insert(arena, idx, vl, b, a);
            }
            self.drop_ref(f0, refs);
            self.drop_ref(f1, refs);
        }
        {
            let arena = self.arena();
            lists[vu as usize].retain(|&i| arena.var(i) == vu);
            lists[vl as usize].retain(|&i| arena.var(i) == vl);
        }
        lists[vl as usize].extend_from_slice(&affected);
        let (_, _, var2level, level2var) = self.split_for_swap();
        var2level[vu as usize] = (upper + 1) as u32;
        var2level[vl as usize] = upper as u32;
        level2var[upper] = vl;
        level2var[upper + 1] = vu;
    }

    /// `mk` that keeps `refs` and the per-variable lists in sync when a
    /// node is freshly allocated (a found node is already accounted for).
    fn mk_tracked(
        &mut self,
        var: u32,
        lo: u32,
        hi: u32,
        lists: &mut [Vec<u32>],
        refs: &mut Vec<u32>,
    ) -> u32 {
        let before = self.arena().allocs();
        let e = self.mk(var, lo, hi);
        if self.arena().allocs() != before {
            let idx = e >> 1;
            if refs.len() < self.arena().capacity() {
                refs.resize(self.arena().capacity(), 0);
            }
            refs[idx as usize] = 0;
            // Complement normalization inside `mk` flips edges, not node
            // indices, so counting `lo >> 1` / `hi >> 1` is exact either way.
            refs[(lo >> 1) as usize] += 1;
            refs[(hi >> 1) as usize] += 1;
            lists[var as usize].push(idx);
        }
        e
    }

    /// Releases one reference to `edge`'s node, freeing it (and cascading
    /// into its children) when the count reaches zero.
    fn drop_ref(&mut self, edge: u32, refs: &mut [u32]) {
        let mut stack = vec![edge >> 1];
        while let Some(idx) = stack.pop() {
            if idx == 0 {
                continue; // the terminal is permanent
            }
            debug_assert!(refs[idx as usize] > 0, "refcount underflow on node {idx}");
            refs[idx as usize] -= 1;
            if refs[idx as usize] == 0 {
                let n = self.arena().node(idx);
                stack.push(n.lo >> 1);
                stack.push(n.hi >> 1);
                let (arena, unique, _, _) = self.split_for_swap();
                unique.remove(arena, idx);
                arena.release(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f = (x0 ∧ x3) ∨ (x1 ∧ x4) ∨ (x2 ∧ x5): the classic interleaving
    /// benchmark — quadratic under the `a a a b b b` order, linear under
    /// `a b a b a b`.
    fn disjoint_ands(m: &mut BddManager) -> Bdd {
        let mut f = m.zero();
        for i in 0..3 {
            let a = m.var(i);
            let b = m.var(3 + i);
            let t = m.and(a, b).unwrap();
            f = m.or(f, t).unwrap();
        }
        f
    }

    fn all_assignments(n: u32) -> impl Iterator<Item = Vec<bool>> {
        (0..1u32 << n).map(move |bits| (0..n).map(|i| bits >> i & 1 == 1).collect())
    }

    #[test]
    fn sifting_shrinks_a_badly_ordered_function() {
        let mut m = BddManager::new();
        let f = disjoint_ands(&mut m);
        let before_size = m.dag_size(f);
        let truth: Vec<bool> = all_assignments(6).map(|a| m.eval(f, &a)).collect();
        let sat_before = m.sat_count(f, 6);

        let swaps = m.reorder(&[f]).unwrap();
        assert!(swaps > 0, "sifting must actually move variables");
        assert!(
            m.dag_size(f) < before_size,
            "interleaving must shrink the diagram: {} -> {}",
            before_size,
            m.dag_size(f)
        );
        assert_ne!(
            m.current_order(),
            (0..6).collect::<Vec<u32>>(),
            "the order must have changed"
        );
        let truth_after: Vec<bool> = all_assignments(6).map(|a| m.eval(f, &a)).collect();
        assert_eq!(truth, truth_after, "reorder must preserve semantics");
        assert_eq!(m.sat_count(f, 6), sat_before);
        let c = m.counters();
        assert_eq!(c.reorders, 1);
        assert_eq!(c.reorder_swaps, swaps as u64);
    }

    #[test]
    fn reorder_preserves_canonicity_and_handle_identity() {
        let mut m = BddManager::new();
        let f = disjoint_ands(&mut m);
        m.reorder(&[f]).unwrap();
        // Rebuilding the same function must find the same handle.
        let g = disjoint_ands(&mut m);
        assert_eq!(f, g, "canonical handle identity survives reordering");
        // Unique table and arena agree after the rewrite storm.
        assert_eq!(m.unique_table_len(), m.num_nodes() - 1);
        // nodes_per_level stays var-indexed and totals the live count.
        let total: usize = m.nodes_per_level().iter().sum();
        assert_eq!(total, m.num_nodes() - 1);
    }

    #[test]
    fn reorder_reclaims_unrooted_garbage() {
        let mut m = BddManager::new();
        let f = disjoint_ands(&mut m);
        let a = m.var(0);
        let b = m.var(1);
        let junk = m.xor(a, b).unwrap();
        assert!(!m.is_const(junk));
        let before = m.num_nodes();
        m.reorder(&[f]).unwrap();
        assert!(
            m.num_nodes() < before,
            "nodes outside the root set are reclaimed"
        );
    }

    #[test]
    fn maybe_reorder_honours_and_adapts_threshold() {
        let mut m = BddManager::new();
        let f = disjoint_ands(&mut m);
        assert!(!m.maybe_reorder(&[f]).unwrap(), "disabled by default");
        m.set_reorder_threshold(Some(2));
        assert!(m.maybe_reorder(&[f]).unwrap());
        assert!(
            !m.maybe_reorder(&[f]).unwrap(),
            "adapted threshold suppresses an immediate re-sift"
        );
        m.set_reorder_threshold(None);
        assert!(!m.maybe_reorder(&[f]).unwrap());
    }

    #[test]
    fn event_hook_aborts_reorder_without_mutation() {
        let mut m = BddManager::new();
        let f = disjoint_ands(&mut m);
        let size = m.dag_size(f);
        let order = m.current_order();
        m.set_event_hook(Some(Box::new(|e| {
            if e == BddEvent::Reorder {
                Err(BddError::Cancelled)
            } else {
                Ok(())
            }
        })));
        assert!(matches!(m.reorder(&[f]), Err(BddError::Cancelled)));
        assert_eq!(m.current_order(), order, "aborted reorder leaves order");
        assert_eq!(m.dag_size(f), size);
        assert_eq!(m.counters().reorders, 0);
        m.set_event_hook(None);
        assert!(m.reorder(&[f]).is_ok());
    }

    #[test]
    fn repeated_reorders_stay_semantically_stable() {
        let mut m = BddManager::new();
        // A parity chain: already order-invariant in size, so sifting
        // mostly churns — a good stress for swap bookkeeping.
        let mut f = m.zero();
        for i in 0..8 {
            let v = m.var(i);
            f = m.xor(f, v).unwrap();
        }
        let truth: Vec<bool> = all_assignments(8).map(|a| m.eval(f, &a)).collect();
        for _ in 0..3 {
            m.reorder(&[f]).unwrap();
            let now: Vec<bool> = all_assignments(8).map(|a| m.eval(f, &a)).collect();
            assert_eq!(truth, now);
            assert_eq!(m.unique_table_len(), m.num_nodes() - 1);
        }
        assert_eq!(m.sat_count(f, 8), (1u64 << 7) as f64);
    }
}
