//! Dense node arena: flat `Vec` storage with a free list.
//!
//! Nodes are addressed by `u32` index. Index 0 is the single terminal
//! (the constant-one function); there is no stored zero terminal — the
//! constant-false is the complement edge to node 0. Freed slots are
//! recycled through a LIFO free list so node indices of live nodes stay
//! stable across garbage collection (handles never move).

/// Variable tag of the terminal node.
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;
/// Variable tag of a freed slot awaiting reuse.
pub(crate) const FREE_VAR: u32 = u32::MAX - 1;

/// One BDD node. `lo`/`hi` are *edges*: `(node_index << 1) | complement`.
/// The `hi` edge of a stored node is always regular (complement bit 0);
/// this is the canonical-form invariant that makes negation a tag flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Node {
    pub var: u32,
    pub lo: u32,
    pub hi: u32,
}

/// Flat node store with slot recycling and live/peak accounting.
#[derive(Debug)]
pub(crate) struct Arena {
    nodes: Vec<Node>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
    allocs: u64,
}

impl Arena {
    pub fn new() -> Self {
        let mut nodes = Vec::with_capacity(1024);
        nodes.push(Node {
            var: TERMINAL_VAR,
            lo: 0,
            hi: 0,
        });
        Arena {
            nodes,
            free: Vec::new(),
            live: 1,
            peak: 1,
            allocs: 0,
        }
    }

    /// Allocates a node, reusing a freed slot when one exists.
    pub fn alloc(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        let idx = match self.free.pop() {
            Some(idx) => {
                self.nodes[idx as usize] = Node { var, lo, hi };
                idx
            }
            None => {
                let idx = self.nodes.len() as u32;
                self.nodes.push(Node { var, lo, hi });
                idx
            }
        };
        self.live += 1;
        self.allocs += 1;
        if self.live > self.peak {
            self.peak = self.live;
        }
        idx
    }

    /// Total allocations ever (monotonic; lets callers detect whether an
    /// operation created a node).
    #[inline]
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Returns a node's slot to the free list.
    pub fn release(&mut self, idx: u32) {
        debug_assert!(idx != 0, "the terminal is never freed");
        let n = &mut self.nodes[idx as usize];
        debug_assert!(n.var != FREE_VAR, "double free of node {idx}");
        n.var = FREE_VAR;
        n.lo = 0;
        n.hi = 0;
        self.free.push(idx);
        self.live -= 1;
    }

    #[inline(always)]
    pub fn node(&self, idx: u32) -> Node {
        self.nodes[idx as usize]
    }

    #[inline(always)]
    pub fn var(&self, idx: u32) -> u32 {
        self.nodes[idx as usize].var
    }

    /// Rewrites a node in place (used by the reordering swap, which must
    /// preserve node identity so outstanding handles stay valid).
    pub fn rewrite(&mut self, idx: u32, var: u32, lo: u32, hi: u32) {
        self.nodes[idx as usize] = Node { var, lo, hi };
    }

    #[cfg(test)]
    pub fn is_free(&self, idx: u32) -> bool {
        self.nodes[idx as usize].var == FREE_VAR
    }

    /// Live node count, terminal included.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of the live node count.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Number of slots ever allocated (free slots included).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates the indices of live non-terminal nodes.
    pub fn live_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, n)| n.var != FREE_VAR)
            .map(|(i, _)| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_release_recycles_slots() {
        let mut a = Arena::new();
        assert_eq!(a.live(), 1);
        assert_eq!(a.peak(), 1);
        let n1 = a.alloc(0, 1, 0);
        let n2 = a.alloc(1, 1, 0);
        assert_eq!(a.live(), 3);
        assert_eq!(a.peak(), 3);
        a.release(n1);
        assert_eq!(a.live(), 2);
        assert!(a.is_free(n1));
        let n3 = a.alloc(2, 1, 0);
        assert_eq!(n3, n1, "freed slot is reused");
        assert_eq!(a.live(), 3);
        assert_eq!(a.peak(), 3, "peak tracks the high-water mark");
        assert_eq!(a.var(n2), 1);
        assert_eq!(a.node(n3).var, 2);
        assert_eq!(a.live_indices().count(), 2);
    }
}
