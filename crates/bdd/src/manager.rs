//! The BDD node store and core operations.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::BddError;

/// Handle to a BDD function owned by a [`BddManager`].
///
/// Handles are plain indices; they are cheap to copy and remain valid for
/// the lifetime of the manager (no garbage collection invalidates them).
/// Using a handle with a different manager is a logic error and yields
/// unspecified functions (but no undefined behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

const FALSE: Bdd = Bdd(0);
const TRUE: Bdd = Bdd(1);
const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: u32,
    hi: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Op {
    And,
    Or,
    Xor,
}

/// Operation-cache hit/miss counters of a [`BddManager`].
///
/// A *hit* is a memoized result returned without recursion; a *miss* is a
/// cache lookup that fell through to the recursive computation (terminal
/// short-circuits count as neither). Counters are cumulative since manager
/// creation or the last [`BddManager::reset_counters`], and deterministic
/// for a deterministic operation sequence — summing them across independent
/// managers is therefore order-insensitive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddCounters {
    /// Apply-cache (AND/OR/XOR) hits.
    pub apply_hits: u64,
    /// Apply-cache misses.
    pub apply_misses: u64,
    /// ITE-cache hits.
    pub ite_hits: u64,
    /// ITE-cache misses.
    pub ite_misses: u64,
    /// NOT-cache hits.
    pub not_hits: u64,
    /// NOT-cache misses.
    pub not_misses: u64,
    /// Quantification-cache hits.
    pub quant_hits: u64,
    /// Quantification-cache misses.
    pub quant_misses: u64,
    /// Unique-table resize (rehash) events: inserts that grew the table's
    /// allocated capacity.
    pub unique_resizes: u64,
    /// Operation-cache entries dropped by [`BddManager::clear_caches`].
    pub evictions: u64,
}

impl BddCounters {
    /// Total cache hits across every operation cache.
    pub fn total_hits(&self) -> u64 {
        self.apply_hits + self.ite_hits + self.not_hits + self.quant_hits
    }

    /// Total cache misses across every operation cache.
    pub fn total_misses(&self) -> u64 {
        self.apply_misses + self.ite_misses + self.not_misses + self.quant_misses
    }
}

impl std::ops::AddAssign for BddCounters {
    fn add_assign(&mut self, rhs: BddCounters) {
        self.apply_hits += rhs.apply_hits;
        self.apply_misses += rhs.apply_misses;
        self.ite_hits += rhs.ite_hits;
        self.ite_misses += rhs.ite_misses;
        self.not_hits += rhs.not_hits;
        self.not_misses += rhs.not_misses;
        self.quant_hits += rhs.quant_hits;
        self.quant_misses += rhs.quant_misses;
        self.unique_resizes += rhs.unique_resizes;
        self.evictions += rhs.evictions;
    }
}

/// Entry counts of a [`BddManager`]'s operation caches at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCacheSizes {
    /// Apply-cache (AND/OR/XOR) entries.
    pub apply: usize,
    /// ITE-cache entries.
    pub ite: usize,
    /// NOT-cache entries.
    pub not: usize,
    /// Quantification-cache entries.
    pub quant: usize,
}

impl OpCacheSizes {
    /// Total entries across every operation cache.
    pub fn total(&self) -> usize {
        self.apply + self.ite + self.not + self.quant
    }
}

/// An ROBDD manager: unique table, operation caches, and a node budget.
///
/// See the [crate-level documentation](crate) for an overview and example.
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32>,
    apply_cache: HashMap<(Op, u32, u32), u32>,
    ite_cache: HashMap<(u32, u32, u32), u32>,
    not_cache: HashMap<u32, u32>,
    quant_cache: HashMap<(u32, u32, bool), u32>,
    num_vars: u32,
    node_limit: usize,
    deadline: Option<Instant>,
    interrupt: Option<Arc<AtomicBool>>,
    op_tick: u64,
    counters: BddCounters,
    peak_nodes: usize,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Default node budget: generous for sampling-domain work, small enough
    /// to abort runaway exact-domain computations.
    pub const DEFAULT_NODE_LIMIT: usize = 4_000_000;

    /// Creates a manager with the default node limit.
    pub fn new() -> Self {
        Self::with_node_limit(Self::DEFAULT_NODE_LIMIT)
    }

    /// Creates a manager with an explicit node budget.
    pub fn with_node_limit(node_limit: usize) -> Self {
        let mut m = BddManager {
            nodes: Vec::with_capacity(1024),
            unique: HashMap::new(),
            apply_cache: HashMap::new(),
            ite_cache: HashMap::new(),
            not_cache: HashMap::new(),
            quant_cache: HashMap::new(),
            num_vars: 0,
            node_limit,
            deadline: None,
            interrupt: None,
            op_tick: 0,
            counters: BddCounters::default(),
            peak_nodes: 0,
        };
        m.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: 0,
            hi: 0,
        }); // false
        m.nodes.push(Node {
            var: TERMINAL_VAR,
            lo: 1,
            hi: 1,
        }); // true
        m.peak_nodes = m.nodes.len();
        m
    }

    /// The constant-false function.
    #[inline]
    pub fn zero(&self) -> Bdd {
        FALSE
    }

    /// The constant-true function.
    #[inline]
    pub fn one(&self) -> Bdd {
        TRUE
    }

    /// Number of live nodes (terminals included).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of allocated variables.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Returns the function of variable `index`, allocating variables up to
    /// and including it. Variable index doubles as diagram level: lower
    /// indices are nearer the root.
    pub fn var(&mut self, index: u32) -> Bdd {
        if index >= self.num_vars {
            self.num_vars = index + 1;
        }
        // var nodes cannot exceed the limit meaningfully; ignore budget here.
        Bdd(self.mk(index, 0, 1))
    }

    /// Returns the negated variable `index`.
    pub fn nvar(&mut self, index: u32) -> Bdd {
        if index >= self.num_vars {
            self.num_vars = index + 1;
        }
        Bdd(self.mk(index, 1, 0))
    }

    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        if let Some(&id) = self.unique.get(&(var, lo, hi)) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi });
        let capacity_before = self.unique.capacity();
        self.unique.insert((var, lo, hi), id);
        if self.unique.capacity() > capacity_before {
            self.counters.unique_resizes += 1;
        }
        // Nodes are never reclaimed today, but peak tracking must survive a
        // future garbage-collection pass, so it is maintained explicitly.
        if self.nodes.len() > self.peak_nodes {
            self.peak_nodes = self.nodes.len();
        }
        id
    }

    /// Sets an absolute wall-clock deadline; `None` removes it. Operations
    /// poll it periodically and fail with [`BddError::DeadlineExceeded`]
    /// once it has passed.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Installs a cooperative interrupt flag; `None` removes it. Setting
    /// the flag makes in-flight operations fail with
    /// [`BddError::Cancelled`] at their next periodic check.
    pub fn set_interrupt(&mut self, interrupt: Option<Arc<AtomicBool>>) {
        self.interrupt = interrupt;
    }

    #[inline]
    fn check_budget(&mut self) -> Result<(), BddError> {
        if self.nodes.len() > self.node_limit {
            return Err(BddError::NodeLimit {
                limit: self.node_limit,
            });
        }
        // Deadline/interrupt polls amortized over ~1024 cache-missing
        // recursion steps; skipped entirely when neither is installed.
        if self.deadline.is_some() || self.interrupt.is_some() {
            self.op_tick = self.op_tick.wrapping_add(1);
            // `== 1` so the very first governed operation already polls.
            if self.op_tick & 0x3FF == 1 {
                if let Some(d) = self.deadline {
                    if Instant::now() >= d {
                        return Err(BddError::DeadlineExceeded);
                    }
                }
                if let Some(flag) = &self.interrupt {
                    if flag.load(Ordering::Relaxed) {
                        return Err(BddError::Cancelled);
                    }
                }
            }
        }
        Ok(())
    }

    #[inline]
    fn level(&self, f: u32) -> u32 {
        self.nodes[f as usize].var
    }

    #[inline]
    pub(crate) fn cofactors(&self, f: u32, at_var: u32) -> (u32, u32) {
        let n = self.nodes[f as usize];
        if n.var == at_var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// Whether `f` is one of the two terminals.
    #[inline]
    pub fn is_const(&self, f: Bdd) -> bool {
        f.0 <= 1
    }

    /// The root variable of `f`, if `f` is not a terminal.
    pub fn root_var(&self, f: Bdd) -> Option<u32> {
        let v = self.level(f.0);
        if v == TERMINAL_VAR {
            None
        } else {
            Some(v)
        }
    }

    /// Low (`var = 0`) child of a non-terminal node.
    pub fn low(&self, f: Bdd) -> Bdd {
        Bdd(self.nodes[f.0 as usize].lo)
    }

    /// High (`var = 1`) child of a non-terminal node.
    pub fn high(&self, f: Bdd) -> Bdd {
        Bdd(self.nodes[f.0 as usize].hi)
    }

    // ------------------------------------------------------------------
    // Connectives
    // ------------------------------------------------------------------

    /// Negation.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn not(&mut self, f: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.not_rec(f.0)?))
    }

    fn not_rec(&mut self, f: u32) -> Result<u32, BddError> {
        if f == 0 {
            return Ok(1);
        }
        if f == 1 {
            return Ok(0);
        }
        if let Some(&r) = self.not_cache.get(&f) {
            self.counters.not_hits += 1;
            return Ok(r);
        }
        self.counters.not_misses += 1;
        self.check_budget()?;
        let n = self.nodes[f as usize];
        let lo = self.not_rec(n.lo)?;
        let hi = self.not_rec(n.hi)?;
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(f, r);
        Ok(r)
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.apply(Op::And, f.0, g.0)?))
    }

    /// Disjunction.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.apply(Op::Or, f.0, g.0)?))
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.apply(Op::Xor, f.0, g.0)?))
    }

    /// Equivalence `f ≡ g`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        let x = self.xor(f, g)?;
        self.not(x)
    }

    /// Implication `f → g`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        let nf = self.not(f)?;
        self.or(nf, g)
    }

    /// If-then-else `i ? t : e`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn ite(&mut self, i: Bdd, t: Bdd, e: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.ite_rec(i.0, t.0, e.0)?))
    }

    fn apply(&mut self, op: Op, f: u32, g: u32) -> Result<u32, BddError> {
        // Terminal cases.
        match op {
            Op::And => {
                if f == 0 || g == 0 {
                    return Ok(0);
                }
                if f == 1 {
                    return Ok(g);
                }
                if g == 1 {
                    return Ok(f);
                }
                if f == g {
                    return Ok(f);
                }
            }
            Op::Or => {
                if f == 1 || g == 1 {
                    return Ok(1);
                }
                if f == 0 {
                    return Ok(g);
                }
                if g == 0 {
                    return Ok(f);
                }
                if f == g {
                    return Ok(f);
                }
            }
            Op::Xor => {
                if f == 0 {
                    return Ok(g);
                }
                if g == 0 {
                    return Ok(f);
                }
                if f == g {
                    return Ok(0);
                }
                if f == 1 {
                    return self.not_rec(g);
                }
                if g == 1 {
                    return self.not_rec(f);
                }
            }
        }
        // Commutative: canonicalize operand order.
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(&r) = self.apply_cache.get(&(op, f, g)) {
            self.counters.apply_hits += 1;
            return Ok(r);
        }
        self.counters.apply_misses += 1;
        self.check_budget()?;
        let v = self.level(f).min(self.level(g));
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let lo = self.apply(op, f0, g0)?;
        let hi = self.apply(op, f1, g1)?;
        let r = self.mk(v, lo, hi);
        self.apply_cache.insert((op, f, g), r);
        Ok(r)
    }

    fn ite_rec(&mut self, i: u32, t: u32, e: u32) -> Result<u32, BddError> {
        if i == 1 {
            return Ok(t);
        }
        if i == 0 {
            return Ok(e);
        }
        if t == e {
            return Ok(t);
        }
        if t == 1 && e == 0 {
            return Ok(i);
        }
        if let Some(&r) = self.ite_cache.get(&(i, t, e)) {
            self.counters.ite_hits += 1;
            return Ok(r);
        }
        self.counters.ite_misses += 1;
        self.check_budget()?;
        let v = self.level(i).min(self.level(t)).min(self.level(e));
        let (i0, i1) = self.cofactors(i, v);
        let (t0, t1) = self.cofactors(t, v);
        let (e0, e1) = self.cofactors(e, v);
        let lo = self.ite_rec(i0, t0, e0)?;
        let hi = self.ite_rec(i1, t1, e1)?;
        let r = self.mk(v, lo, hi);
        self.ite_cache.insert((i, t, e), r);
        Ok(r)
    }

    // ------------------------------------------------------------------
    // Cofactor & quantification
    // ------------------------------------------------------------------

    /// Cofactor of `f` with variable `var` fixed to `value`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn restrict(&mut self, f: Bdd, var: u32, value: bool) -> Result<Bdd, BddError> {
        Ok(Bdd(self.restrict_rec(f.0, var, value)?))
    }

    fn restrict_rec(&mut self, f: u32, var: u32, value: bool) -> Result<u32, BddError> {
        let v = self.level(f);
        if v == TERMINAL_VAR || v > var {
            return Ok(f);
        }
        self.check_budget()?;
        let n = self.nodes[f as usize];
        if v == var {
            return Ok(if value { n.hi } else { n.lo });
        }
        let lo = self.restrict_rec(n.lo, var, value)?;
        let hi = self.restrict_rec(n.hi, var, value)?;
        Ok(self.mk(v, lo, hi))
    }

    /// Builds the positive cube `⋀ vars` used as a quantification scope.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn var_cube(&mut self, vars: &[u32]) -> Result<Bdd, BddError> {
        let mut sorted = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut cube = TRUE;
        for &v in sorted.iter().rev() {
            let lit = self.var(v);
            cube = self.and(lit, cube)?;
        }
        Ok(cube)
    }

    /// Existential quantification `∃ vars . f`; `cube` is a positive cube of
    /// the quantified variables (see [`var_cube`](BddManager::var_cube)).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn exists(&mut self, f: Bdd, cube: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.quant_rec(f.0, cube.0, true)?))
    }

    /// Universal quantification `∀ vars . f`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn forall(&mut self, f: Bdd, cube: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.quant_rec(f.0, cube.0, false)?))
    }

    fn quant_rec(&mut self, f: u32, cube: u32, existential: bool) -> Result<u32, BddError> {
        if f <= 1 || cube == 1 {
            return Ok(f);
        }
        if let Some(&r) = self.quant_cache.get(&(f, cube, existential)) {
            self.counters.quant_hits += 1;
            return Ok(r);
        }
        self.counters.quant_misses += 1;
        self.check_budget()?;
        let fv = self.level(f);
        let cv = self.level(cube);
        let r = if cv < fv {
            // Quantified variable does not appear in f at this level.
            let next = self.nodes[cube as usize].hi;
            self.quant_rec(f, next, existential)?
        } else {
            let n = self.nodes[f as usize];
            if fv == cv {
                let next = self.nodes[cube as usize].hi;
                let lo = self.quant_rec(n.lo, next, existential)?;
                let hi = self.quant_rec(n.hi, next, existential)?;
                if existential {
                    self.apply(Op::Or, lo, hi)?
                } else {
                    self.apply(Op::And, lo, hi)?
                }
            } else {
                let lo = self.quant_rec(n.lo, cube, existential)?;
                let hi = self.quant_rec(n.hi, cube, existential)?;
                self.mk(fv, lo, hi)
            }
        };
        self.quant_cache.insert((f, cube, existential), r);
        Ok(r)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Evaluates `f` under a total assignment indexed by variable.
    ///
    /// Variables beyond `assignment.len()` evaluate as `false`.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut cur = f.0;
        loop {
            if cur == 0 {
                return false;
            }
            if cur == 1 {
                return true;
            }
            let n = self.nodes[cur as usize];
            let v = assignment.get(n.var as usize).copied().unwrap_or(false);
            cur = if v { n.hi } else { n.lo };
        }
    }

    /// Checks `f → g` as a decision procedure (no new nodes beyond the
    /// intermediate conjunction).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn implies_check(&mut self, f: Bdd, g: Bdd) -> Result<bool, BddError> {
        let ng = self.not(g)?;
        let bad = self.and(f, ng)?;
        Ok(bad == FALSE)
    }

    /// Number of satisfying assignments of `f` over variables `0..num_vars`.
    ///
    /// Returned as `f64` to stay robust for wide variable scopes.
    pub fn sat_count(&self, f: Bdd, num_vars: u32) -> f64 {
        let mut memo: HashMap<u32, f64> = HashMap::new();
        // count(f) = assignments over vars level(f)..num_vars; scale at root.
        fn rec(m: &BddManager, f: u32, num_vars: u32, memo: &mut HashMap<u32, f64>) -> f64 {
            if f == 0 {
                return 0.0;
            }
            if f == 1 {
                return 1.0;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let n = m.nodes[f as usize];
            let lo_level = if m.nodes[n.lo as usize].var == TERMINAL_VAR {
                num_vars
            } else {
                m.nodes[n.lo as usize].var
            };
            let hi_level = if m.nodes[n.hi as usize].var == TERMINAL_VAR {
                num_vars
            } else {
                m.nodes[n.hi as usize].var
            };
            let lo = rec(m, n.lo, num_vars, memo) * 2f64.powi((lo_level - n.var - 1) as i32);
            let hi = rec(m, n.hi, num_vars, memo) * 2f64.powi((hi_level - n.var - 1) as i32);
            let c = lo + hi;
            memo.insert(f, c);
            c
        }
        let top = rec(self, f.0, num_vars, &mut memo);
        let root_level = if self.nodes[f.0 as usize].var == TERMINAL_VAR {
            num_vars
        } else {
            self.nodes[f.0 as usize].var
        };
        top * 2f64.powi(root_level as i32)
    }

    /// Clears operation caches (unique table and nodes are kept).
    ///
    /// Useful between large independent computations to bound memory.
    /// Hit/miss [`counters`](BddManager::counters) are cumulative and are
    /// *not* reset — use [`reset_counters`](BddManager::reset_counters).
    pub fn clear_caches(&mut self) {
        self.counters.evictions += (self.apply_cache.len()
            + self.ite_cache.len()
            + self.not_cache.len()
            + self.quant_cache.len()) as u64;
        self.apply_cache.clear();
        self.ite_cache.clear();
        self.not_cache.clear();
        self.quant_cache.clear();
    }

    // ------------------------------------------------------------------
    // Instrumentation
    // ------------------------------------------------------------------

    /// Cumulative operation-cache hit/miss counters.
    #[inline]
    pub fn counters(&self) -> BddCounters {
        self.counters
    }

    /// Resets the hit/miss counters to zero (caches are untouched).
    pub fn reset_counters(&mut self) {
        self.counters = BddCounters::default();
    }

    /// High-water mark of the node store (terminals included).
    #[inline]
    pub fn peak_num_nodes(&self) -> usize {
        self.peak_nodes
    }

    /// Number of entries in the unique table (terminals excluded).
    #[inline]
    pub fn unique_table_len(&self) -> usize {
        self.unique.len()
    }

    /// Current entry counts of each operation cache.
    pub fn op_cache_sizes(&self) -> OpCacheSizes {
        OpCacheSizes {
            apply: self.apply_cache.len(),
            ite: self.ite_cache.len(),
            not: self.not_cache.len(),
            quant: self.quant_cache.len(),
        }
    }

    /// Live node count per variable level: index `v` holds the number of
    /// nodes labelled with variable `v` (terminals excluded). The vector
    /// has [`num_vars`](BddManager::num_vars) entries.
    pub fn nodes_per_level(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.num_vars as usize];
        for node in &self.nodes {
            if node.var != TERMINAL_VAR {
                levels[node.var as usize] += 1;
            }
        }
        levels
    }

    /// Functional composition `f[var := g]`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn compose(&mut self, f: Bdd, var: u32, g: Bdd) -> Result<Bdd, BddError> {
        // f[var := g] = ite(g, f|var=1, f|var=0)
        let hi = self.restrict(f, var, true)?;
        let lo = self.restrict(f, var, false)?;
        self.ite(g, hi, lo)
    }

    /// The set of variables `f` depends on, in ascending order.
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        let mut vars = std::collections::BTreeSet::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= 1 || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n as usize];
            vars.insert(node.var);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        vars.into_iter().collect()
    }

    /// Number of distinct nodes in the DAG rooted at `f` (terminals
    /// excluded).
    pub fn dag_size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= 1 || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n as usize];
            stack.push(node.lo);
            stack.push(node.hi);
        }
        seen.len()
    }

    /// Renders `f` in Graphviz dot format (solid = high edge, dashed = low).
    pub fn to_dot(&self, f: Bdd, name: &str) -> String {
        use std::fmt::Write;
        let mut out = format!("digraph \"{name}\" {{\n");
        out.push_str("  n0 [shape=box,label=\"0\"];\n");
        out.push_str("  n1 [shape=box,label=\"1\"];\n");
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= 1 || !seen.insert(n) {
                continue;
            }
            let node = self.nodes[n as usize];
            let _ = writeln!(out, "  n{n} [label=\"x{}\"];", node.var);
            let _ = writeln!(out, "  n{n} -> n{} [style=dashed];", node.lo);
            let _ = writeln!(out, "  n{n} -> n{};", node.hi);
            stack.push(node.lo);
            stack.push(node.hi);
        }
        let _ = writeln!(out, "  root -> n{} [style=bold];", f.0);
        out.push_str("}\n");
        out
    }
}

// The rectification scheduler moves a manager into each worker thread, so
// `Send` is load-bearing: keep the store free of `Rc`/raw-pointer state.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<BddManager>();
    assert_send_sync::<Bdd>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BddManager {
        BddManager::new()
    }

    #[test]
    fn repeated_apply_hits_the_cache() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let first = m.and(a, b).unwrap();
        let before = m.counters();
        assert_eq!(before.apply_hits, 0);
        assert!(before.apply_misses >= 1);
        let second = m.and(a, b).unwrap();
        assert_eq!(first, second);
        let after = m.counters();
        assert!(after.apply_hits > before.apply_hits);
        assert_eq!(after.apply_misses, before.apply_misses);

        let n = m.not(first).unwrap();
        let miss = m.counters();
        assert!(miss.not_misses >= 1);
        assert_eq!(m.not(first).unwrap(), n);
        assert!(m.counters().not_hits > miss.not_hits);

        m.reset_counters();
        assert_eq!(m.counters(), BddCounters::default());
    }

    #[test]
    fn peak_nodes_and_unique_table_track_growth() {
        let mut m = mgr();
        assert_eq!(m.peak_num_nodes(), 2); // the two terminals
        assert_eq!(m.unique_table_len(), 0);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.xor(a, b).unwrap();
        assert_eq!(m.peak_num_nodes(), m.num_nodes());
        assert_eq!(m.unique_table_len(), m.num_nodes() - 2);
        let peak = m.peak_num_nodes();
        m.clear_caches();
        assert_eq!(m.peak_num_nodes(), peak);
    }

    #[test]
    fn cache_clears_count_evictions_and_sizes_report() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.xor(a, b).unwrap();
        let sizes = m.op_cache_sizes();
        assert!(sizes.apply > 0, "xor populates the apply cache");
        assert_eq!(
            sizes.total(),
            sizes.apply + sizes.ite + sizes.not + sizes.quant
        );
        let expected = sizes.total() as u64;
        m.clear_caches();
        assert_eq!(m.counters().evictions, expected);
        assert_eq!(m.op_cache_sizes().total(), 0);
        // A clear of empty caches evicts nothing further.
        m.clear_caches();
        assert_eq!(m.counters().evictions, expected);
    }

    #[test]
    fn unique_resizes_are_counted() {
        let mut m = mgr();
        // Build a function with enough distinct nodes to force the unique
        // table through several capacity doublings.
        let mut f = m.zero();
        for i in 0..64 {
            let v = m.var(i);
            f = m.xor(f, v).unwrap();
        }
        assert!(
            m.counters().unique_resizes > 0,
            "64-variable parity must grow the unique table"
        );
        assert!(m.counters().unique_resizes < m.unique_table_len() as u64);
    }

    #[test]
    fn nodes_per_level_counts_every_nonterminal() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b).unwrap();
        let _ = m.or(ab, c).unwrap();
        let levels = m.nodes_per_level();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels.iter().sum::<usize>(), m.num_nodes() - 2);
        assert!(levels.iter().all(|&c| c > 0));
    }

    #[test]
    fn counters_fold_with_add_assign() {
        let mut total = BddCounters::default();
        total += BddCounters {
            apply_hits: 1,
            apply_misses: 2,
            ..BddCounters::default()
        };
        total += BddCounters {
            apply_hits: 10,
            quant_misses: 3,
            ..BddCounters::default()
        };
        assert_eq!(total.apply_hits, 11);
        assert_eq!(total.apply_misses, 2);
        assert_eq!(total.quant_misses, 3);
        assert_eq!(total.total_hits(), 11);
        assert_eq!(total.total_misses(), 5);
    }

    #[test]
    fn terminals() {
        let m = mgr();
        assert!(m.is_const(m.zero()));
        assert!(m.is_const(m.one()));
        assert_ne!(m.zero(), m.one());
    }

    #[test]
    fn var_is_canonical() {
        let mut m = mgr();
        let a1 = m.var(0);
        let a2 = m.var(0);
        assert_eq!(a1, a2);
    }

    #[test]
    fn connective_truth_tables() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let and = m.and(a, b).unwrap();
        let or = m.or(a, b).unwrap();
        let xor = m.xor(a, b).unwrap();
        let iff = m.iff(a, b).unwrap();
        let imp = m.implies(a, b).unwrap();
        for i in 0..4u8 {
            let assign = [(i & 1) == 1, (i & 2) == 2];
            let (x, y) = (assign[0], assign[1]);
            assert_eq!(m.eval(and, &assign), x && y);
            assert_eq!(m.eval(or, &assign), x || y);
            assert_eq!(m.eval(xor, &assign), x ^ y);
            assert_eq!(m.eval(iff, &assign), x == y);
            assert_eq!(m.eval(imp, &assign), !x || y);
        }
    }

    #[test]
    fn de_morgan_canonical() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let and = m.and(a, b).unwrap();
        let lhs = m.not(and).unwrap();
        let na = m.not(a).unwrap();
        let nb = m.not(b).unwrap();
        let rhs = m.or(na, nb).unwrap();
        assert_eq!(lhs, rhs, "canonicity: equal functions share a node");
    }

    #[test]
    fn ite_matches_formula() {
        let mut m = mgr();
        let i = m.var(0);
        let t = m.var(1);
        let e = m.var(2);
        let ite = m.ite(i, t, e).unwrap();
        let it = m.and(i, t).unwrap();
        let ni = m.not(i).unwrap();
        let nie = m.and(ni, e).unwrap();
        let formula = m.or(it, nie).unwrap();
        assert_eq!(ite, formula);
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b).unwrap();
        let f_a1 = m.restrict(f, 0, true).unwrap();
        let nb = m.not(b).unwrap();
        assert_eq!(f_a1, nb);
        let f_a0 = m.restrict(f, 0, false).unwrap();
        assert_eq!(f_a0, b);
    }

    #[test]
    fn quantification() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b).unwrap();
        let cube_a = m.var_cube(&[0]).unwrap();
        let ex = m.exists(f, cube_a).unwrap();
        assert_eq!(ex, b); // ∃a. a∧b  =  b
        let fa = m.forall(f, cube_a).unwrap();
        assert_eq!(fa, m.zero()); // ∀a. a∧b  =  0
        let g = m.or(a, b).unwrap();
        let fa_or = m.forall(g, cube_a).unwrap();
        assert_eq!(fa_or, b); // ∀a. a∨b  =  b
    }

    #[test]
    fn quantify_multiple_vars() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let cube = m.var_cube(&[0, 1]).unwrap();
        let ex = m.exists(f, cube).unwrap();
        assert_eq!(ex, m.one()); // some a,b makes it true regardless of c
        let fa = m.forall(f, cube).unwrap();
        assert_eq!(fa, c); // only c guarantees truth
    }

    #[test]
    fn sat_count_basic() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b).unwrap();
        assert_eq!(m.sat_count(f, 2), 2.0);
        assert_eq!(m.sat_count(f, 3), 4.0); // free third variable doubles
        assert_eq!(m.sat_count(m.one(), 4), 16.0);
        assert_eq!(m.sat_count(m.zero(), 4), 0.0);
        assert_eq!(m.sat_count(a, 2), 2.0);
        assert_eq!(m.sat_count(b, 2), 2.0); // root below var 0 scales up
    }

    #[test]
    fn node_limit_enforced() {
        let mut m = BddManager::with_node_limit(16);
        // Build a function whose BDD needs many nodes: parity of 20 vars is
        // fine, but the budget is tiny.
        let mut f = m.zero();
        let mut r = Ok(());
        for i in 0..20 {
            let v = m.var(i);
            match m.xor(f, v) {
                Ok(g) => f = g,
                Err(e) => {
                    r = Err(e);
                    break;
                }
            }
        }
        assert!(matches!(r, Err(BddError::NodeLimit { .. })));
    }

    #[test]
    fn expired_deadline_fails_operations() {
        let mut m = mgr();
        m.set_deadline(Some(Instant::now()));
        let mut r = Ok(m.zero());
        for i in 0..64 {
            let v = m.var(i);
            let f = r.unwrap_or(m.zero());
            r = m.xor(f, v);
            if r.is_err() {
                break;
            }
        }
        assert_eq!(r, Err(BddError::DeadlineExceeded));
        // Clearing the deadline restores normal operation.
        m.set_deadline(None);
        let a = m.var(0);
        let b = m.var(1);
        assert!(m.and(a, b).is_ok());
    }

    #[test]
    fn interrupt_flag_fails_operations() {
        let mut m = mgr();
        let flag = Arc::new(AtomicBool::new(true));
        m.set_interrupt(Some(Arc::clone(&flag)));
        let mut r = Ok(m.zero());
        for i in 0..64 {
            let v = m.var(i);
            let f = r.unwrap_or(m.zero());
            r = m.xor(f, v);
            if r.is_err() {
                break;
            }
        }
        assert_eq!(r, Err(BddError::Cancelled));
        flag.store(false, Ordering::Relaxed);
        let a = m.var(0);
        let b = m.var(1);
        assert!(m.and(a, b).is_ok());
    }

    #[test]
    fn generous_deadline_does_not_interfere() {
        let mut m = mgr();
        m.set_deadline(Some(Instant::now() + std::time::Duration::from_secs(3600)));
        m.set_interrupt(Some(Arc::new(AtomicBool::new(false))));
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b).unwrap();
        assert_eq!(m.sat_count(f, 2), 2.0);
    }

    #[test]
    fn implies_check_decides() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let and = m.and(a, b).unwrap();
        let or = m.or(a, b).unwrap();
        assert!(m.implies_check(and, or).unwrap());
        assert!(!m.implies_check(or, and).unwrap());
    }

    #[test]
    fn eval_with_short_assignment_defaults_false() {
        let mut m = mgr();
        let v5 = m.var(5);
        assert!(!m.eval(v5, &[true, true]));
    }

    #[test]
    fn compose_substitutes_function() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.xor(a, b).unwrap();
        let g = m.and(b, c).unwrap();
        let h = m.compose(f, 0, g).unwrap();
        // h = (b ∧ c) ⊕ b
        for j in 0..8u8 {
            let assign = [(j & 1) == 1, (j & 2) == 2, (j & 4) == 4];
            let expect = (assign[1] && assign[2]) ^ assign[1];
            assert_eq!(m.eval(h, &assign), expect, "{j}");
        }
    }

    #[test]
    fn support_lists_dependent_vars() {
        let mut m = mgr();
        let a = m.var(0);
        let c = m.var(5);
        let f = m.and(a, c).unwrap();
        assert_eq!(m.support(f), vec![0, 5]);
        assert!(m.support(m.one()).is_empty());
        // xor(a, a) collapses: support empty.
        let z = m.xor(a, a).unwrap();
        assert!(m.support(z).is_empty());
    }

    #[test]
    fn dag_size_counts_distinct_nodes() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b).unwrap();
        assert_eq!(m.dag_size(f), 3); // root + two b-children
        assert_eq!(m.dag_size(m.zero()), 0);
    }

    #[test]
    fn dot_output_mentions_nodes() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b).unwrap();
        let dot = m.to_dot(f, "and2");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn parity_chain_is_linear() {
        // Parity has a linear-size BDD under any order; sanity-check growth.
        let mut m = mgr();
        let mut f = m.zero();
        for i in 0..64 {
            let v = m.var(i);
            f = m.xor(f, v).unwrap();
        }
        // Final parity BDD is linear (2 nodes per level); the store also
        // retains intermediates of the accumulation, so bound quadratically.
        assert!(m.num_nodes() < 2 + 2 * 64 * 64);
        assert_eq!(m.sat_count(f, 64), 2f64.powi(63));
    }
}
