//! The BDD node store and core operations.
//!
//! # Engine layout
//!
//! The manager is an arena engine with **complement edges**:
//!
//! * Nodes live in a flat [`Arena`](crate::arena) indexed by `u32`; a
//!   [`Bdd`] handle is an *edge* `(node_index << 1) | complement_bit`.
//! * There is a single terminal node (index 0, the constant one); the
//!   constant false is its complement edge. Negation is therefore a tag
//!   flip — no recursion, no nodes, no cache.
//! * Canonical form: the `hi` edge of every stored node is regular. Any
//!   function and its complement share one node, so equality of handles
//!   is still equality of functions.
//! * The unique table is open-addressed over node indices
//!   ([`unique`](crate::unique)); operation caches are sized,
//!   direct-mapped, and invalidated generationally
//!   ([`opcache`](crate::opcache)).
//! * Mark-and-sweep garbage collection ([`BddManager::gc`]) frees nodes
//!   unreachable from the caller-supplied roots and the
//!   [`protect`](BddManager::protect)ed set; node indices of survivors
//!   never move, so live handles stay valid.
//! * Dynamic variable reordering by sifting lives in
//!   [`reorder`](BddManager::reorder); it rewrites nodes in place, so
//!   every outstanding handle keeps denoting the same function.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::arena::{Arena, TERMINAL_VAR};
use crate::opcache::DirectCache;
use crate::unique::UniqueTable;
use crate::BddError;

/// Handle to a BDD function owned by a [`BddManager`].
///
/// Handles are complement-tagged edges into the manager's node arena;
/// they are cheap to copy. A handle stays valid as long as it is
/// reachable from a [`protect`](BddManager::protect)ed root at every
/// [`gc`](BddManager::gc) — managers without garbage collection enabled
/// (the default) never invalidate handles. Using a handle with a
/// different manager is a logic error and yields unspecified functions
/// (but no undefined behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

/// Edge constants: the terminal node is index 0 and denotes *one*; the
/// constant false is its complement edge.
const E_TRUE: u32 = 0;
const E_FALSE: u32 = 1;
/// Level value reported for terminals: below every variable.
const TERMINAL_LEVEL: u32 = u32::MAX;

const OP_AND: u32 = 0;
const OP_XOR: u32 = 1;

/// Manager lifecycle events observable through
/// [`BddManager::set_event_hook`].
///
/// The hook fires *before* the event's work runs; returning an error
/// aborts the event (and the operation that triggered it) without
/// mutating the diagram. This is the deterministic seam used by the
/// fault-injection harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddEvent {
    /// A mark-and-sweep garbage collection is about to run.
    Gc,
    /// A sifting-based variable reordering is about to run.
    Reorder,
}

/// Observer callback installed by [`BddManager::set_event_hook`].
pub type EventHook = Box<dyn FnMut(BddEvent) -> Result<(), BddError> + Send>;

/// Operation-cache hit/miss counters of a [`BddManager`].
///
/// A *hit* is a memoized result returned without recursion; a *miss* is a
/// cache lookup that fell through to the recursive computation (terminal
/// short-circuits count as neither). Counters are cumulative since manager
/// creation or the last [`BddManager::reset_counters`], and deterministic
/// for a deterministic operation sequence — summing them across independent
/// managers is therefore order-insensitive.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddCounters {
    /// Apply-cache (AND/XOR; OR and IFF derive via complement) hits.
    pub apply_hits: u64,
    /// Apply-cache misses.
    pub apply_misses: u64,
    /// ITE-cache hits.
    pub ite_hits: u64,
    /// ITE-cache misses.
    pub ite_misses: u64,
    /// NOT-cache hits. Always zero since the complement-edge rewrite —
    /// negation is a tag flip and no longer touches any cache. The field
    /// is retained so counter snapshots keep their shape.
    pub not_hits: u64,
    /// NOT-cache misses. Always zero (see [`not_hits`](Self::not_hits)).
    pub not_misses: u64,
    /// Quantification-cache hits.
    pub quant_hits: u64,
    /// Quantification-cache misses.
    pub quant_misses: u64,
    /// Unique-table resize (rehash) events: inserts that grew the table's
    /// allocated capacity. Rebuilds after garbage collection don't count.
    pub unique_resizes: u64,
    /// Operation-cache entries dropped: by [`BddManager::clear_caches`],
    /// by garbage collection, or overwritten on a direct-mapped collision.
    pub evictions: u64,
    /// Garbage-collection passes run.
    pub gc_runs: u64,
    /// Nodes reclaimed by garbage collection.
    pub gc_freed_nodes: u64,
    /// Sifting reorder passes run.
    pub reorders: u64,
    /// Adjacent-level swaps performed across all reorder passes.
    pub reorder_swaps: u64,
}

impl BddCounters {
    /// Total cache hits across every operation cache.
    pub fn total_hits(&self) -> u64 {
        self.apply_hits + self.ite_hits + self.not_hits + self.quant_hits
    }

    /// Total cache misses across every operation cache.
    pub fn total_misses(&self) -> u64 {
        self.apply_misses + self.ite_misses + self.not_misses + self.quant_misses
    }
}

impl std::ops::AddAssign for BddCounters {
    fn add_assign(&mut self, rhs: BddCounters) {
        self.apply_hits += rhs.apply_hits;
        self.apply_misses += rhs.apply_misses;
        self.ite_hits += rhs.ite_hits;
        self.ite_misses += rhs.ite_misses;
        self.not_hits += rhs.not_hits;
        self.not_misses += rhs.not_misses;
        self.quant_hits += rhs.quant_hits;
        self.quant_misses += rhs.quant_misses;
        self.unique_resizes += rhs.unique_resizes;
        self.evictions += rhs.evictions;
        self.gc_runs += rhs.gc_runs;
        self.gc_freed_nodes += rhs.gc_freed_nodes;
        self.reorders += rhs.reorders;
        self.reorder_swaps += rhs.reorder_swaps;
    }
}

/// Entry counts of a [`BddManager`]'s operation caches at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCacheSizes {
    /// Apply-cache (AND/XOR) entries.
    pub apply: usize,
    /// ITE-cache entries.
    pub ite: usize,
    /// NOT-cache entries. Always zero since the complement-edge rewrite.
    pub not: usize,
    /// Quantification-cache entries.
    pub quant: usize,
}

impl OpCacheSizes {
    /// Total entries across every operation cache.
    pub fn total(&self) -> usize {
        self.apply + self.ite + self.not + self.quant
    }
}

/// An ROBDD manager: arena node store, open-addressed unique table,
/// generational operation caches, optional garbage collection and
/// variable reordering, and a node budget.
///
/// See the [crate-level documentation](crate) for an overview and example.
pub struct BddManager {
    arena: Arena,
    unique: UniqueTable,
    apply_cache: DirectCache,
    ite_cache: DirectCache,
    quant_cache: DirectCache,
    num_vars: u32,
    var2level: Vec<u32>,
    level2var: Vec<u32>,
    node_limit: usize,
    deadline: Option<Instant>,
    interrupt: Option<Arc<AtomicBool>>,
    op_tick: u64,
    counters: BddCounters,
    resizes_offset: u64,
    protected: HashMap<u32, u32>,
    gc_threshold: Option<usize>,
    gc_initial_threshold: usize,
    pub(crate) reorder_threshold: Option<usize>,
    pub(crate) reorder_initial_threshold: usize,
    hook: Option<EventHook>,
}

impl std::fmt::Debug for BddManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BddManager")
            .field("live_nodes", &self.arena.live())
            .field("num_vars", &self.num_vars)
            .field("node_limit", &self.node_limit)
            .field("gc_threshold", &self.gc_threshold)
            .field("reorder_threshold", &self.reorder_threshold)
            .finish_non_exhaustive()
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Default node budget: generous for sampling-domain work, small enough
    /// to abort runaway exact-domain computations.
    pub const DEFAULT_NODE_LIMIT: usize = 4_000_000;

    /// Creates a manager with the default node limit.
    pub fn new() -> Self {
        Self::with_node_limit(Self::DEFAULT_NODE_LIMIT)
    }

    /// Creates a manager with an explicit node budget.
    pub fn with_node_limit(node_limit: usize) -> Self {
        BddManager {
            arena: Arena::new(),
            unique: UniqueTable::new(),
            // Ceilings sized for the par16 profile: the quantification-heavy
            // point-set builds push millions of distinct keys through the
            // ite/quant caches, and a 2^16 ceiling measurably thrashes
            // (sub-50% hit rates from collision evictions alone). Growth is
            // demand-driven, so small managers never pay for these maxima.
            apply_cache: DirectCache::new(1 << 12, 1 << 22),
            ite_cache: DirectCache::new(1 << 10, 1 << 20),
            quant_cache: DirectCache::new(1 << 10, 1 << 21),
            num_vars: 0,
            var2level: Vec::new(),
            level2var: Vec::new(),
            node_limit,
            deadline: None,
            interrupt: None,
            op_tick: 0,
            counters: BddCounters::default(),
            resizes_offset: 0,
            protected: HashMap::new(),
            gc_threshold: None,
            gc_initial_threshold: 0,
            reorder_threshold: None,
            reorder_initial_threshold: 0,
            hook: None,
        }
    }

    /// The constant-false function.
    #[inline]
    pub fn zero(&self) -> Bdd {
        Bdd(E_FALSE)
    }

    /// The constant-true function.
    #[inline]
    pub fn one(&self) -> Bdd {
        Bdd(E_TRUE)
    }

    /// Number of live nodes (the terminal included).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.arena.live()
    }

    /// Number of allocated variables.
    #[inline]
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    fn ensure_var(&mut self, index: u32) {
        if index >= self.num_vars {
            self.num_vars = index + 1;
        }
        while (self.var2level.len() as u32) < self.num_vars {
            // New variables enter at the bottom level, which preserves the
            // relative order of everything already placed (identity order
            // until the first reorder).
            let level = self.var2level.len() as u32;
            self.var2level.push(level);
            self.level2var.push(level);
        }
    }

    /// Returns the function of variable `index`, allocating variables up to
    /// and including it. Until the first [`reorder`](BddManager::reorder),
    /// variable index doubles as diagram level: lower indices are nearer
    /// the root.
    pub fn var(&mut self, index: u32) -> Bdd {
        self.ensure_var(index);
        Bdd(self.mk(index, E_FALSE, E_TRUE))
    }

    /// Returns the negated variable `index`.
    pub fn nvar(&mut self, index: u32) -> Bdd {
        self.ensure_var(index);
        Bdd(self.mk(index, E_FALSE, E_TRUE) ^ 1)
    }

    /// Find-or-create for `(var, lo, hi)` edges, normalizing to the
    /// canonical hi-regular form.
    pub(crate) fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        if hi & 1 == 1 {
            // Keep the hi edge regular: ¬mk(v, ¬lo, ¬hi).
            return self.mk_regular(var, lo ^ 1, hi ^ 1) ^ 1;
        }
        self.mk_regular(var, lo, hi)
    }

    #[inline]
    fn mk_regular(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if let Some(idx) = self.unique.find(&self.arena, var, lo, hi) {
            return idx << 1;
        }
        let idx = self.arena.alloc(var, lo, hi);
        self.unique.insert(&self.arena, idx, var, lo, hi);
        idx << 1
    }

    /// Sets an absolute wall-clock deadline; `None` removes it. Operations
    /// poll it periodically and fail with [`BddError::DeadlineExceeded`]
    /// once it has passed.
    pub fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Installs a cooperative interrupt flag; `None` removes it. Setting
    /// the flag makes in-flight operations fail with
    /// [`BddError::Cancelled`] at their next periodic check.
    pub fn set_interrupt(&mut self, interrupt: Option<Arc<AtomicBool>>) {
        self.interrupt = interrupt;
    }

    /// Installs an observer for garbage-collection and reordering events;
    /// `None` removes it. The hook runs *before* the event's work; an
    /// error return aborts the event and propagates to the caller. Used by
    /// the fault-injection harness.
    pub fn set_event_hook(&mut self, hook: Option<EventHook>) {
        self.hook = hook;
    }

    pub(crate) fn fire_event(&mut self, event: BddEvent) -> Result<(), BddError> {
        if let Some(h) = self.hook.as_mut() {
            h(event)?;
        }
        Ok(())
    }

    #[inline]
    fn check_budget(&mut self) -> Result<(), BddError> {
        if self.arena.live() > self.node_limit {
            return Err(BddError::NodeLimit {
                limit: self.node_limit,
            });
        }
        // Deadline/interrupt polls amortized over ~1024 cache-missing
        // recursion steps; skipped entirely when neither is installed.
        if self.deadline.is_some() || self.interrupt.is_some() {
            self.op_tick = self.op_tick.wrapping_add(1);
            // `== 1` so the very first governed operation already polls.
            if self.op_tick & 0x3FF == 1 {
                if let Some(d) = self.deadline {
                    if Instant::now() >= d {
                        return Err(BddError::DeadlineExceeded);
                    }
                }
                if let Some(flag) = &self.interrupt {
                    if flag.load(Ordering::Relaxed) {
                        return Err(BddError::Cancelled);
                    }
                }
            }
        }
        Ok(())
    }

    /// Diagram level of an edge (terminals sit below every variable).
    #[inline(always)]
    pub(crate) fn level_of(&self, edge: u32) -> u32 {
        let v = self.arena.var(edge >> 1);
        if v == TERMINAL_VAR {
            TERMINAL_LEVEL
        } else {
            self.var2level[v as usize]
        }
    }

    /// Cofactors of `edge` at `level`, complement bit pushed into the
    /// children.
    #[inline(always)]
    pub(crate) fn cofactors_at(&self, edge: u32, level: u32) -> (u32, u32) {
        let n = self.arena.node(edge >> 1);
        if n.var != TERMINAL_VAR && self.var2level[n.var as usize] == level {
            let c = edge & 1;
            (n.lo ^ c, n.hi ^ c)
        } else {
            (edge, edge)
        }
    }

    /// Whether `f` is one of the two constants.
    #[inline]
    pub fn is_const(&self, f: Bdd) -> bool {
        f.0 >> 1 == 0
    }

    /// The root variable of `f`, if `f` is not a constant.
    pub fn root_var(&self, f: Bdd) -> Option<u32> {
        let v = self.arena.var(f.0 >> 1);
        if v == TERMINAL_VAR {
            None
        } else {
            Some(v)
        }
    }

    /// Low (`var = 0`) child of a non-constant function. The complement
    /// tag of `f` is pushed into the returned edge, so the child denotes
    /// the actual cofactor `f|var=0`.
    pub fn low(&self, f: Bdd) -> Bdd {
        let n = self.arena.node(f.0 >> 1);
        Bdd(n.lo ^ (f.0 & 1))
    }

    /// High (`var = 1`) child of a non-constant function (see
    /// [`low`](BddManager::low)).
    pub fn high(&self, f: Bdd) -> Bdd {
        let n = self.arena.node(f.0 >> 1);
        Bdd(n.hi ^ (f.0 & 1))
    }

    // ------------------------------------------------------------------
    // Connectives
    // ------------------------------------------------------------------

    /// Negation: a complement-tag flip. Never fails and never allocates;
    /// the `Result` is kept for signature stability.
    ///
    /// # Errors
    ///
    /// Never.
    pub fn not(&mut self, f: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(f.0 ^ 1))
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.and_rec(f.0, g.0)?))
    }

    /// Disjunction (via De Morgan on the AND cache).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.and_rec(f.0 ^ 1, g.0 ^ 1)? ^ 1))
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.xor_rec(f.0, g.0)?))
    }

    /// Equivalence `f ≡ g`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.xor_rec(f.0, g.0)? ^ 1))
    }

    /// Implication `f → g`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.and_rec(f.0, g.0 ^ 1)? ^ 1))
    }

    /// If-then-else `i ? t : e`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn ite(&mut self, i: Bdd, t: Bdd, e: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.ite_rec(i.0, t.0, e.0)?))
    }

    fn and_rec(&mut self, f: u32, g: u32) -> Result<u32, BddError> {
        if f == E_FALSE || g == E_FALSE || f == g ^ 1 {
            return Ok(E_FALSE);
        }
        if f == E_TRUE {
            return Ok(g);
        }
        if g == E_TRUE || f == g {
            return Ok(f);
        }
        // Commutative: canonicalize operand order.
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.apply_cache.lookup(f, g, OP_AND) {
            self.counters.apply_hits += 1;
            return Ok(r);
        }
        self.counters.apply_misses += 1;
        self.check_budget()?;
        let level = self.level_of(f).min(self.level_of(g));
        let (f0, f1) = self.cofactors_at(f, level);
        let (g0, g1) = self.cofactors_at(g, level);
        let lo = self.and_rec(f0, g0)?;
        let hi = self.and_rec(f1, g1)?;
        let r = self.mk(self.level2var[level as usize], lo, hi);
        self.counters.evictions += self.apply_cache.insert(f, g, OP_AND, r);
        Ok(r)
    }

    fn xor_rec(&mut self, f: u32, g: u32) -> Result<u32, BddError> {
        // XOR absorbs complements: strip them and re-apply to the result,
        // which quarters the cache's key space.
        let sign = (f ^ g) & 1;
        let (f, g) = (f & !1u32, g & !1u32);
        if f == g {
            return Ok(E_FALSE ^ sign);
        }
        if f == E_TRUE {
            return Ok(g ^ 1 ^ sign);
        }
        if g == E_TRUE {
            return Ok(f ^ 1 ^ sign);
        }
        let (f, g) = if f <= g { (f, g) } else { (g, f) };
        if let Some(r) = self.apply_cache.lookup(f, g, OP_XOR) {
            self.counters.apply_hits += 1;
            return Ok(r ^ sign);
        }
        self.counters.apply_misses += 1;
        self.check_budget()?;
        let level = self.level_of(f).min(self.level_of(g));
        let (f0, f1) = self.cofactors_at(f, level);
        let (g0, g1) = self.cofactors_at(g, level);
        let lo = self.xor_rec(f0, g0)?;
        let hi = self.xor_rec(f1, g1)?;
        let r = self.mk(self.level2var[level as usize], lo, hi);
        self.counters.evictions += self.apply_cache.insert(f, g, OP_XOR, r);
        Ok(r ^ sign)
    }

    fn ite_rec(&mut self, mut i: u32, mut t: u32, mut e: u32) -> Result<u32, BddError> {
        if i == E_TRUE {
            return Ok(t);
        }
        if i == E_FALSE {
            return Ok(e);
        }
        if t == e {
            return Ok(t);
        }
        if t == E_TRUE && e == E_FALSE {
            return Ok(i);
        }
        if t == E_FALSE && e == E_TRUE {
            return Ok(i ^ 1);
        }
        // Canonicalize: regular condition, then regular then-branch.
        if i & 1 == 1 {
            i ^= 1;
            std::mem::swap(&mut t, &mut e);
        }
        let sign = t & 1;
        if sign == 1 {
            t ^= 1;
            e ^= 1;
        }
        if let Some(r) = self.ite_cache.lookup(i, t, e) {
            self.counters.ite_hits += 1;
            return Ok(r ^ sign);
        }
        self.counters.ite_misses += 1;
        self.check_budget()?;
        let level = self.level_of(i).min(self.level_of(t)).min(self.level_of(e));
        let (i0, i1) = self.cofactors_at(i, level);
        let (t0, t1) = self.cofactors_at(t, level);
        let (e0, e1) = self.cofactors_at(e, level);
        let lo = self.ite_rec(i0, t0, e0)?;
        let hi = self.ite_rec(i1, t1, e1)?;
        let r = self.mk(self.level2var[level as usize], lo, hi);
        self.counters.evictions += self.ite_cache.insert(i, t, e, r);
        Ok(r ^ sign)
    }

    // ------------------------------------------------------------------
    // Cofactor & quantification
    // ------------------------------------------------------------------

    /// Cofactor of `f` with variable `var` fixed to `value`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn restrict(&mut self, f: Bdd, var: u32, value: bool) -> Result<Bdd, BddError> {
        if (var as usize) >= self.var2level.len() {
            return Ok(f);
        }
        Ok(Bdd(self.restrict_rec(f.0, var, value)?))
    }

    fn restrict_rec(&mut self, f: u32, var: u32, value: bool) -> Result<u32, BddError> {
        let flevel = self.level_of(f);
        let target = self.var2level[var as usize];
        if flevel > target {
            return Ok(f);
        }
        self.check_budget()?;
        let c = f & 1;
        let n = self.arena.node(f >> 1);
        if flevel == target {
            return Ok(if value { n.hi ^ c } else { n.lo ^ c });
        }
        let lo = self.restrict_rec(n.lo ^ c, var, value)?;
        let hi = self.restrict_rec(n.hi ^ c, var, value)?;
        Ok(self.mk(n.var, lo, hi))
    }

    /// Builds the positive cube `⋀ vars` used as a quantification scope.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn var_cube(&mut self, vars: &[u32]) -> Result<Bdd, BddError> {
        let mut sorted = vars.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for &v in &sorted {
            self.ensure_var(v);
        }
        // Build bottom-up in diagram order so each AND is a single mk.
        sorted.sort_unstable_by_key(|&v| self.var2level[v as usize]);
        let mut cube = self.one();
        for &v in sorted.iter().rev() {
            let lit = self.var(v);
            cube = self.and(lit, cube)?;
        }
        Ok(cube)
    }

    /// Existential quantification `∃ vars . f`; `cube` is a positive cube of
    /// the quantified variables (see [`var_cube`](BddManager::var_cube)).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn exists(&mut self, f: Bdd, cube: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.exists_rec(f.0, cube.0)?))
    }

    /// Universal quantification `∀ vars . f` (via `¬∃¬`, sharing the
    /// existential cache).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn forall(&mut self, f: Bdd, cube: Bdd) -> Result<Bdd, BddError> {
        Ok(Bdd(self.exists_rec(f.0 ^ 1, cube.0)? ^ 1))
    }

    fn exists_rec(&mut self, f: u32, cube: u32) -> Result<u32, BddError> {
        if f >> 1 == 0 || cube == E_TRUE {
            return Ok(f);
        }
        if let Some(r) = self.quant_cache.lookup(f, cube, 0) {
            self.counters.quant_hits += 1;
            return Ok(r);
        }
        self.counters.quant_misses += 1;
        self.check_budget()?;
        let flevel = self.level_of(f);
        let clevel = self.level_of(cube);
        let r = if clevel < flevel {
            // Quantified variable does not appear in f at this level. The
            // cube is a positive conjunction, so its hi edge is the rest.
            let next = self.arena.node(cube >> 1).hi;
            self.exists_rec(f, next)?
        } else {
            let c = f & 1;
            let n = self.arena.node(f >> 1);
            let (f0, f1) = (n.lo ^ c, n.hi ^ c);
            if flevel == clevel {
                let next = self.arena.node(cube >> 1).hi;
                let lo = self.exists_rec(f0, next)?;
                if lo == E_TRUE {
                    E_TRUE
                } else {
                    let hi = self.exists_rec(f1, next)?;
                    self.and_rec(lo ^ 1, hi ^ 1)? ^ 1
                }
            } else {
                let lo = self.exists_rec(f0, cube)?;
                let hi = self.exists_rec(f1, cube)?;
                self.mk(n.var, lo, hi)
            }
        };
        self.counters.evictions += self.quant_cache.insert(f, cube, 0, r);
        Ok(r)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Evaluates `f` under a total assignment indexed by variable.
    ///
    /// Variables beyond `assignment.len()` evaluate as `false`.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        let mut edge = f.0;
        let mut negated = false;
        loop {
            negated ^= edge & 1 == 1;
            let idx = edge >> 1;
            if idx == 0 {
                return !negated;
            }
            let n = self.arena.node(idx);
            let v = assignment.get(n.var as usize).copied().unwrap_or(false);
            edge = if v { n.hi } else { n.lo };
        }
    }

    /// Checks `f → g` as a decision procedure (no new nodes beyond the
    /// intermediate conjunction).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn implies_check(&mut self, f: Bdd, g: Bdd) -> Result<bool, BddError> {
        Ok(self.and_rec(f.0, g.0 ^ 1)? == E_FALSE)
    }

    /// Number of satisfying assignments of `f` over variables `0..num_vars`.
    ///
    /// Returned as `f64` to stay robust for wide variable scopes. The
    /// computation is a density recursion (`p(node) = (p(lo)+p(hi))/2`),
    /// which is independent of the variable order.
    pub fn sat_count(&self, f: Bdd, num_vars: u32) -> f64 {
        fn density(m: &BddManager, idx: u32, memo: &mut HashMap<u32, f64>) -> f64 {
            if idx == 0 {
                return 1.0;
            }
            if let Some(&p) = memo.get(&idx) {
                return p;
            }
            let n = m.arena.node(idx);
            let lo = density(m, n.lo >> 1, memo);
            let lo = if n.lo & 1 == 1 { 1.0 - lo } else { lo };
            let hi = density(m, n.hi >> 1, memo);
            let hi = if n.hi & 1 == 1 { 1.0 - hi } else { hi };
            let p = 0.5 * (lo + hi);
            memo.insert(idx, p);
            p
        }
        let mut memo = HashMap::new();
        let p = density(self, f.0 >> 1, &mut memo);
        let p = if f.0 & 1 == 1 { 1.0 - p } else { p };
        p * 2f64.powi(num_vars as i32)
    }

    /// Clears operation caches (unique table and nodes are kept).
    ///
    /// Useful between large independent computations to bound memory.
    /// Hit/miss [`counters`](BddManager::counters) are cumulative and are
    /// *not* reset — use [`reset_counters`](BddManager::reset_counters).
    pub fn clear_caches(&mut self) {
        self.counters.evictions +=
            self.apply_cache.clear() + self.ite_cache.clear() + self.quant_cache.clear();
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    /// Pins `f` (and everything it reaches) as a garbage-collection root.
    /// Protection is refcounted: `n` protects require `n` unprotects.
    pub fn protect(&mut self, f: Bdd) {
        let idx = f.0 >> 1;
        if idx != 0 {
            *self.protected.entry(idx).or_insert(0) += 1;
        }
    }

    /// Releases one protection of `f` (no-op if `f` is not protected).
    pub fn unprotect(&mut self, f: Bdd) {
        let idx = f.0 >> 1;
        if let Some(count) = self.protected.get_mut(&idx) {
            *count -= 1;
            if *count == 0 {
                self.protected.remove(&idx);
            }
        }
    }

    /// Enables automatic collection through
    /// [`maybe_gc`](BddManager::maybe_gc) once the live node count exceeds
    /// `threshold`; `None` disables it (the default). After each
    /// collection the threshold adapts to `max(threshold, 2 × live)`.
    pub fn set_gc_threshold(&mut self, threshold: Option<usize>) {
        self.gc_threshold = threshold;
        self.gc_initial_threshold = threshold.unwrap_or(0);
    }

    /// Enables automatic reordering through
    /// [`maybe_reorder`](BddManager::maybe_reorder) once the live node
    /// count exceeds `threshold`; `None` disables it (the default). After
    /// each pass the threshold adapts to `max(threshold, 4 × live)`.
    pub fn set_reorder_threshold(&mut self, threshold: Option<usize>) {
        self.reorder_threshold = threshold;
        self.reorder_initial_threshold = threshold.unwrap_or(0);
    }

    /// Runs mark-and-sweep garbage collection now and returns the number
    /// of nodes freed. Live are: the terminal, everything reachable from
    /// `roots`, and everything reachable from the
    /// [`protect`](BddManager::protect)ed set. Operation caches are
    /// invalidated; surviving nodes keep their indices, so every handle
    /// rooted in the live set stays valid.
    ///
    /// # Errors
    ///
    /// Whatever the installed [event hook](BddManager::set_event_hook)
    /// returns; the diagram is untouched in that case.
    pub fn gc(&mut self, roots: &[Bdd]) -> Result<usize, BddError> {
        self.fire_event(BddEvent::Gc)?;
        Ok(self.collect(roots))
    }

    /// Collects when garbage collection is enabled and the live node count
    /// exceeds the adaptive threshold; returns whether it ran.
    ///
    /// # Errors
    ///
    /// Whatever the installed [event hook](BddManager::set_event_hook)
    /// returns.
    pub fn maybe_gc(&mut self, roots: &[Bdd]) -> Result<bool, BddError> {
        match self.gc_threshold {
            Some(t) if self.arena.live() > t => {
                self.gc(roots)?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn collect(&mut self, roots: &[Bdd]) -> usize {
        let freed = self.sweep(roots);
        self.counters.gc_runs += 1;
        self.counters.gc_freed_nodes += freed as u64;
        if self.gc_threshold.is_some() {
            self.gc_threshold = Some((self.arena.live() * 2).max(self.gc_initial_threshold));
        }
        freed
    }

    /// Mark-and-sweep without counter or threshold side effects; shared
    /// between [`gc`](BddManager::gc) and the pre-sift cleanup in
    /// [`reorder`](BddManager::reorder).
    pub(crate) fn sweep(&mut self, roots: &[Bdd]) -> usize {
        let mut marked = vec![false; self.arena.capacity()];
        marked[0] = true;
        let mut stack: Vec<u32> = roots.iter().map(|f| f.0 >> 1).collect();
        stack.extend(self.protected.keys().copied());
        while let Some(idx) = stack.pop() {
            if marked[idx as usize] {
                continue;
            }
            marked[idx as usize] = true;
            let n = self.arena.node(idx);
            stack.push(n.lo >> 1);
            stack.push(n.hi >> 1);
        }
        let dead: Vec<u32> = self
            .arena
            .live_indices()
            .filter(|&idx| !marked[idx as usize])
            .collect();
        let freed = dead.len();
        for idx in dead {
            self.arena.release(idx);
        }
        self.unique.rebuild(&self.arena);
        // Cached results may reference freed nodes; drop every generation.
        self.counters.evictions +=
            self.apply_cache.clear() + self.ite_cache.clear() + self.quant_cache.clear();
        freed
    }

    // ------------------------------------------------------------------
    // Instrumentation
    // ------------------------------------------------------------------

    /// Cumulative operation-cache hit/miss counters.
    #[inline]
    pub fn counters(&self) -> BddCounters {
        BddCounters {
            unique_resizes: self.unique.resizes() - self.resizes_offset,
            ..self.counters
        }
    }

    /// Resets the hit/miss counters to zero (caches are untouched).
    pub fn reset_counters(&mut self) {
        self.counters = BddCounters::default();
        self.resizes_offset = self.unique.resizes();
    }

    /// High-water mark of the live node count (the terminal included).
    #[inline]
    pub fn peak_num_nodes(&self) -> usize {
        self.arena.peak()
    }

    /// Number of entries in the unique table (the terminal excluded).
    #[inline]
    pub fn unique_table_len(&self) -> usize {
        self.unique.len()
    }

    /// Current entry counts of each operation cache.
    pub fn op_cache_sizes(&self) -> OpCacheSizes {
        OpCacheSizes {
            apply: self.apply_cache.len(),
            ite: self.ite_cache.len(),
            not: 0,
            quant: self.quant_cache.len(),
        }
    }

    /// Live node count per variable: index `v` holds the number of live
    /// nodes labelled with variable `v` (the terminal excluded). The
    /// vector has [`num_vars`](BddManager::num_vars) entries.
    pub fn nodes_per_level(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.num_vars as usize];
        for idx in self.arena.live_indices() {
            levels[self.arena.var(idx) as usize] += 1;
        }
        levels
    }

    /// The current variable order, top level first. Identity until the
    /// first [`reorder`](BddManager::reorder).
    pub fn current_order(&self) -> Vec<u32> {
        self.level2var.clone()
    }

    /// Functional composition `f[var := g]`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn compose(&mut self, f: Bdd, var: u32, g: Bdd) -> Result<Bdd, BddError> {
        // f[var := g] = ite(g, f|var=1, f|var=0)
        let hi = self.restrict(f, var, true)?;
        let lo = self.restrict(f, var, false)?;
        self.ite(g, hi, lo)
    }

    /// The set of variables `f` depends on, in ascending order.
    pub fn support(&self, f: Bdd) -> Vec<u32> {
        let mut vars = std::collections::BTreeSet::new();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0 >> 1];
        while let Some(idx) = stack.pop() {
            if idx == 0 || !seen.insert(idx) {
                continue;
            }
            let node = self.arena.node(idx);
            vars.insert(node.var);
            stack.push(node.lo >> 1);
            stack.push(node.hi >> 1);
        }
        vars.into_iter().collect()
    }

    /// Number of distinct nodes in the DAG rooted at `f` (the terminal
    /// excluded). A function and its complement share every node.
    pub fn dag_size(&self, f: Bdd) -> usize {
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0 >> 1];
        while let Some(idx) = stack.pop() {
            if idx == 0 || !seen.insert(idx) {
                continue;
            }
            let node = self.arena.node(idx);
            stack.push(node.lo >> 1);
            stack.push(node.hi >> 1);
        }
        seen.len()
    }

    /// Renders `f` in Graphviz dot format (solid = high edge, dashed =
    /// low edge, `odot` arrowhead = complemented edge).
    pub fn to_dot(&self, f: Bdd, name: &str) -> String {
        use std::fmt::Write;
        let mut out = format!("digraph \"{name}\" {{\n");
        out.push_str("  n0 [shape=box,label=\"1\"];\n");
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f.0 >> 1];
        while let Some(idx) = stack.pop() {
            if idx == 0 || !seen.insert(idx) {
                continue;
            }
            let node = self.arena.node(idx);
            let _ = writeln!(out, "  n{idx} [label=\"x{}\"];", node.var);
            let lo_tag = if node.lo & 1 == 1 {
                ",arrowhead=odot"
            } else {
                ""
            };
            let _ = writeln!(out, "  n{idx} -> n{} [style=dashed{lo_tag}];", node.lo >> 1);
            let _ = writeln!(out, "  n{idx} -> n{};", node.hi >> 1);
            stack.push(node.lo >> 1);
            stack.push(node.hi >> 1);
        }
        let root_tag = if f.0 & 1 == 1 { ",arrowhead=odot" } else { "" };
        let _ = writeln!(out, "  root -> n{} [style=bold{root_tag}];", f.0 >> 1);
        out.push_str("}\n");
        out
    }

    // Internal accessors shared with the reorder module.
    pub(crate) fn arena(&self) -> &Arena {
        &self.arena
    }
    pub(crate) fn split_for_swap(
        &mut self,
    ) -> (&mut Arena, &mut UniqueTable, &mut Vec<u32>, &mut Vec<u32>) {
        (
            &mut self.arena,
            &mut self.unique,
            &mut self.var2level,
            &mut self.level2var,
        )
    }
    pub(crate) fn bump_reorder_counters(&mut self, swaps: u64) {
        self.counters.reorders += 1;
        self.counters.reorder_swaps += swaps;
    }
    pub(crate) fn var_level(&self, var: u32) -> u32 {
        self.var2level[var as usize]
    }
    pub(crate) fn var_at_level(&self, level: usize) -> u32 {
        self.level2var[level]
    }
    pub(crate) fn protected_roots(&self) -> Vec<u32> {
        let mut roots: Vec<u32> = self.protected.keys().copied().collect();
        roots.sort_unstable();
        roots
    }
}

// The rectification scheduler moves a manager into each worker thread, so
// `Send` is load-bearing: keep the store free of `Rc`/raw-pointer state
// (the event hook is constrained to `Send` closures).
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<BddManager>();
    assert_send_sync::<Bdd>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> BddManager {
        BddManager::new()
    }

    #[test]
    fn repeated_apply_hits_the_cache() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let first = m.and(a, b).unwrap();
        let before = m.counters();
        assert_eq!(before.apply_hits, 0);
        assert!(before.apply_misses >= 1);
        let second = m.and(a, b).unwrap();
        assert_eq!(first, second);
        let after = m.counters();
        assert!(after.apply_hits > before.apply_hits);
        assert_eq!(after.apply_misses, before.apply_misses);

        // Negation is a tag flip: no cache traffic, no allocation.
        let nodes_before = m.num_nodes();
        let n = m.not(first).unwrap();
        assert_eq!(m.not(first).unwrap(), n);
        assert_eq!(m.num_nodes(), nodes_before);
        assert_eq!(m.counters().not_hits, 0);
        assert_eq!(m.counters().not_misses, 0);

        m.reset_counters();
        assert_eq!(m.counters(), BddCounters::default());
    }

    #[test]
    fn complement_pairs_share_one_node() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b).unwrap();
        let nf = m.not(f).unwrap();
        assert_ne!(f, nf);
        assert_eq!(m.dag_size(f), m.dag_size(nf));
        let back = m.not(nf).unwrap();
        assert_eq!(back, f, "double negation is the identity");
        // The negated variable shares the variable's node.
        let nodes = m.num_nodes();
        let na = m.nvar(0);
        assert_eq!(m.num_nodes(), nodes);
        let na2 = m.not(a).unwrap();
        assert_eq!(na, na2);
    }

    #[test]
    fn peak_nodes_and_unique_table_track_growth() {
        let mut m = mgr();
        assert_eq!(m.peak_num_nodes(), 1); // the shared terminal
        assert_eq!(m.unique_table_len(), 0);
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.xor(a, b).unwrap();
        assert_eq!(m.peak_num_nodes(), m.num_nodes());
        assert_eq!(m.unique_table_len(), m.num_nodes() - 1);
        let peak = m.peak_num_nodes();
        m.clear_caches();
        assert_eq!(m.peak_num_nodes(), peak);
    }

    #[test]
    fn cache_clears_count_evictions_and_sizes_report() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let _ = m.xor(a, b).unwrap();
        let sizes = m.op_cache_sizes();
        assert!(sizes.apply > 0, "xor populates the apply cache");
        assert_eq!(
            sizes.total(),
            sizes.apply + sizes.ite + sizes.not + sizes.quant
        );
        let expected = sizes.total() as u64;
        m.clear_caches();
        assert_eq!(m.counters().evictions, expected);
        assert_eq!(m.op_cache_sizes().total(), 0);
        // A clear of empty caches evicts nothing further.
        m.clear_caches();
        assert_eq!(m.counters().evictions, expected);
    }

    #[test]
    fn unique_resizes_are_counted() {
        let mut m = mgr();
        // Build enough distinct nodes to force the unique table through
        // several capacity doublings (initial capacity is 1024 slots).
        let mut funcs = Vec::new();
        for i in 0..40u32 {
            for j in (i + 1)..40u32 {
                let a = m.var(i);
                let b = m.var(j);
                let f = m.and(a, b).unwrap();
                funcs.push(f);
            }
        }
        let mut acc = m.zero();
        for f in funcs {
            acc = m.xor(acc, f).unwrap();
        }
        assert!(
            m.counters().unique_resizes > 0,
            "the unique table must grow: {} entries",
            m.unique_table_len()
        );
        assert!(m.counters().unique_resizes < m.unique_table_len() as u64);
    }

    #[test]
    fn nodes_per_level_counts_every_nonterminal() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b).unwrap();
        let _ = m.or(ab, c).unwrap();
        let levels = m.nodes_per_level();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels.iter().sum::<usize>(), m.num_nodes() - 1);
        assert!(levels.iter().all(|&c| c > 0));
    }

    #[test]
    fn counters_fold_with_add_assign() {
        let mut total = BddCounters::default();
        total += BddCounters {
            apply_hits: 1,
            apply_misses: 2,
            ..BddCounters::default()
        };
        total += BddCounters {
            apply_hits: 10,
            quant_misses: 3,
            gc_runs: 2,
            gc_freed_nodes: 7,
            reorders: 1,
            reorder_swaps: 5,
            ..BddCounters::default()
        };
        assert_eq!(total.apply_hits, 11);
        assert_eq!(total.apply_misses, 2);
        assert_eq!(total.quant_misses, 3);
        assert_eq!(total.gc_runs, 2);
        assert_eq!(total.gc_freed_nodes, 7);
        assert_eq!(total.reorders, 1);
        assert_eq!(total.reorder_swaps, 5);
        assert_eq!(total.total_hits(), 11);
        assert_eq!(total.total_misses(), 5);
    }

    #[test]
    fn terminals() {
        let m = mgr();
        assert!(m.is_const(m.zero()));
        assert!(m.is_const(m.one()));
        assert_ne!(m.zero(), m.one());
    }

    #[test]
    fn var_is_canonical() {
        let mut m = mgr();
        let a1 = m.var(0);
        let a2 = m.var(0);
        assert_eq!(a1, a2);
    }

    #[test]
    fn connective_truth_tables() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let and = m.and(a, b).unwrap();
        let or = m.or(a, b).unwrap();
        let xor = m.xor(a, b).unwrap();
        let iff = m.iff(a, b).unwrap();
        let imp = m.implies(a, b).unwrap();
        for i in 0..4u8 {
            let assign = [(i & 1) == 1, (i & 2) == 2];
            let (x, y) = (assign[0], assign[1]);
            assert_eq!(m.eval(and, &assign), x && y);
            assert_eq!(m.eval(or, &assign), x || y);
            assert_eq!(m.eval(xor, &assign), x ^ y);
            assert_eq!(m.eval(iff, &assign), x == y);
            assert_eq!(m.eval(imp, &assign), !x || y);
        }
    }

    #[test]
    fn de_morgan_canonical() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let and = m.and(a, b).unwrap();
        let lhs = m.not(and).unwrap();
        let na = m.not(a).unwrap();
        let nb = m.not(b).unwrap();
        let rhs = m.or(na, nb).unwrap();
        assert_eq!(lhs, rhs, "canonicity: equal functions share a handle");
    }

    #[test]
    fn ite_matches_formula() {
        let mut m = mgr();
        let i = m.var(0);
        let t = m.var(1);
        let e = m.var(2);
        let ite = m.ite(i, t, e).unwrap();
        let it = m.and(i, t).unwrap();
        let ni = m.not(i).unwrap();
        let nie = m.and(ni, e).unwrap();
        let formula = m.or(it, nie).unwrap();
        assert_eq!(ite, formula);
    }

    #[test]
    fn restrict_cofactors() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b).unwrap();
        let f_a1 = m.restrict(f, 0, true).unwrap();
        let nb = m.not(b).unwrap();
        assert_eq!(f_a1, nb);
        let f_a0 = m.restrict(f, 0, false).unwrap();
        assert_eq!(f_a0, b);
    }

    #[test]
    fn quantification() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b).unwrap();
        let cube_a = m.var_cube(&[0]).unwrap();
        let ex = m.exists(f, cube_a).unwrap();
        assert_eq!(ex, b); // ∃a. a∧b  =  b
        let fa = m.forall(f, cube_a).unwrap();
        assert_eq!(fa, m.zero()); // ∀a. a∧b  =  0
        let g = m.or(a, b).unwrap();
        let fa_or = m.forall(g, cube_a).unwrap();
        assert_eq!(fa_or, b); // ∀a. a∨b  =  b
    }

    #[test]
    fn quantify_multiple_vars() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let cube = m.var_cube(&[0, 1]).unwrap();
        let ex = m.exists(f, cube).unwrap();
        assert_eq!(ex, m.one()); // some a,b makes it true regardless of c
        let fa = m.forall(f, cube).unwrap();
        assert_eq!(fa, c); // only c guarantees truth
    }

    #[test]
    fn sat_count_basic() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b).unwrap();
        assert_eq!(m.sat_count(f, 2), 2.0);
        assert_eq!(m.sat_count(f, 3), 4.0); // free third variable doubles
        assert_eq!(m.sat_count(m.one(), 4), 16.0);
        assert_eq!(m.sat_count(m.zero(), 4), 0.0);
        assert_eq!(m.sat_count(a, 2), 2.0);
        assert_eq!(m.sat_count(b, 2), 2.0); // root below var 0 scales up
    }

    #[test]
    fn node_limit_enforced() {
        let mut m = BddManager::with_node_limit(16);
        // Build functions needing many distinct nodes against a tiny budget.
        let mut r = Ok(());
        let mut acc = m.zero();
        'outer: for i in 0..20 {
            for j in (i + 1)..20 {
                let a = m.var(i);
                let b = m.var(j);
                let f = match m.and(a, b) {
                    Ok(f) => f,
                    Err(e) => {
                        r = Err(e);
                        break 'outer;
                    }
                };
                match m.xor(acc, f) {
                    Ok(g) => acc = g,
                    Err(e) => {
                        r = Err(e);
                        break 'outer;
                    }
                }
            }
        }
        assert!(matches!(r, Err(BddError::NodeLimit { .. })));
    }

    #[test]
    fn expired_deadline_fails_operations() {
        let mut m = mgr();
        m.set_deadline(Some(Instant::now()));
        let mut r = Ok(m.zero());
        for i in 0..64 {
            let v = m.var(i);
            let f = r.unwrap_or(m.zero());
            r = m.xor(f, v);
            if r.is_err() {
                break;
            }
        }
        assert_eq!(r, Err(BddError::DeadlineExceeded));
        // Clearing the deadline restores normal operation.
        m.set_deadline(None);
        let a = m.var(0);
        let b = m.var(1);
        assert!(m.and(a, b).is_ok());
    }

    #[test]
    fn interrupt_flag_fails_operations() {
        let mut m = mgr();
        let flag = Arc::new(AtomicBool::new(true));
        m.set_interrupt(Some(Arc::clone(&flag)));
        let mut r = Ok(m.zero());
        for i in 0..64 {
            let v = m.var(i);
            let f = r.unwrap_or(m.zero());
            r = m.xor(f, v);
            if r.is_err() {
                break;
            }
        }
        assert_eq!(r, Err(BddError::Cancelled));
        flag.store(false, Ordering::Relaxed);
        let a = m.var(0);
        let b = m.var(1);
        assert!(m.and(a, b).is_ok());
    }

    #[test]
    fn generous_deadline_does_not_interfere() {
        let mut m = mgr();
        m.set_deadline(Some(Instant::now() + std::time::Duration::from_secs(3600)));
        m.set_interrupt(Some(Arc::new(AtomicBool::new(false))));
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b).unwrap();
        assert_eq!(m.sat_count(f, 2), 2.0);
    }

    #[test]
    fn implies_check_decides() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let and = m.and(a, b).unwrap();
        let or = m.or(a, b).unwrap();
        assert!(m.implies_check(and, or).unwrap());
        assert!(!m.implies_check(or, and).unwrap());
    }

    #[test]
    fn eval_with_short_assignment_defaults_false() {
        let mut m = mgr();
        let v5 = m.var(5);
        assert!(!m.eval(v5, &[true, true]));
    }

    #[test]
    fn compose_substitutes_function() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.xor(a, b).unwrap();
        let g = m.and(b, c).unwrap();
        let h = m.compose(f, 0, g).unwrap();
        // h = (b ∧ c) ⊕ b
        for j in 0..8u8 {
            let assign = [(j & 1) == 1, (j & 2) == 2, (j & 4) == 4];
            let expect = (assign[1] && assign[2]) ^ assign[1];
            assert_eq!(m.eval(h, &assign), expect, "{j}");
        }
    }

    #[test]
    fn support_lists_dependent_vars() {
        let mut m = mgr();
        let a = m.var(0);
        let c = m.var(5);
        let f = m.and(a, c).unwrap();
        assert_eq!(m.support(f), vec![0, 5]);
        assert!(m.support(m.one()).is_empty());
        // xor(a, a) collapses: support empty.
        let z = m.xor(a, a).unwrap();
        assert!(m.support(z).is_empty());
    }

    #[test]
    fn dag_size_counts_distinct_nodes() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b).unwrap();
        // With complement edges, xor needs just two nodes: the root and
        // one shared child for b/¬b.
        assert_eq!(m.dag_size(f), 2);
        assert_eq!(m.dag_size(m.zero()), 0);
    }

    #[test]
    fn dot_output_mentions_nodes() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b).unwrap();
        let dot = m.to_dot(f, "and2");
        assert!(dot.contains("digraph"));
        assert!(dot.contains("x0"));
        assert!(dot.contains("x1"));
        assert!(dot.contains("style=dashed"));
    }

    #[test]
    fn parity_chain_is_linear() {
        // Parity has a linear-size BDD under any order; with complement
        // edges it is one node per level.
        let mut m = mgr();
        let mut f = m.zero();
        for i in 0..64 {
            let v = m.var(i);
            f = m.xor(f, v).unwrap();
        }
        assert_eq!(m.dag_size(f), 64);
        assert_eq!(m.sat_count(f, 64), 2f64.powi(63));
    }

    #[test]
    fn gc_frees_dead_nodes_and_keeps_roots() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let keep = m.xor(a, b).unwrap();
        // Build garbage: a large parity accumulation we drop entirely.
        let mut junk = m.one();
        for i in 2..20 {
            let v = m.var(i);
            junk = m.xor(junk, v).unwrap();
        }
        let before = m.num_nodes();
        // Roots must name every handle we keep using: `keep`'s DAG does
        // not contain the single-variable node `a` (complement sharing),
        // so it must be listed explicitly.
        let freed = m.gc(&[keep, a, b]).unwrap();
        assert!(freed > 0);
        assert_eq!(m.num_nodes(), before - freed);
        assert_eq!(m.unique_table_len(), m.num_nodes() - 1);
        assert_eq!(m.counters().gc_runs, 1);
        assert_eq!(m.counters().gc_freed_nodes, freed as u64);
        // The kept function still works and is still canonical.
        assert!(m.eval(keep, &[true, false]));
        assert!(!m.eval(keep, &[true, true]));
        let rebuilt = m.xor(a, b).unwrap();
        assert_eq!(rebuilt, keep);
        assert!(m.peak_num_nodes() >= before);
    }

    #[test]
    fn protect_pins_nodes_across_gc() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b).unwrap();
        m.protect(f);
        let freed_protected = m.gc(&[]).unwrap();
        assert!(m.eval(f, &[true, true]));
        m.unprotect(f);
        let freed_after = m.gc(&[]).unwrap();
        assert!(
            freed_after > 0,
            "unprotected function is collected (protected pass freed {freed_protected})"
        );
        assert_eq!(m.num_nodes(), 1);
    }

    #[test]
    fn maybe_gc_respects_threshold_and_adapts() {
        let mut m = mgr();
        m.set_gc_threshold(Some(8));
        let a = m.var(0);
        let b = m.var(1);
        assert!(!m.maybe_gc(&[a, b]).unwrap(), "below threshold: no gc");
        let mut junk = m.one();
        for i in 0..32 {
            let v = m.var(i);
            junk = m.xor(junk, v).unwrap();
        }
        let keep = m.and(a, b).unwrap();
        assert!(m.maybe_gc(&[keep]).unwrap());
        assert!(m.counters().gc_runs >= 1);
        assert!(m.eval(keep, &[true, true]));
        // Disabled managers never collect.
        m.set_gc_threshold(None);
        let mut junk2 = m.one();
        for i in 0..32 {
            let v = m.var(i);
            junk2 = m.xor(junk2, v).unwrap();
        }
        let n = m.num_nodes();
        assert!(!m.maybe_gc(&[]).unwrap());
        assert_eq!(m.num_nodes(), n);
    }

    #[test]
    fn event_hook_can_abort_gc() {
        let mut m = mgr();
        let a = m.var(0);
        let b = m.var(1);
        let _f = m.and(a, b).unwrap();
        let nodes = m.num_nodes();
        m.set_event_hook(Some(Box::new(|event| {
            assert_eq!(event, BddEvent::Gc);
            Err(BddError::Cancelled)
        })));
        assert_eq!(m.gc(&[]), Err(BddError::Cancelled));
        assert_eq!(m.num_nodes(), nodes, "aborted gc must not mutate");
        m.set_event_hook(None);
        assert!(m.gc(&[]).is_ok());
    }
}
