//! Reduced ordered binary decision diagrams (ROBDDs) for syseco.
//!
//! The paper's symbolic computations — the feasible-point-set characteristic
//! function `H(t)` (§4.2), the valid-rewiring characteristic `Ξ(c)` (§4.4),
//! and the sampling-domain functions `g(z)` (§5.1) — are all carried out on
//! BDDs. This crate provides a self-contained BDD package in the spirit of
//! the paper's in-house implementation:
//!
//! * a [`BddManager`] with a unique table and memoized apply/ITE,
//! * Boolean connectives, cofactors, and `∃`/`∀` quantification over
//!   variable cubes,
//! * assignment counting ([`BddManager::sat_count`]) and satisfying-cube /
//!   **prime-cube** enumeration ([`BddManager::sat_cubes`],
//!   [`BddManager::prime_cubes`]) used to seed candidate rectification
//!   point-sets,
//! * a configurable node limit so domain computations stay
//!   resource-bounded ([`BddError::NodeLimit`]).
//!
//! Variable order is fixed at allocation time; callers allocate variables in
//! the order they want them in the diagram (syseco uses `c < t < y < z`).
//!
//! # Example
//!
//! ```
//! use eco_bdd::BddManager;
//!
//! # fn main() -> Result<(), eco_bdd::BddError> {
//! let mut m = BddManager::new();
//! let x = m.var(0);
//! let y = m.var(1);
//! let f = m.and(x, y)?;
//! let g = m.or(x, y)?;
//! assert!(m.implies_check(f, g)?);
//! assert_eq!(m.sat_count(f, 2), 1.0);
//! # Ok(())
//! # }
//! ```

mod cubes;
mod error;
mod manager;

pub use cubes::Cube;
pub use error::BddError;
pub use manager::{Bdd, BddCounters, BddManager, OpCacheSizes};
