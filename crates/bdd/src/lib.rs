//! Reduced ordered binary decision diagrams (ROBDDs) for syseco.
//!
//! The paper's symbolic computations — the feasible-point-set characteristic
//! function `H(t)` (§4.2), the valid-rewiring characteristic `Ξ(c)` (§4.4),
//! and the sampling-domain functions `g(z)` (§5.1) — are all carried out on
//! BDDs. This crate provides a self-contained BDD package in the spirit of
//! the paper's in-house implementation:
//!
//! * a [`BddManager`] storing complement-tagged edges in a dense `u32`
//!   arena with an open-addressed unique table — negation is a tag flip,
//!   a function and its complement share every node,
//! * Boolean connectives, cofactors, and `∃`/`∀` quantification over
//!   variable cubes, memoized through sized generational operation
//!   caches (direct-mapped, epoch-invalidated),
//! * assignment counting ([`BddManager::sat_count`]) and satisfying-cube /
//!   **prime-cube** enumeration ([`BddManager::sat_cubes`],
//!   [`BddManager::prime_cubes`]) used to seed candidate rectification
//!   point-sets,
//! * mark-and-sweep garbage collection over an explicit root set
//!   ([`BddManager::gc`], [`BddManager::maybe_gc`]) — surviving handles
//!   keep their indices,
//! * dynamic variable reordering by sifting ([`BddManager::reorder`],
//!   [`BddManager::maybe_reorder`]) that rewrites nodes in place so
//!   handles keep denoting the same functions,
//! * a configurable node limit so domain computations stay
//!   resource-bounded ([`BddError::NodeLimit`]), plus deadlines, a
//!   cooperative interrupt, and a pre-event hook ([`BddEvent`]) used by
//!   the fault-injection harness.
//!
//! Variables enter the order at allocation time; callers allocate them in
//! the order they want them in the diagram (syseco uses `c < t < y < z`),
//! and sifting may later permute levels without changing any semantics.
//!
//! # Example
//!
//! ```
//! use eco_bdd::BddManager;
//!
//! # fn main() -> Result<(), eco_bdd::BddError> {
//! let mut m = BddManager::new();
//! let x = m.var(0);
//! let y = m.var(1);
//! let f = m.and(x, y)?;
//! let g = m.or(x, y)?;
//! assert!(m.implies_check(f, g)?);
//! assert_eq!(m.sat_count(f, 2), 1.0);
//! # Ok(())
//! # }
//! ```

mod arena;
mod cubes;
mod error;
mod manager;
mod opcache;
mod reorder;
mod unique;

pub use cubes::Cube;
pub use error::BddError;
pub use manager::{Bdd, BddCounters, BddEvent, BddManager, EventHook, OpCacheSizes};
