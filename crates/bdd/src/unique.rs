//! Open-addressed unique table over arena node indices.
//!
//! The table stores only `u32` node indices; the `(var, lo, hi)` key of an
//! entry is read back from the arena on probe, so there is no tuple-key
//! hashing or per-entry key storage. Capacity is always a power of two and
//! probing is linear, which keeps the hot `find` loop branch-light. Slots
//! freed by reordering are tombstoned; garbage collection rebuilds the
//! whole table instead.

use crate::arena::Arena;

const EMPTY: u32 = u32::MAX;
const TOMBSTONE: u32 = u32::MAX - 1;
const INITIAL_CAPACITY: usize = 1 << 10;

/// Hash/lookup structure mapping `(var, lo, hi)` to the canonical node.
#[derive(Debug)]
pub(crate) struct UniqueTable {
    slots: Vec<u32>,
    mask: usize,
    len: usize,
    tombstones: usize,
    resizes: u64,
}

#[inline(always)]
fn hash(var: u32, lo: u32, hi: u32) -> u64 {
    // splitmix64 over the packed 96-bit key; cheap and well distributed.
    let mut z = (var as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((lo as u64) << 32 | hi as u64);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl UniqueTable {
    pub fn new() -> Self {
        UniqueTable {
            slots: vec![EMPTY; INITIAL_CAPACITY],
            mask: INITIAL_CAPACITY - 1,
            len: 0,
            tombstones: 0,
            resizes: 0,
        }
    }

    /// Number of stored nodes (terminals are never stored).
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Capacity-growth events since creation.
    #[inline]
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Looks up the canonical node for `(var, lo, hi)`.
    #[inline]
    pub fn find(&self, arena: &Arena, var: u32, lo: u32, hi: u32) -> Option<u32> {
        let mut i = hash(var, lo, hi) as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return None;
            }
            if s != TOMBSTONE {
                let n = arena.node(s);
                if n.var == var && n.lo == lo && n.hi == hi {
                    return Some(s);
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `idx` under key `(var, lo, hi)`; the key must not be present.
    pub fn insert(&mut self, arena: &Arena, idx: u32, var: u32, lo: u32, hi: u32) {
        if (self.len + self.tombstones + 1) * 4 > self.slots.len() * 3 {
            self.grow(arena);
        }
        let mut i = hash(var, lo, hi) as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY || s == TOMBSTONE {
                if s == TOMBSTONE {
                    self.tombstones -= 1;
                }
                self.slots[i] = idx;
                self.len += 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes the entry for node `idx` (keyed by its current arena
    /// contents), leaving a tombstone. No-op if absent.
    pub fn remove(&mut self, arena: &Arena, idx: u32) {
        let n = arena.node(idx);
        let mut i = hash(n.var, n.lo, n.hi) as usize & self.mask;
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return;
            }
            if s == idx {
                self.slots[i] = TOMBSTONE;
                self.tombstones += 1;
                self.len -= 1;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self, arena: &Arena) {
        let new_cap = self.slots.len() * 2;
        self.resizes += 1;
        self.rehash(arena, new_cap);
    }

    /// Rebuilds the table from the arena's live nodes, clearing tombstones.
    /// Used after garbage collection; does not count as a resize.
    pub fn rebuild(&mut self, arena: &Arena) {
        let mut cap = self.slots.len();
        // Shrink toward the live set, but never below the initial capacity.
        while cap > INITIAL_CAPACITY && arena.live() * 4 < cap {
            cap /= 2;
        }
        self.slots.clear();
        self.slots.resize(cap, EMPTY);
        self.mask = cap - 1;
        self.len = 0;
        self.tombstones = 0;
        for idx in arena.live_indices() {
            let n = arena.node(idx);
            let mut i = hash(n.var, n.lo, n.hi) as usize & self.mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = idx;
            self.len += 1;
        }
    }

    fn rehash(&mut self, arena: &Arena, new_cap: usize) {
        let old: Vec<u32> = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        self.mask = new_cap - 1;
        self.tombstones = 0;
        for s in old {
            if s == EMPTY || s == TOMBSTONE {
                continue;
            }
            let n = arena.node(s);
            let mut i = hash(n.var, n.lo, n.hi) as usize & self.mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & self.mask;
            }
            self.slots[i] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_find_remove_roundtrip() {
        let mut arena = Arena::new();
        let mut t = UniqueTable::new();
        let idx = arena.alloc(3, 1, 0);
        assert_eq!(t.find(&arena, 3, 1, 0), None);
        t.insert(&arena, idx, 3, 1, 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.find(&arena, 3, 1, 0), Some(idx));
        t.remove(&arena, idx);
        assert_eq!(t.len(), 0);
        assert_eq!(t.find(&arena, 3, 1, 0), None);
    }

    #[test]
    fn growth_counts_resizes_and_keeps_entries() {
        let mut arena = Arena::new();
        let mut t = UniqueTable::new();
        let mut ids = Vec::new();
        for v in 0..2000u32 {
            let idx = arena.alloc(v, 1, 0);
            t.insert(&arena, idx, v, 1, 0);
            ids.push((idx, v));
        }
        assert!(t.resizes() >= 1);
        assert_eq!(t.len(), 2000);
        for (idx, v) in ids {
            assert_eq!(t.find(&arena, v, 1, 0), Some(idx));
        }
    }

    #[test]
    fn rebuild_drops_dead_nodes() {
        let mut arena = Arena::new();
        let mut t = UniqueTable::new();
        let a = arena.alloc(0, 1, 0);
        let b = arena.alloc(1, 1, 0);
        t.insert(&arena, a, 0, 1, 0);
        t.insert(&arena, b, 1, 1, 0);
        arena.release(a);
        t.rebuild(&arena);
        assert_eq!(t.len(), 1);
        assert_eq!(t.find(&arena, 1, 1, 0), Some(b));
    }
}
