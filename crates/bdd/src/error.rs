//! Error type for BDD operations.

use std::error::Error;
use std::fmt;

/// Errors produced by BDD construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// The manager's node limit was exceeded; the computation should fall
    /// back to a smaller sampling domain or a SAT-based path.
    NodeLimit {
        /// The configured limit that was hit.
        limit: usize,
    },
    /// A variable index outside the allocated range was used.
    UnknownVar {
        /// The offending variable index.
        var: u32,
    },
    /// The manager's wall-clock deadline passed mid-computation.
    DeadlineExceeded,
    /// The manager's cooperative interrupt flag was set mid-computation.
    Cancelled,
    /// An event hook vetoed a garbage collection or reorder pass. Emitted
    /// only through hooks installed with `set_event_hook`; the
    /// fault-injection harness uses it to abort at deterministic points.
    Aborted,
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit { limit } => {
                write!(f, "bdd node limit of {limit} nodes exceeded")
            }
            BddError::UnknownVar { var } => write!(f, "unknown bdd variable {var}"),
            BddError::DeadlineExceeded => write!(f, "bdd deadline exceeded"),
            BddError::Cancelled => write!(f, "bdd computation cancelled"),
            BddError::Aborted => write!(f, "bdd event aborted by hook"),
        }
    }
}

impl Error for BddError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        assert!(!BddError::NodeLimit { limit: 10 }.to_string().is_empty());
        assert!(!BddError::UnknownVar { var: 3 }.to_string().is_empty());
        assert!(!BddError::DeadlineExceeded.to_string().is_empty());
        assert!(!BddError::Cancelled.to_string().is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BddError>();
    }
}
