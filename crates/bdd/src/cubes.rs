//! Satisfying-cube and prime-cube enumeration.
//!
//! The rectification flow enumerates **prime cubes** of the feasible
//! point-set characteristic `H(t)` (paper §4.2) and uses them as seeds for
//! explicit candidate lists. A cube here is a partial assignment; it is
//! *prime* relative to `f` when dropping any literal voids `cube → f`.

use crate::{Bdd, BddError, BddManager};

/// A cube: a conjunction of literals, stored as `(variable, phase)` pairs
/// sorted by variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Cube {
    literals: Vec<(u32, bool)>,
}

impl Cube {
    /// Creates a cube from literal pairs; duplicates of the same phase are
    /// merged, opposite phases make the cube unsatisfiable (empty set is
    /// represented by the caller checking [`Cube::is_contradictory`]).
    pub fn new(mut literals: Vec<(u32, bool)>) -> Self {
        literals.sort_unstable();
        literals.dedup();
        Cube { literals }
    }

    /// The literals of this cube, sorted by variable.
    pub fn literals(&self) -> &[(u32, bool)] {
        &self.literals
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// Whether the cube has no literals (the universal cube).
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// Whether the cube contains both phases of some variable.
    pub fn is_contradictory(&self) -> bool {
        self.literals
            .windows(2)
            .any(|w| w[0].0 == w[1].0 && w[0].1 != w[1].1)
    }

    /// The phase of `var` in this cube, if present.
    pub fn phase(&self, var: u32) -> Option<bool> {
        self.literals
            .iter()
            .find(|&&(v, _)| v == var)
            .map(|&(_, p)| p)
    }

    /// Builds the BDD of this cube.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn to_bdd(&self, m: &mut BddManager) -> Result<Bdd, BddError> {
        let mut f = m.one();
        for &(v, phase) in self.literals.iter().rev() {
            let lit = if phase { m.var(v) } else { m.nvar(v) };
            f = m.and(lit, f)?;
        }
        Ok(f)
    }
}

impl FromIterator<(u32, bool)> for Cube {
    fn from_iter<I: IntoIterator<Item = (u32, bool)>>(iter: I) -> Self {
        Cube::new(iter.into_iter().collect())
    }
}

impl BddManager {
    /// Returns one satisfying cube of `f`, or `None` when `f` is
    /// unsatisfiable. The cube mentions only the variables on the chosen
    /// path, so it may be partial.
    pub fn any_sat(&self, f: Bdd) -> Option<Cube> {
        if f == self.zero() {
            return None;
        }
        let mut lits = Vec::new();
        let mut cur = f;
        while !self.is_const(cur) {
            let v = self.root_var(cur).expect("non-terminal has a var");
            let hi = self.high(cur);
            if hi != self.zero() {
                lits.push((v, true));
                cur = hi;
            } else {
                lits.push((v, false));
                cur = self.low(cur);
            }
        }
        Some(Cube::new(lits))
    }

    /// Enumerates the path cubes of `f`: a disjoint cover of its on-set.
    ///
    /// At most `limit` cubes are returned (the enumeration is cut off, not
    /// an error, so callers can seed candidate lists from huge functions).
    pub fn sat_cubes(&self, f: Bdd, limit: usize) -> Vec<Cube> {
        let mut out = Vec::new();
        let mut path: Vec<(u32, bool)> = Vec::new();
        self.sat_cubes_rec(f, &mut path, &mut out, limit);
        out
    }

    fn sat_cubes_rec(
        &self,
        f: Bdd,
        path: &mut Vec<(u32, bool)>,
        out: &mut Vec<Cube>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        if f == self.zero() {
            return;
        }
        if f == self.one() {
            out.push(Cube::new(path.clone()));
            return;
        }
        let v = self.root_var(f).expect("non-terminal");
        path.push((v, false));
        self.sat_cubes_rec(self.low(f), path, out, limit);
        path.pop();
        path.push((v, true));
        self.sat_cubes_rec(self.high(f), path, out, limit);
        path.pop();
    }

    /// Expands `cube` (assumed to imply `f`) to a prime cube of `f` by
    /// greedily dropping literals while containment holds.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn expand_to_prime(&mut self, f: Bdd, cube: &Cube) -> Result<Cube, BddError> {
        let mut lits: Vec<(u32, bool)> = cube.literals().to_vec();
        let mut i = 0;
        while i < lits.len() {
            let mut trial = lits.clone();
            trial.remove(i);
            let trial_cube = Cube::new(trial.clone());
            let cb = trial_cube.to_bdd(self)?;
            if self.implies_check(cb, f)? {
                lits = trial;
            } else {
                i += 1;
            }
        }
        Ok(Cube::new(lits))
    }

    /// Enumerates up to `limit` distinct prime cubes of `f`, seeded from its
    /// path cubes.
    ///
    /// This is sound (every returned cube is a prime implicant of `f`) and,
    /// because every path cube expands to some prime, the union of returned
    /// primes covers `f` when the limit is not hit. It may return fewer than
    /// all primes of `f` — exactly the "seeds" usage of paper §4.2.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn prime_cubes(&mut self, f: Bdd, limit: usize) -> Result<Vec<Cube>, BddError> {
        let seeds = self.sat_cubes(f, limit.saturating_mul(4).max(16));
        let mut out: Vec<Cube> = Vec::new();
        for seed in seeds {
            if out.len() >= limit {
                break;
            }
            let prime = self.expand_to_prime(f, &seed)?;
            if !out.contains(&prime) {
                out.push(prime);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_construction() {
        let c = Cube::new(vec![(2, true), (0, false), (2, true)]);
        assert_eq!(c.literals(), &[(0, false), (2, true)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(!c.is_contradictory());
        assert_eq!(c.phase(2), Some(true));
        assert_eq!(c.phase(1), None);
        let bad: Cube = [(1, true), (1, false)].into_iter().collect();
        assert!(bad.is_contradictory());
    }

    #[test]
    fn any_sat_finds_model() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let nb = m.not(b).unwrap();
        let f = m.and(a, nb).unwrap();
        let cube = m.any_sat(f).unwrap();
        assert_eq!(cube.phase(0), Some(true));
        assert_eq!(cube.phase(1), Some(false));
        assert!(m.any_sat(m.zero()).is_none());
        // Satisfiable path must actually satisfy f.
        let cb = cube.to_bdd(&mut m).unwrap();
        assert!(m.implies_check(cb, f).unwrap());
    }

    #[test]
    fn sat_cubes_cover_on_set() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b).unwrap();
        let f = m.or(ab, c).unwrap();
        let cubes = m.sat_cubes(f, 100);
        // Union of cubes equals f.
        let mut cover = m.zero();
        for cube in &cubes {
            let cb = cube.to_bdd(&mut m).unwrap();
            cover = m.or(cover, cb).unwrap();
        }
        assert_eq!(cover, f);
    }

    #[test]
    fn sat_cubes_limit_respected() {
        let mut m = BddManager::new();
        let mut f = m.zero();
        for i in 0..8 {
            let v = m.var(i);
            f = m.xor(f, v).unwrap();
        }
        let cubes = m.sat_cubes(f, 5);
        assert_eq!(cubes.len(), 5);
    }

    #[test]
    fn prime_expansion_drops_redundant_literals() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.or(a, b).unwrap();
        // (a=1, b=1) implies f but only one literal is needed.
        let seed: Cube = [(0, true), (1, true)].into_iter().collect();
        let prime = m.expand_to_prime(f, &seed).unwrap();
        assert_eq!(prime.len(), 1);
        let cb = prime.to_bdd(&mut m).unwrap();
        assert!(m.implies_check(cb, f).unwrap());
    }

    #[test]
    fn prime_cubes_of_or_are_single_literals() {
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.or(a, b).unwrap();
        let primes = m.prime_cubes(f, 10).unwrap();
        assert!(!primes.is_empty());
        for p in &primes {
            assert_eq!(p.len(), 1, "primes of a∨b are literals: {p:?}");
            let cb = p.to_bdd(&mut m).unwrap();
            assert!(m.implies_check(cb, f).unwrap());
        }
    }

    #[test]
    fn primes_are_prime() {
        // For a random-ish function, verify primality: dropping any literal
        // breaks containment.
        let mut m = BddManager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let nb = m.not(b).unwrap();
        let t1 = m.and(a, nb).unwrap();
        let t2 = m.and(b, c).unwrap();
        let f = m.or(t1, t2).unwrap();
        for p in m.prime_cubes(f, 20).unwrap() {
            for i in 0..p.len() {
                let mut lits = p.literals().to_vec();
                lits.remove(i);
                let weaker = Cube::new(lits);
                let wb = weaker.to_bdd(&mut m).unwrap();
                assert!(
                    !m.implies_check(wb, f).unwrap(),
                    "dropping literal {i} of {p:?} keeps containment"
                );
            }
        }
    }

    #[test]
    fn tautology_has_empty_prime() {
        let mut m = BddManager::new();
        let one = m.one();
        let primes = m.prime_cubes(one, 5).unwrap();
        assert_eq!(primes.len(), 1);
        assert!(primes[0].is_empty());
    }
}
