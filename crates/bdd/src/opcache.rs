//! Sized, generational operation caches.
//!
//! Each cache is a fixed-capacity direct-mapped array of `(key, result)`
//! slots tagged with an epoch. Invalidation (`clear`) is an O(1) epoch
//! bump — stale entries die lazily on their next probe. Capacity starts
//! small and doubles under collision pressure up to a per-cache ceiling,
//! so short-lived managers stay allocation-light while long computations
//! get a large cache.

#[derive(Debug, Clone, Copy)]
struct Slot {
    k0: u32,
    k1: u32,
    k2: u32,
    epoch: u32,
    val: u32,
}

const EMPTY_SLOT: Slot = Slot {
    k0: 0,
    k1: 0,
    k2: 0,
    epoch: 0,
    val: 0,
};

/// Direct-mapped cache over a 3-word key.
#[derive(Debug)]
pub(crate) struct DirectCache {
    slots: Vec<Slot>,
    mask: usize,
    epoch: u32,
    occupancy: usize,
    max_capacity: usize,
}

#[inline(always)]
fn hash(k0: u32, k1: u32, k2: u32) -> u64 {
    let mut z = (k0 as u64) << 32 | k1 as u64;
    z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((k2 as u64) << 17);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^ (z >> 31)
}

impl DirectCache {
    /// `initial` and `max` are slot counts; both must be powers of two.
    pub fn new(initial: usize, max: usize) -> Self {
        debug_assert!(initial.is_power_of_two() && max.is_power_of_two());
        DirectCache {
            slots: vec![EMPTY_SLOT; initial],
            mask: initial - 1,
            epoch: 1,
            occupancy: 0,
            max_capacity: max,
        }
    }

    /// Entries stored under the current epoch.
    #[inline]
    pub fn len(&self) -> usize {
        self.occupancy
    }

    #[inline]
    pub fn lookup(&self, k0: u32, k1: u32, k2: u32) -> Option<u32> {
        let s = &self.slots[hash(k0, k1, k2) as usize & self.mask];
        if s.epoch == self.epoch && s.k0 == k0 && s.k1 == k1 && s.k2 == k2 {
            Some(s.val)
        } else {
            None
        }
    }

    /// Stores a result; returns the number of live entries this overwrote
    /// (0 or 1), for eviction accounting.
    pub fn insert(&mut self, k0: u32, k1: u32, k2: u32, val: u32) -> u64 {
        if self.occupancy * 2 >= self.slots.len() && self.slots.len() < self.max_capacity {
            self.grow();
        }
        let s = &mut self.slots[hash(k0, k1, k2) as usize & self.mask];
        let evicted = if s.epoch == self.epoch {
            if s.k0 == k0 && s.k1 == k1 && s.k2 == k2 {
                s.val = val;
                return 0;
            }
            1
        } else {
            self.occupancy += 1;
            0
        };
        *s = Slot {
            k0,
            k1,
            k2,
            epoch: self.epoch,
            val,
        };
        evicted
    }

    /// Drops every entry in O(1); returns how many were dropped.
    pub fn clear(&mut self) -> u64 {
        let dropped = self.occupancy as u64;
        self.occupancy = 0;
        if self.epoch == u32::MAX {
            // Epoch wrap: hard-reset so stale tags can never false-match.
            self.slots.fill(EMPTY_SLOT);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        dropped
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        self.mask = new_cap - 1;
        for s in old {
            if s.epoch == self.epoch {
                // Direct-mapped: a same-epoch rival may land on the slot;
                // keep the earlier entry and drop the rival silently (it is
                // a cache, not a map).
                let dst = &mut self.slots[hash(s.k0, s.k1, s.k2) as usize & self.mask];
                if dst.epoch != self.epoch {
                    *dst = s;
                } else {
                    self.occupancy -= 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_insert_clear() {
        let mut c = DirectCache::new(8, 64);
        assert_eq!(c.lookup(1, 2, 3), None);
        assert_eq!(c.insert(1, 2, 3, 42), 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.lookup(1, 2, 3), Some(42));
        assert_eq!(
            c.insert(1, 2, 3, 43),
            0,
            "same-key overwrite evicts nothing"
        );
        assert_eq!(c.lookup(1, 2, 3), Some(43));
        assert_eq!(c.clear(), 1);
        assert_eq!(c.len(), 0);
        assert_eq!(c.lookup(1, 2, 3), None);
    }

    #[test]
    fn grows_under_pressure_and_keeps_entries() {
        let mut c = DirectCache::new(4, 1024);
        for i in 0..200u32 {
            c.insert(i, i + 1, 0, i);
        }
        let mut survivors = 0;
        for i in 0..200u32 {
            if c.lookup(i, i + 1, 0) == Some(i) {
                survivors += 1;
            }
        }
        // Direct-mapped at ≤50% load: collisions evict some entries, but
        // growth must keep well over what a non-growing 4-slot cache could.
        assert!(survivors > 100, "growth keeps most entries: {survivors}");
    }

    #[test]
    fn capped_cache_evicts_on_collision() {
        let mut c = DirectCache::new(4, 4);
        let mut evicted = 0;
        for i in 0..64u32 {
            evicted += c.insert(i, 0, 0, i);
        }
        assert!(evicted > 0, "a full direct-mapped cache must evict");
        assert!(c.len() <= 4);
    }
}
