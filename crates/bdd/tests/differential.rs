//! Differential test suite for the arena/complement-edge BDD engine.
//!
//! Every random expression DAG is evaluated three independent ways and the
//! results must agree bit for bit:
//!
//! 1. the new manager (build + `eval` + `sat_count`),
//! 2. an exhaustive bit-parallel truth table computed directly from the
//!    expression (64 assignments per machine word, no BDD involved),
//! 3. a DNF reconstructed from `cubes.rs` output (`sat_cubes`), checked
//!    for pairwise disjointness and exact cover.
//!
//! On top of plain agreement the suite asserts canonicity — rebuilding a
//! function always returns the identical handle, negation allocates no
//! nodes (complement pairs share every node, so a function and its
//! complement can never both sit in the unique table) — and repeats the
//! whole exercise under garbage-collection pressure (tiny node budget,
//! collection firing mid-build) and across sifting reorders.

use eco_bdd::{Bdd, BddManager};
use proptest::prelude::*;

const NUM_VARS: u32 = 12;
const WORDS: usize = (1usize << NUM_VARS) / 64;

/// A random Boolean expression over `NUM_VARS` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Truth table of variable `v`: bit `j` of the table is bit `v` of `j`.
fn var_table(v: u32) -> Vec<u64> {
    (0..WORDS)
        .map(|w| {
            let mut word = 0u64;
            for b in 0..64 {
                if ((w * 64 + b) >> v) & 1 == 1 {
                    word |= 1 << b;
                }
            }
            word
        })
        .collect()
}

impl Expr {
    /// Exhaustive truth table over all `2^NUM_VARS` assignments, one bit
    /// per assignment — oracle #2, computed without any BDD machinery.
    fn truth(&self) -> Vec<u64> {
        match self {
            Expr::Var(v) => var_table(*v),
            Expr::Not(a) => a.truth().iter().map(|w| !w).collect(),
            Expr::And(a, b) => zip(&a.truth(), &b.truth(), |x, y| x & y),
            Expr::Or(a, b) => zip(&a.truth(), &b.truth(), |x, y| x | y),
            Expr::Xor(a, b) => zip(&a.truth(), &b.truth(), |x, y| x ^ y),
            Expr::Ite(i, t, e) => {
                let (ti, tt, te) = (i.truth(), t.truth(), e.truth());
                (0..WORDS)
                    .map(|w| (ti[w] & tt[w]) | (!ti[w] & te[w]))
                    .collect()
            }
        }
    }

    fn build(&self, m: &mut BddManager) -> Bdd {
        match self {
            Expr::Var(v) => m.var(*v),
            Expr::Not(a) => {
                let x = a.build(m);
                m.not(x).unwrap()
            }
            Expr::And(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.and(x, y).unwrap()
            }
            Expr::Or(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.or(x, y).unwrap()
            }
            Expr::Xor(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.xor(x, y).unwrap()
            }
            Expr::Ite(i, t, e) => {
                let (x, y, z) = (i.build(m), t.build(m), e.build(m));
                m.ite(x, y, z).unwrap()
            }
        }
    }

    /// Build with garbage collection (and optionally reordering) allowed
    /// to fire after every connective. Intermediate operands are pinned
    /// through the protect set so a collection mid-build is always safe.
    fn build_under_pressure(&self, m: &mut BddManager, reorder: bool) -> Bdd {
        let r = match self {
            Expr::Var(v) => m.var(*v),
            Expr::Not(a) => {
                let x = a.build_under_pressure(m, reorder);
                m.not(x).unwrap()
            }
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => {
                let x = a.build_under_pressure(m, reorder);
                m.protect(x);
                let y = b.build_under_pressure(m, reorder);
                m.protect(y);
                let r = match self {
                    Expr::And(..) => m.and(x, y).unwrap(),
                    Expr::Or(..) => m.or(x, y).unwrap(),
                    _ => m.xor(x, y).unwrap(),
                };
                m.unprotect(x);
                m.unprotect(y);
                r
            }
            Expr::Ite(i, t, e) => {
                let x = i.build_under_pressure(m, reorder);
                m.protect(x);
                let y = t.build_under_pressure(m, reorder);
                m.protect(y);
                let z = e.build_under_pressure(m, reorder);
                m.protect(z);
                let r = m.ite(x, y, z).unwrap();
                m.unprotect(x);
                m.unprotect(y);
                m.unprotect(z);
                r
            }
        };
        m.protect(r);
        m.maybe_gc(&[]).unwrap();
        if reorder {
            m.maybe_reorder(&[]).unwrap();
        }
        m.unprotect(r);
        r
    }
}

fn zip(a: &[u64], b: &[u64], f: impl Fn(u64, u64) -> u64) -> Vec<u64> {
    a.iter().zip(b).map(|(x, y)| f(*x, *y)).collect()
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = (0..NUM_VARS).prop_map(Expr::Var);
    leaf.prop_recursive(6, 56, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(i, t, e)| Expr::Ite(
                Box::new(i),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

fn popcount(t: &[u64]) -> u64 {
    t.iter().map(|w| w.count_ones() as u64).sum()
}

/// Reads bit `j` of a packed truth table.
fn bit(t: &[u64], j: usize) -> bool {
    t[j / 64] >> (j % 64) & 1 == 1
}

/// Oracle #1 vs oracle #2: the manager's `eval` and `sat_count` must match
/// the exhaustive table exactly.
fn check_eval_and_count(m: &BddManager, f: Bdd, truth: &[u64]) {
    for j in 0..1usize << NUM_VARS {
        let assign: Vec<bool> = (0..NUM_VARS).map(|i| (j >> i) & 1 == 1).collect();
        prop_assert_eq!(m.eval(f, &assign), bit(truth, j), "eval disagrees at {}", j);
    }
    prop_assert_eq!(m.sat_count(f, NUM_VARS), popcount(truth) as f64);
}

/// Oracle #3: rebuild the function as a DNF over `sat_cubes` output and
/// compare truth tables; the path cubes must also be pairwise disjoint.
fn check_cubes(m: &BddManager, f: Bdd, truth: &[u64]) {
    let cubes = m.sat_cubes(f, 1 << NUM_VARS);
    let mut acc = vec![0u64; WORDS];
    for cube in &cubes {
        let mut mask = vec![u64::MAX; WORDS];
        for &(v, phase) in cube.literals() {
            let vt = var_table(v);
            for w in 0..WORDS {
                mask[w] &= if phase { vt[w] } else { !vt[w] };
            }
        }
        for w in 0..WORDS {
            prop_assert_eq!(acc[w] & mask[w], 0, "sat_cubes must be disjoint");
            acc[w] |= mask[w];
        }
    }
    prop_assert_eq!(&acc, truth, "cube DNF must equal the truth table");
    // any_sat must agree with emptiness and produce a model.
    match m.any_sat(f) {
        None => prop_assert_eq!(popcount(truth), 0),
        Some(cube) => {
            let mut j = 0usize;
            for &(v, phase) in cube.literals() {
                if phase {
                    j |= 1 << v;
                }
            }
            prop_assert!(bit(truth, j), "any_sat returned a non-model");
        }
    }
}

/// Canonicity: the same function always comes back as the same handle,
/// and complements are free (no allocation ⇒ a function and its negation
/// can never occupy two unique-table entries).
fn check_canonicity(m: &mut BddManager, e: &Expr, f: Bdd) {
    let before = m.num_nodes();
    let nf = m.not(f).unwrap();
    prop_assert_eq!(m.num_nodes(), before, "negation must not allocate");
    prop_assert_ne!(nf, f);
    prop_assert_eq!(m.not(nf).unwrap(), f);
    prop_assert_eq!(m.dag_size(nf), m.dag_size(f), "complement shares all nodes");
    prop_assert_eq!(m.xor(f, f).unwrap(), m.zero());
    prop_assert_eq!(m.and(f, nf).unwrap(), m.zero());
    prop_assert_eq!(m.or(f, nf).unwrap(), m.one());
    // Rebuilding the expression from scratch must hit the identical node.
    prop_assert_eq!(e.build(m), f, "rebuild returned a second handle");
    // Unique table and arena must agree one-to-one (terminal excluded).
    prop_assert_eq!(m.unique_table_len(), m.num_nodes() - 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The core differential run: three oracles plus canonicity, 512 cases.
    #[test]
    fn differential_three_way(e in expr_strategy()) {
        let mut m = BddManager::new();
        let f = e.build(&mut m);
        let truth = e.truth();
        check_eval_and_count(&m, f, &truth);
        check_cubes(&m, f, &truth);
        check_canonicity(&mut m, &e, f);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Same differential checks with a tiny GC budget so mark-and-sweep
    /// fires repeatedly mid-build.
    #[test]
    fn differential_under_gc_pressure(e in expr_strategy()) {
        let mut m = BddManager::new();
        m.set_gc_threshold(Some(48));
        let f = e.build_under_pressure(&mut m, false);
        let truth = e.truth();
        check_eval_and_count(&m, f, &truth);
        check_cubes(&m, f, &truth);
        // Canonicity after collection: rebuilding with `f` pinned must
        // still find the identical handle.
        m.protect(f);
        let g = e.build_under_pressure(&mut m, false);
        prop_assert_eq!(g, f, "gc broke canonical handle identity");
        m.unprotect(f);
        prop_assert_eq!(m.unique_table_len(), m.num_nodes() - 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// GC and sifting both enabled mid-build, then a forced final reorder:
    /// handles must keep denoting the same functions throughout.
    #[test]
    fn differential_with_gc_and_sifting(e in expr_strategy()) {
        let mut m = BddManager::new();
        m.set_gc_threshold(Some(64));
        m.set_reorder_threshold(Some(96));
        let f = e.build_under_pressure(&mut m, true);
        let truth = e.truth();
        check_eval_and_count(&m, f, &truth);
        m.reorder(&[f]).unwrap();
        check_eval_and_count(&m, f, &truth);
        check_cubes(&m, f, &truth);
        prop_assert_eq!(m.unique_table_len(), m.num_nodes() - 1);
        prop_assert!(m.counters().reorders >= 1);
    }
}

/// Deterministic companion: guarantees collection actually fires under the
/// tiny budget (the proptest cases above can't promise a specific size).
#[test]
fn gc_pressure_fires_mid_build() {
    let mut m = BddManager::new();
    m.set_gc_threshold(Some(32));
    // Parity over all 12 variables, accumulated with gc checks between
    // steps; intermediate accumulators are pinned while at risk.
    let mut f = m.zero();
    for i in 0..NUM_VARS {
        let v = m.var(i);
        f = m.xor(f, v).unwrap();
        m.protect(f);
        m.maybe_gc(&[]).unwrap();
        m.unprotect(f);
    }
    let c = m.counters();
    assert!(c.gc_runs >= 1, "tiny budget must trigger collection");
    assert_eq!(m.sat_count(f, NUM_VARS), (1u64 << (NUM_VARS - 1)) as f64);
    for j in 0..1usize << NUM_VARS {
        let assign: Vec<bool> = (0..NUM_VARS).map(|i| (j >> i) & 1 == 1).collect();
        assert_eq!(m.eval(f, &assign), (j.count_ones() & 1) == 1);
    }
}

/// Deterministic companion for sifting: nodes_per_level totals must track
/// live counts across reorders, and peak accounting never understates.
#[test]
fn reorder_accounting_reconciles() {
    let mut m = BddManager::new();
    let mut f = m.zero();
    for i in 0..6 {
        let a = m.var(i);
        let b = m.var(6 + i);
        let t = m.and(a, b).unwrap();
        f = m.or(f, t).unwrap();
    }
    let peak_before = m.peak_num_nodes();
    m.reorder(&[f]).unwrap();
    let per_level = m.nodes_per_level();
    assert_eq!(per_level.iter().sum::<usize>(), m.num_nodes() - 1);
    assert!(m.peak_num_nodes() >= m.num_nodes());
    assert!(m.peak_num_nodes() >= peak_before);
    let order = m.current_order();
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted,
        (0..12).collect::<Vec<u32>>(),
        "order is a permutation"
    );
}
