//! Property-based tests: random Boolean expressions evaluated against a
//! brute-force truth-table oracle.

use eco_bdd::{Bdd, BddManager};
use proptest::prelude::*;

const NUM_VARS: u32 = 5;

/// A random Boolean expression over `NUM_VARS` variables.
#[derive(Debug, Clone)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, assign: &[bool]) -> bool {
        match self {
            Expr::Var(v) => assign[*v as usize],
            Expr::Not(a) => !a.eval(assign),
            Expr::And(a, b) => a.eval(assign) && b.eval(assign),
            Expr::Or(a, b) => a.eval(assign) || b.eval(assign),
            Expr::Xor(a, b) => a.eval(assign) ^ b.eval(assign),
            Expr::Ite(i, t, e) => {
                if i.eval(assign) {
                    t.eval(assign)
                } else {
                    e.eval(assign)
                }
            }
        }
    }

    fn build(&self, m: &mut BddManager) -> Bdd {
        match self {
            Expr::Var(v) => m.var(*v),
            Expr::Not(a) => {
                let x = a.build(m);
                m.not(x).unwrap()
            }
            Expr::And(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.and(x, y).unwrap()
            }
            Expr::Or(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.or(x, y).unwrap()
            }
            Expr::Xor(a, b) => {
                let (x, y) = (a.build(m), b.build(m));
                m.xor(x, y).unwrap()
            }
            Expr::Ite(i, t, e) => {
                let (x, y, z) = (i.build(m), t.build(m), e.build(m));
                m.ite(x, y, z).unwrap()
            }
        }
    }
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = (0..NUM_VARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 48, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|a| Expr::Not(Box::new(a))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(i, t, e)| Expr::Ite(
                Box::new(i),
                Box::new(t),
                Box::new(e)
            )),
        ]
    })
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << NUM_VARS)).map(|j| (0..NUM_VARS).map(|i| (j >> i) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bdd_matches_truth_table(e in expr_strategy()) {
        let mut m = BddManager::new();
        let f = e.build(&mut m);
        for a in assignments() {
            prop_assert_eq!(m.eval(f, &a), e.eval(&a));
        }
    }

    #[test]
    fn canonicity_equal_functions_same_node(e in expr_strategy()) {
        let mut m = BddManager::new();
        let f = e.build(&mut m);
        // Rebuild through double negation: must hit the identical node.
        let nf = m.not(f).unwrap();
        let nnf = m.not(nf).unwrap();
        prop_assert_eq!(f, nnf);
        // f xor f = 0, f or f = f, f and not f = 0, f or not f = 1.
        prop_assert_eq!(m.xor(f, f).unwrap(), m.zero());
        prop_assert_eq!(m.or(f, f).unwrap(), f);
        prop_assert_eq!(m.and(f, nf).unwrap(), m.zero());
        prop_assert_eq!(m.or(f, nf).unwrap(), m.one());
    }

    #[test]
    fn sat_count_matches_truth_table(e in expr_strategy()) {
        let mut m = BddManager::new();
        let f = e.build(&mut m);
        let expect = assignments().filter(|a| e.eval(a)).count() as f64;
        prop_assert_eq!(m.sat_count(f, NUM_VARS), expect);
    }

    #[test]
    fn exists_forall_semantics(e in expr_strategy(), v in 0..NUM_VARS) {
        let mut m = BddManager::new();
        let f = e.build(&mut m);
        let cube = m.var_cube(&[v]).unwrap();
        let ex = m.exists(f, cube).unwrap();
        let fa = m.forall(f, cube).unwrap();
        for a in assignments() {
            let mut a0 = a.clone();
            a0[v as usize] = false;
            let mut a1 = a.clone();
            a1[v as usize] = true;
            let e0 = e.eval(&a0);
            let e1 = e.eval(&a1);
            prop_assert_eq!(m.eval(ex, &a), e0 || e1);
            prop_assert_eq!(m.eval(fa, &a), e0 && e1);
        }
    }

    #[test]
    fn restrict_semantics(e in expr_strategy(), v in 0..NUM_VARS, phase in any::<bool>()) {
        let mut m = BddManager::new();
        let f = e.build(&mut m);
        let r = m.restrict(f, v, phase).unwrap();
        for a in assignments() {
            let mut forced = a.clone();
            forced[v as usize] = phase;
            prop_assert_eq!(m.eval(r, &a), e.eval(&forced));
        }
    }

    #[test]
    fn any_sat_is_a_model(e in expr_strategy()) {
        let mut m = BddManager::new();
        let f = e.build(&mut m);
        match m.any_sat(f) {
            None => prop_assert_eq!(f, m.zero()),
            Some(cube) => {
                let mut a = vec![false; NUM_VARS as usize];
                for &(v, p) in cube.literals() {
                    a[v as usize] = p;
                }
                prop_assert!(e.eval(&a));
            }
        }
    }

    #[test]
    fn prime_cubes_cover_and_imply(e in expr_strategy()) {
        let mut m = BddManager::new();
        let f = e.build(&mut m);
        let primes = m.prime_cubes(f, 64).unwrap();
        let mut cover = m.zero();
        for p in &primes {
            let cb = p.to_bdd(&mut m).unwrap();
            prop_assert!(m.implies_check(cb, f).unwrap(), "prime not implicant");
            cover = m.or(cover, cb).unwrap();
        }
        // Seeds come from a disjoint path cover, so with a generous limit the
        // expansion covers all of f.
        prop_assert_eq!(cover, f);
    }
}
