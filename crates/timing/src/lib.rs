//! Static timing analysis for syseco.
//!
//! Table 3 of the paper measures the slack impact of ECO patches after place
//! and route. This crate provides the stand-in timing substrate: a levelized
//! STA over [`eco_netlist::Circuit`]s with a per-gate-kind delay table and a
//! fanout-proportional wire-load model (the classic pre-layout
//! approximation). Arrival times propagate forward, required times backward
//! from a clock constraint, and the worst output slack summarizes a design.
//!
//! The syseco engine consults [`TimingReport::arrival`] when scoring rewiring
//! candidates — the *level-driven optimization decisions* the paper credits
//! for its slack advantage (§6).
//!
//! # Example
//!
//! ```
//! use eco_netlist::{Circuit, GateKind};
//! use eco_timing::{DelayModel, TimingReport};
//!
//! # fn main() -> Result<(), eco_netlist::NetlistError> {
//! let mut c = Circuit::new("t");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let g = c.add_gate(GateKind::And, &[a, b])?;
//! c.add_output("y", g);
//! let report = TimingReport::analyze(&c, &DelayModel::default(), 100.0)?;
//! assert!(report.worst_slack() > 0.0);
//! # Ok(())
//! # }
//! ```

use eco_netlist::{topo, Circuit, GateKind, NetId, NetlistError};

/// Gate and wire delay parameters, in picoseconds.
///
/// The defaults approximate a generic standard-cell library: inverters are
/// fast, XOR/MUX cost roughly two logic levels, and every fanout adds wire
/// delay (the wire-load proxy for routed interconnect).
#[derive(Debug, Clone, PartialEq)]
pub struct DelayModel {
    /// Intrinsic delay of NOT/BUF.
    pub inverter: f64,
    /// Intrinsic delay of AND/OR/NAND/NOR per 2 fanins.
    pub simple_gate: f64,
    /// Intrinsic delay of XOR/XNOR/MUX.
    pub complex_gate: f64,
    /// Extra delay per additional fanin beyond two on n-ary gates.
    pub per_extra_fanin: f64,
    /// Wire delay added per sink driven by a net.
    pub wire_per_fanout: f64,
}

impl Default for DelayModel {
    fn default() -> Self {
        DelayModel {
            inverter: 6.0,
            simple_gate: 10.0,
            complex_gate: 18.0,
            per_extra_fanin: 3.0,
            wire_per_fanout: 1.5,
        }
    }
}

impl DelayModel {
    /// Intrinsic delay of a gate of `kind` with `fanins` inputs.
    pub fn gate_delay(&self, kind: GateKind, fanins: usize) -> f64 {
        let base = match kind {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0.0,
            GateKind::Buf | GateKind::Not => self.inverter,
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => self.simple_gate,
            GateKind::Xor | GateKind::Xnor | GateKind::Mux => self.complex_gate,
        };
        let extra = fanins.saturating_sub(2) as f64 * self.per_extra_fanin;
        base + extra
    }
}

/// Result of a timing analysis run.
///
/// All times are picoseconds. Nets that are dead carry arrival 0 and
/// required `clock_period`.
#[derive(Debug, Clone)]
pub struct TimingReport {
    arrival: Vec<f64>,
    required: Vec<f64>,
    clock_period: f64,
    worst_slack: f64,
    critical_output: Option<u32>,
}

impl TimingReport {
    /// Runs STA on `circuit` against `clock_period`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Cyclic`] for cyclic circuits.
    pub fn analyze(
        circuit: &Circuit,
        model: &DelayModel,
        clock_period: f64,
    ) -> Result<Self, NetlistError> {
        let order = topo::topo_order(circuit)?;
        let fanouts = circuit.fanouts();
        let n = circuit.num_nodes();
        let mut arrival = vec![0.0f64; n];

        for &id in &order {
            let node = circuit.node(id);
            if node.kind() == GateKind::Input || node.kind().is_const() {
                continue;
            }
            let input_arrival = node
                .fanins()
                .iter()
                .map(|f| arrival[f.index()])
                .fold(0.0, f64::max);
            let load = fanouts[id.index()].len() as f64 * model.wire_per_fanout;
            arrival[id.index()] =
                input_arrival + model.gate_delay(node.kind(), node.fanins().len()) + load;
        }

        let mut required = vec![clock_period; n];
        for &id in order.iter().rev() {
            // Required time at this net = min over consumers of
            // (required(consumer) − delay(consumer)).
            let mut req = f64::INFINITY;
            for pin in &fanouts[id.index()] {
                match pin.node() {
                    Some(consumer) => {
                        let cn = circuit.node(consumer);
                        let load = fanouts[consumer.index()].len() as f64 * model.wire_per_fanout;
                        let d = model.gate_delay(cn.kind(), cn.fanins().len()) + load;
                        req = req.min(required[consumer.index()] - d);
                    }
                    None => req = req.min(clock_period),
                }
            }
            if req.is_finite() {
                required[id.index()] = req;
            }
        }

        let mut worst_slack = f64::INFINITY;
        let mut critical_output = None;
        for (i, port) in circuit.outputs().iter().enumerate() {
            let slack = clock_period - arrival[port.net().index()];
            if slack < worst_slack {
                worst_slack = slack;
                critical_output = Some(i as u32);
            }
        }
        if !worst_slack.is_finite() {
            worst_slack = clock_period;
        }
        Ok(TimingReport {
            arrival,
            required,
            clock_period,
            worst_slack,
            critical_output,
        })
    }

    /// Arrival time at `net`.
    ///
    /// Nets created after the analysis (e.g. freshly cloned patch logic)
    /// report 0.0; re-run [`TimingReport::analyze`] for exact numbers.
    pub fn arrival(&self, net: NetId) -> f64 {
        self.arrival.get(net.index()).copied().unwrap_or(0.0)
    }

    /// Required time at `net` (see [`TimingReport::arrival`] for staleness).
    pub fn required(&self, net: NetId) -> f64 {
        self.required
            .get(net.index())
            .copied()
            .unwrap_or(self.clock_period)
    }

    /// Slack at `net` (`required − arrival`).
    pub fn slack(&self, net: NetId) -> f64 {
        self.required(net) - self.arrival(net)
    }

    /// The clock constraint the analysis was run against.
    pub fn clock_period(&self) -> f64 {
        self.clock_period
    }

    /// The smallest output slack; negative when the constraint is violated.
    pub fn worst_slack(&self) -> f64 {
        self.worst_slack
    }

    /// Index of the output port with the worst slack, if any outputs exist.
    pub fn critical_output(&self) -> Option<u32> {
        self.critical_output
    }

    /// Maximum arrival time over all outputs (the critical-path delay).
    pub fn critical_delay(&self) -> f64 {
        self.clock_period - self.worst_slack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::{Circuit, GateKind};

    fn chain(n: usize) -> Circuit {
        let mut c = Circuit::new("chain");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let mut w = a;
        for _ in 0..n {
            w = c.add_gate(GateKind::And, &[w, b]).unwrap();
        }
        c.add_output("y", w);
        c
    }

    #[test]
    fn arrival_accumulates_along_path() {
        let c = chain(3);
        let model = DelayModel::default();
        let r = TimingReport::analyze(&c, &model, 1000.0).unwrap();
        let per_stage = model.simple_gate + model.wire_per_fanout;
        let expect = 3.0 * per_stage;
        assert!((r.critical_delay() - expect).abs() < 1e-9, "{r:?}");
    }

    #[test]
    fn slack_is_period_minus_arrival() {
        let c = chain(2);
        let model = DelayModel::default();
        let r = TimingReport::analyze(&c, &model, 100.0).unwrap();
        let y = c.outputs()[0].net();
        assert!((r.worst_slack() - (100.0 - r.arrival(y))).abs() < 1e-9);
        assert_eq!(r.critical_output(), Some(0));
    }

    #[test]
    fn negative_slack_when_constraint_violated() {
        let c = chain(20);
        let r = TimingReport::analyze(&c, &DelayModel::default(), 10.0).unwrap();
        assert!(r.worst_slack() < 0.0);
    }

    #[test]
    fn fanout_load_slows_nets() {
        // A net with many sinks arrives later downstream than a single-sink
        // net of the same logic depth.
        let mut c = Circuit::new("fan");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let busy = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let mut sinks = Vec::new();
        for _ in 0..10 {
            sinks.push(c.add_gate(GateKind::Not, &[busy]).unwrap());
        }
        let quiet = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let q1 = c.add_gate(GateKind::Not, &[quiet]).unwrap();
        for (i, s) in sinks.iter().enumerate() {
            c.add_output(format!("s{i}"), *s);
        }
        c.add_output("q", q1);
        let r = TimingReport::analyze(&c, &DelayModel::default(), 1000.0).unwrap();
        assert!(r.arrival(sinks[0]) > r.arrival(q1));
    }

    #[test]
    fn required_time_respects_downstream_depth() {
        let c = chain(4);
        let r = TimingReport::analyze(&c, &DelayModel::default(), 100.0).unwrap();
        let a = c.input_by_name("a").unwrap();
        // The input's required time leaves room for the whole chain.
        assert!(r.required(a) < 100.0);
        let y = c.outputs()[0].net();
        // Along a single path the slack is uniform.
        assert!((r.slack(a) - r.slack(y)).abs() < 1e-9);
    }

    #[test]
    fn empty_circuit_has_full_slack() {
        let c = Circuit::new("empty");
        let r = TimingReport::analyze(&c, &DelayModel::default(), 50.0).unwrap();
        assert_eq!(r.worst_slack(), 50.0);
        assert_eq!(r.critical_output(), None);
    }

    #[test]
    fn inputs_have_zero_arrival() {
        let c = chain(2);
        let r = TimingReport::analyze(&c, &DelayModel::default(), 100.0).unwrap();
        let a = c.input_by_name("a").unwrap();
        assert_eq!(r.arrival(a), 0.0);
    }

    #[test]
    fn deeper_patch_hurts_slack() {
        // Appending logic to the critical path reduces slack — the effect
        // Table 3 quantifies.
        let shallow = chain(3);
        let deep = chain(6);
        let model = DelayModel::default();
        let s1 = TimingReport::analyze(&shallow, &model, 100.0)
            .unwrap()
            .worst_slack();
        let s2 = TimingReport::analyze(&deep, &model, 100.0)
            .unwrap()
            .worst_slack();
        assert!(s2 < s1);
    }
}
