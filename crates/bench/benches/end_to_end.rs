//! End-to-end Criterion benchmarks: full rectification runs per engine on a
//! generated suite case (the per-case timing column of Table 2).

use criterion::{criterion_group, criterion_main, Criterion};
use eco_workload::{build_case, table1_params};
use syseco::baseline::{cone, deltasyn};
use syseco::{EcoOptions, Syseco};

fn bench_engines(c: &mut Criterion) {
    // Case 5: the smallest suite member, fits Criterion's sampling budget.
    let case = build_case(&table1_params()[4]);
    let mut group = c.benchmark_group("end_to_end_case5");
    group.sample_size(10);

    group.bench_function("commercial_cone", |b| {
        b.iter(|| std::hint::black_box(cone::rectify(&case.implementation, &case.spec).unwrap()))
    });
    group.bench_function("deltasyn", |b| {
        b.iter(|| {
            std::hint::black_box(deltasyn::rectify(&case.implementation, &case.spec).unwrap())
        })
    });
    group.bench_function("syseco", |b| {
        let engine = Syseco::new(EcoOptions::default());
        b.iter(|| std::hint::black_box(engine.rectify(&case.implementation, &case.spec).unwrap()))
    });
    group.finish();
}

fn bench_sampling_sizes(c: &mut Criterion) {
    // The runtime side of ablation A.
    let case = build_case(&table1_params()[4]);
    let mut group = c.benchmark_group("syseco_sampling_size_case5");
    group.sample_size(10);
    for n in [16usize, 64, 256] {
        group.bench_function(format!("N={n}"), |b| {
            let options = EcoOptions::builder().num_samples(n).build();
            let engine = Syseco::new(options);
            b.iter(|| {
                std::hint::black_box(engine.rectify(&case.implementation, &case.spec).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_sampling_sizes);
criterion_main!(benches);
