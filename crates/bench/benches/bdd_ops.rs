//! Criterion micro-benchmarks for the BDD package: the operations the
//! sampling-domain computations lean on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eco_bdd::BddManager;

/// Builds an n-variable adder-carry chain (linear BDD).
fn carry_chain(m: &mut BddManager, n: u32) -> eco_bdd::Bdd {
    let mut carry = m.zero();
    for i in 0..n {
        let a = m.var(2 * i);
        let b = m.var(2 * i + 1);
        let ab = m.and(a, b).unwrap();
        let axb = m.xor(a, b).unwrap();
        let pc = m.and(axb, carry).unwrap();
        carry = m.or(ab, pc).unwrap();
    }
    carry
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_build_carry");
    for n in [8u32, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut m = BddManager::new();
                std::hint::black_box(carry_chain(&mut m, n))
            });
        });
    }
    group.finish();
}

fn bench_quantify(c: &mut Criterion) {
    let mut group = c.benchmark_group("bdd_quantify");
    for n in [8u32, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut m = BddManager::new();
            let f = carry_chain(&mut m, n);
            let vars: Vec<u32> = (0..n).map(|i| 2 * i).collect();
            let cube = m.var_cube(&vars).unwrap();
            b.iter(|| {
                m.clear_caches();
                let e = m.exists(f, cube).unwrap();
                let a = m.forall(f, cube).unwrap();
                std::hint::black_box((e, a))
            });
        });
    }
    group.finish();
}

fn bench_primes(c: &mut Criterion) {
    c.bench_function("bdd_prime_cubes_carry16", |b| {
        let mut m = BddManager::new();
        let f = carry_chain(&mut m, 16);
        b.iter(|| std::hint::black_box(m.prime_cubes(f, 16).unwrap()));
    });
}

fn bench_sat_count(c: &mut Criterion) {
    c.bench_function("bdd_sat_count_carry32", |b| {
        let mut m = BddManager::new();
        let f = carry_chain(&mut m, 32);
        b.iter(|| std::hint::black_box(m.sat_count(f, 64)));
    });
}

criterion_group!(
    benches,
    bench_build,
    bench_quantify,
    bench_primes,
    bench_sat_count
);
criterion_main!(benches);
