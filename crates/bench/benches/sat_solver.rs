//! Criterion micro-benchmarks for the CDCL solver: miter-style equivalence
//! queries, the workhorse of candidate validation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eco_netlist::Circuit;
use eco_sat::{tseitin, SolveResult, Solver};
use eco_synth::lower::synthesize;
use eco_synth::opt::{optimize, OptOptions};
use eco_synth::rtl::{RtlModule, WordExpr as E};

/// An adder-tree module of the given width: realistic miter fodder.
fn adder_tree(width: u32) -> Circuit {
    let mut m = RtlModule::new("bench");
    m.add_input("a", width);
    m.add_input("b", width);
    m.add_input("c", width);
    m.add_input("d", width);
    m.add_signal("s0", E::add(E::input("a"), E::input("b")));
    m.add_signal("s1", E::add(E::input("c"), E::input("d")));
    m.add_signal("s2", E::add(E::signal("s0"), E::signal("s1")));
    m.add_signal("s3", E::xor(E::signal("s2"), E::signal("s0")));
    m.add_output("y", E::signal("s3"));
    synthesize(&m).expect("elaborates")
}

fn bench_equivalence_unsat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_miter_equivalent");
    for width in [8u32, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(width), &width, |b, &w| {
            let left = adder_tree(w);
            let mut right = adder_tree(w);
            optimize(&mut right, &OptOptions::heavy(3)).unwrap();
            let pairs: Vec<_> = left
                .outputs()
                .iter()
                .zip(right.outputs())
                .map(|(l, r)| (l.net(), r.net()))
                .collect();
            b.iter(|| {
                let mut s = Solver::new();
                tseitin::encode_miter(&mut s, &left, &right, &pairs).unwrap();
                assert_eq!(s.solve(&[]), SolveResult::Unsat);
            });
        });
    }
    group.finish();
}

fn bench_model_enumeration(c: &mut Criterion) {
    c.bench_function("sat_enumerate_16_models", |b| {
        let left = adder_tree(8);
        // A broken right side: plenty of error minterms to enumerate.
        let mut m = RtlModule::new("broken");
        m.add_input("a", 8);
        m.add_input("b", 8);
        m.add_input("c", 8);
        m.add_input("d", 8);
        m.add_signal("s0", E::add(E::input("a"), E::input("b")));
        m.add_signal("s1", E::add(E::input("c"), E::input("d")));
        m.add_signal("s2", E::add(E::signal("s0"), E::signal("s1")));
        m.add_signal("s3", E::not(E::xor(E::signal("s2"), E::signal("s0"))));
        m.add_output("y", E::signal("s3"));
        let right = synthesize(&m).expect("elaborates");
        let pairs: Vec<_> = left
            .outputs()
            .iter()
            .zip(right.outputs())
            .map(|(l, r)| (l.net(), r.net()))
            .collect();
        b.iter(|| {
            let mut s = Solver::new();
            let miter = tseitin::encode_miter(&mut s, &left, &right, &pairs).unwrap();
            let mut found = 0;
            while found < 16 && s.solve(&[]) == SolveResult::Sat {
                let inputs = tseitin::model_inputs(&s, &miter, &left);
                let block: Vec<_> = left
                    .inputs()
                    .iter()
                    .zip(&inputs)
                    .map(|(&id, &v)| {
                        let label = left.node(id).name().unwrap().to_string();
                        eco_sat::Lit::with_phase(miter.inputs[&label], !v)
                    })
                    .collect();
                s.add_clause(&block);
                found += 1;
            }
            std::hint::black_box(found)
        });
    });
}

criterion_group!(benches, bench_equivalence_unsat, bench_model_enumeration);
criterion_main!(benches);
