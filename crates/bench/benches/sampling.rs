//! Criterion benchmarks for the symbolic sampling machinery: building
//! sampling functions, overloading a circuit, and computing `H(t)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use eco_bdd::BddManager;
use eco_synth::lower::synthesize;
use eco_synth::rtl::{RtlModule, WordExpr as E};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use syseco::points::{candidate_pins, feasible_point_sets, Selection};
use syseco::sampling::{eval_all_bdd, SamplingDomain};

fn bench_circuit() -> eco_netlist::Circuit {
    let mut m = RtlModule::new("samp");
    m.add_input("a", 8);
    m.add_input("b", 8);
    m.add_input("en", 1);
    m.add_signal("s0", E::add(E::input("a"), E::input("b")));
    m.add_signal("s1", E::and(E::signal("s0"), E::input("a")));
    m.add_signal("s2", E::mux(E::input("en"), E::signal("s1"), E::input("b")));
    m.add_output("y", E::signal("s2"));
    synthesize(&m).expect("elaborates")
}

fn random_samples(n: usize, inputs: usize, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..inputs).map(|_| rng.gen()).collect())
        .collect()
}

fn bench_domain_eval(c: &mut Criterion) {
    let circuit = bench_circuit();
    let mut group = c.benchmark_group("sampling_domain_eval");
    for n in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let samples = random_samples(n, circuit.num_inputs(), 5);
            b.iter(|| {
                let mut m = BddManager::new();
                let dom = SamplingDomain::new(samples.clone(), 0).unwrap();
                let g = dom.input_functions(&mut m, circuit.num_inputs()).unwrap();
                std::hint::black_box(eval_all_bdd(&circuit, &mut m, &g).unwrap())
            });
        });
    }
    group.finish();
}

fn bench_point_set_enumeration(c: &mut Criterion) {
    let circuit = bench_circuit();
    c.bench_function("sampling_h_of_t_m2", |b| {
        let samples = random_samples(32, circuit.num_inputs(), 9);
        let root = circuit.outputs()[0].net();
        b.iter(|| {
            let mut m = BddManager::new();
            // Layout: t at 0, y after, z last.
            let pins = candidate_pins(&circuit, root, 0, 24);
            let sel = Selection::new(0, 2, pins.len());
            let y_base = sel.num_t_vars();
            // Target: a deliberately wrong f' (negated output) to make H(t)
            // non-trivial.
            let fprime_bits: Vec<bool> = samples
                .iter()
                .map(|x| !circuit.eval_nets(x).unwrap()[root.index()])
                .collect();
            std::hint::black_box(
                feasible_point_sets(
                    &circuit,
                    &mut m,
                    &samples,
                    &fprime_bits,
                    root,
                    0,
                    &pins,
                    &sel,
                    y_base,
                    8,
                    4,
                )
                .unwrap(),
            )
        });
    });
}

criterion_group!(benches, bench_domain_eval, bench_point_set_enumeration);
criterion_main!(benches);
