//! Deep BDD/SAT profile of the scaling case (par16) -> `BENCH_bdd.json`.
//!
//! ```text
//! cargo run --release -p syseco-bench --bin bdd_profile -- [out.json]
//! ```
//!
//! Two measurements feed the output file:
//!
//! 1. **Instrumented rectification** — the full par16 run with telemetry
//!    enabled and a background [`CounterSampler`] reading the metrics
//!    registry on an interval. Yields apply throughput (apply-cache
//!    lookups per second of wall clock), per-op-cache hit rates,
//!    unique-table resize and eviction counts, SAT restart/learnt-clause
//!    totals, timing-histogram quantiles, and a cumulative counter time
//!    series. The binary installs [`CountingAlloc`], so allocation counts
//!    for the whole run ride along.
//! 2. **Direct BDD build** — every output of the par16 implementation
//!    evaluated in one fresh manager via
//!    [`syseco::sampling::eval_all_bdd`], giving an exact per-variable-
//!    level node census ([`BddManager::nodes_per_level`]) and final
//!    op-cache entry counts that a rectification run (which clears caches
//!    between cones) cannot expose.
//!
//! Wall-clock-derived fields (`*_s`, `*throughput*`, allocation counts)
//! vary by host and exist for `bench_diff` trend comparison on one
//! machine; the counter fields are deterministic for a given seed.

use std::time::{Duration, Instant};

use eco_bdd::BddManager;
use eco_telemetry::alloc::{allocation_counts, CountingAlloc};
use eco_telemetry::profile::CounterSampler;
use syseco::sampling::eval_all_bdd;
use syseco::telemetry::{Counter, Gauge, Histogram};
use syseco::{EcoOptions, Session, Telemetry};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn hit_rate(hits: u64, misses: u64) -> f64 {
    hits as f64 / (hits + misses).max(1) as f64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_bdd.json".to_string());

    eprintln!("building scaling case (id 16)…");
    let case = eco_workload::scaling_case();
    let alloc_before = allocation_counts();

    // ---- 1. Instrumented rectification ------------------------------
    let telemetry = Telemetry::enabled();
    let sampler = CounterSampler::start(&telemetry, Duration::from_millis(250));
    let session =
        Session::new(EcoOptions::builder().seed(16).jobs(1).build()).with_telemetry(&telemetry);
    let t0 = Instant::now();
    let result = session
        .run(&case.implementation, &case.spec)
        .expect("rectification failed");
    let wall = t0.elapsed();
    let samples = sampler.stop();
    let snapshot = telemetry.snapshot();
    let run_allocs = allocation_counts().since(alloc_before);
    eprintln!(
        "rectified {} in {wall:.2?} ({} spans, {} allocations)",
        case.name,
        result.trace.len(),
        run_allocs.allocations
    );

    let apply_hits = snapshot.counter(Counter::BddApplyHits);
    let apply_misses = snapshot.counter(Counter::BddApplyMisses);
    let apply_ops = apply_hits + apply_misses;
    let apply_throughput = apply_ops as f64 / wall.as_secs_f64();
    let caches = [
        ("apply", apply_hits, apply_misses),
        (
            "ite",
            snapshot.counter(Counter::BddIteHits),
            snapshot.counter(Counter::BddIteMisses),
        ),
        (
            "not",
            snapshot.counter(Counter::BddNotHits),
            snapshot.counter(Counter::BddNotMisses),
        ),
        (
            "quant",
            snapshot.counter(Counter::BddQuantHits),
            snapshot.counter(Counter::BddQuantMisses),
        ),
    ];
    assert!(apply_ops > 0, "par16 must exercise the apply cache");
    assert!(
        snapshot.gauge(Gauge::BddPeakNodes) > 0,
        "peak node gauge must be recorded"
    );
    assert!(
        snapshot.counter(Counter::SatLearntClauses) > 0,
        "par16 must learn SAT clauses"
    );

    // ---- 2. Direct BDD build for the level census --------------------
    let mut manager = BddManager::new();
    let input_fns: Vec<_> = (0..case.implementation.num_inputs())
        .map(|i| manager.var(i as u32))
        .collect();
    eval_all_bdd(&case.implementation, &mut manager, &input_fns)
        .expect("par16 implementation fits in an unbounded manager");
    let levels = manager.nodes_per_level();
    let build_counters = manager.counters();
    let cache_sizes = manager.op_cache_sizes();
    assert!(!levels.is_empty() && levels.iter().sum::<usize>() > 0);
    let widest = levels
        .iter()
        .enumerate()
        .max_by_key(|&(i, &n)| (n, usize::MAX - i))
        .map(|(i, &n)| (i, n))
        .expect("at least one level");

    // ---- Emit --------------------------------------------------------
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"case\": \"{}\",\n", case.name));
    json.push_str("  \"jobs\": 1,\n");
    json.push_str(&format!(
        "  \"rectify_wall_clock_s\": {:.6},\n",
        wall.as_secs_f64()
    ));
    json.push_str(&format!(
        "  \"bdd_apply_throughput_per_s\": {apply_throughput:.1},\n"
    ));
    json.push_str("  \"cache_hit_rates\": {");
    for (i, (name, hits, misses)) in caches.iter().enumerate() {
        json.push_str(&format!(
            "{}\n    \"bdd_{name}_hit_rate\": {:.4}",
            if i > 0 { "," } else { "" },
            hit_rate(*hits, *misses)
        ));
    }
    json.push_str("\n  },\n");
    json.push_str("  \"counters\": {");
    for (i, (name, value)) in snapshot.counters().enumerate() {
        json.push_str(&format!(
            "{}\n    \"{name}\": {value}",
            if i > 0 { "," } else { "" }
        ));
    }
    json.push_str("\n  },\n");
    json.push_str("  \"gauges\": {");
    for (i, (name, value)) in snapshot.gauges().enumerate() {
        json.push_str(&format!(
            "{}\n    \"{name}\": {value}",
            if i > 0 { "," } else { "" }
        ));
    }
    json.push_str("\n  },\n");
    json.push_str("  \"histogram_quantiles\": {");
    for (i, &histogram) in Histogram::ALL.iter().enumerate() {
        let (p50, p90, p99) = snapshot.histogram_percentiles(histogram);
        json.push_str(&format!(
            "{}\n    \"{}\": {{\"p50\": {p50:.1}, \"p90\": {p90:.1}, \"p99\": {p99:.1}}}",
            if i > 0 { "," } else { "" },
            histogram.name()
        ));
    }
    json.push_str("\n  },\n");
    json.push_str(&format!(
        "  \"allocations\": {},\n  \"bytes_allocated\": {},\n",
        run_allocs.allocations, run_allocs.bytes_allocated
    ));
    json.push_str("  \"counter_series\": [");
    for (i, sample) in samples.iter().enumerate() {
        json.push_str(&format!(
            "{}\n    {{\"elapsed_ms\": {}, \"sat_conflicts\": {}, \"bdd_apply_ops\": {}}}",
            if i > 0 { "," } else { "" },
            sample.elapsed_ms,
            sample.counter(Counter::SatConflicts),
            sample.counter(Counter::BddApplyHits) + sample.counter(Counter::BddApplyMisses)
        ));
    }
    json.push_str("\n  ],\n");
    json.push_str("  \"direct_build\": {\n");
    json.push_str(&format!(
        "    \"peak_nodes\": {},\n    \"final_nodes\": {},\n",
        manager.peak_num_nodes(),
        manager.num_nodes()
    ));
    json.push_str(&format!(
        "    \"unique_resizes\": {},\n    \"op_cache_entries\": {},\n",
        build_counters.unique_resizes,
        cache_sizes.total()
    ));
    json.push_str(&format!(
        "    \"widest_level\": {},\n    \"widest_level_nodes\": {},\n",
        widest.0, widest.1
    ));
    json.push_str("    \"nodes_per_level\": [");
    for (i, n) in levels.iter().enumerate() {
        json.push_str(&format!("{}{n}", if i > 0 { ", " } else { "" }));
    }
    json.push_str("]\n  },\n");
    json.push_str(
        "  \"methodology\": \"Single instrumented run of the workload scaling case \
         (par16, seed 16, jobs=1, release profile) with telemetry enabled, a 250ms \
         counter sampler, and the allocation-counting global allocator, followed by a \
         direct eval_all_bdd build of the implementation in a fresh manager for the \
         per-level node census. Counter and gauge fields are deterministic for the \
         seed; *_s, *throughput*, and allocation fields are host-dependent and exist \
         for same-host trend comparison via bench_diff.\"\n",
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
