//! Perf-regression gate: compares a fresh BENCH file against a baseline.
//!
//! ```text
//! bench_diff <baseline.json> <current.json> [--tol RATIO]
//!            [--metric-tol KEY=RATIO ...] [--metric-dir KEY=DIR ...]
//! bench_diff --self-test
//! ```
//!
//! Metrics are classified by key name (see [`syseco_bench::diff`]):
//! time-like keys regress upward, rate-like keys regress downward,
//! counters only drift. The default tolerance is ±20%; `--tol` changes
//! it globally and `--metric-tol key=0.05` pins one key.
//! `--metric-dir key=lower|higher|info` overrides a key's direction —
//! the way CI turns informational node counts (`direct_build.peak_nodes`)
//! into lower-is-better gates.
//!
//! Exit codes: 0 no regressions, 1 at least one regression, 2 usage or
//! parse error. `--self-test` seeds a >20% wall-clock regression into a
//! synthetic document pair, verifies the comparison flags exactly that
//! key, and then exits 1 through the same path a real regression would —
//! CI asserts the nonzero exit to prove the gate can fail.

use std::process::ExitCode;

use syseco_bench::diff::{compare_texts, DiffReport, Direction, Tolerances};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  bench_diff <baseline.json> <current.json> [--tol RATIO]\n             \
         [--metric-tol KEY=RATIO ...] [--metric-dir KEY=lower|higher|info ...]\n  \
         bench_diff --self-test"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--self-test") {
        return self_test();
    }
    if args.len() < 2 {
        return usage();
    }
    let mut tolerances = Tolerances::default();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--tol" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                match value.parse::<f64>() {
                    Ok(t) if t.is_finite() && t >= 0.0 => tolerances.default = t,
                    _ => {
                        eprintln!("error: bad tolerance {value:?}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--metric-tol" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                let Some((key, t)) = value.split_once('=') else {
                    eprintln!("error: --metric-tol wants KEY=RATIO, got {value:?}");
                    return ExitCode::from(2);
                };
                match t.parse::<f64>() {
                    Ok(t) if t.is_finite() && t >= 0.0 => {
                        tolerances.per_metric.push((key.to_string(), t));
                    }
                    _ => {
                        eprintln!("error: bad tolerance in {value:?}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            "--metric-dir" => {
                let Some(value) = args.get(i + 1) else {
                    return usage();
                };
                let Some((key, dir)) = value.split_once('=') else {
                    eprintln!("error: --metric-dir wants KEY=lower|higher|info, got {value:?}");
                    return ExitCode::from(2);
                };
                match Direction::parse(dir) {
                    Ok(d) => tolerances.per_metric_direction.push((key.to_string(), d)),
                    Err(e) => {
                        eprintln!("error: {e}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("error: unknown flag {other:?}");
                return usage();
            }
        }
    }
    let base = match std::fs::read_to_string(&args[0]) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args[0]);
            return ExitCode::from(2);
        }
    };
    let current = match std::fs::read_to_string(&args[1]) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", args[1]);
            return ExitCode::from(2);
        }
    };
    let report = match compare_texts(&base, &current, &tolerances) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    println!("comparing {} -> {}\n", args[0], args[1]);
    finish(&report)
}

fn finish(report: &DiffReport) -> ExitCode {
    print!("{}", report.render());
    if report.regressions().is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Seeds a known >20% regression and exits through the real failure path.
fn self_test() -> ExitCode {
    let base = r#"{
        "wall_clock_s": 10.0,
        "apply_throughput_per_s": 1000.0,
        "bdd_apply_hit_rate": 0.9,
        "counters": {"sat.conflicts": 100}
    }"#;
    // +25% wall clock: past the default ±20% tolerance.
    let regressed = base.replace("10.0", "12.5");

    let clean = compare_texts(base, base, &Tolerances::default()).expect("self-test parse");
    assert!(
        clean.regressions().is_empty(),
        "self-test: identical documents must not regress"
    );
    let report = compare_texts(base, &regressed, &Tolerances::default()).expect("self-test parse");
    let keys: Vec<&str> = report
        .regressions()
        .iter()
        .map(|r| r.key.as_str())
        .collect();
    assert_eq!(
        keys,
        ["wall_clock_s"],
        "self-test: the seeded +25% wall-clock regression must be the only flag"
    );
    // A direction override must be able to gate an informational counter.
    let counter_bloat = base.replace("100", "150");
    let gated = Tolerances {
        per_metric_direction: vec![(
            "counters.sat.conflicts".to_string(),
            Direction::LowerIsBetter,
        )],
        ..Tolerances::default()
    };
    let ungated =
        compare_texts(base, &counter_bloat, &Tolerances::default()).expect("self-test parse");
    assert!(
        ungated.regressions().is_empty(),
        "self-test: counter drift must pass without a direction override"
    );
    let dir_report = compare_texts(base, &counter_bloat, &gated).expect("self-test parse");
    let dir_keys: Vec<&str> = dir_report
        .regressions()
        .iter()
        .map(|r| r.key.as_str())
        .collect();
    assert_eq!(
        dir_keys,
        ["counters.sat.conflicts"],
        "self-test: --metric-dir lower must gate the +50% counter"
    );
    println!("self-test: seeded +25% wall_clock_s regression, expecting exit 1\n");
    finish(&report)
}
