//! Regenerates the paper's tables and the ablation studies.
//!
//! ```text
//! cargo run --release -p syseco-bench --bin tables -- [table1|table2|table3|
//!     ablation-samples|ablation-error-domain|ablation-level|all|dump <dir>]
//! ```
//!
//! `dump <dir>` exports the whole suite as BLIF pairs
//! (`caseN_impl.blif` / `caseN_spec.blif`) for use with the `syseco` CLI or
//! external tools.

use syseco::EcoOptions;
use syseco_bench::{ablation, tables};

fn main() {
    let what = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let options = EcoOptions::default();
    let progress = |m: &str| eprintln!("  {m}");

    let run_table1 = || {
        eprintln!("building the 11-case suite…");
        let cases = eco_workload::table1_cases();
        println!("{}", tables::format_table1(&tables::table1_rows(&cases)));
    };
    let run_table2 = || {
        eprintln!("building the 11-case suite…");
        let cases = eco_workload::table1_cases();
        eprintln!("running commercial proxy / DeltaSyn / syseco on every case…");
        let rows = tables::table2_rows(&cases, &options, progress);
        println!("{}", tables::format_table2(&rows));
    };
    let run_table3 = || {
        eprintln!("building the 4 timing cases…");
        let cases = eco_workload::timing_cases();
        let rows = tables::table3_rows(&cases, &options, progress);
        println!("{}", tables::format_table3(&rows));
    };
    let run_ablation_samples = || {
        eprintln!("ablation A: sampling-domain size sweep on case 5…");
        let case = eco_workload::table1_cases().swap_remove(4);
        let points = ablation::sampling_size_sweep(&case, &[8, 16, 32, 64, 128, 256], &options);
        println!(
            "{}",
            ablation::format_points("Ablation A: sampling-domain size (case 5)", &points)
        );
    };
    let run_ablation_error = || {
        eprintln!("ablation B: error-domain vs random samples on a sparse-error case…");
        let case = ablation::sparse_error_case();
        let points = ablation::sample_policy_comparison(&case, &options);
        println!(
            "{}",
            ablation::format_points("Ablation B: sample policy (sparse-error case)", &points)
        );
    };
    let run_ablation_level = || {
        eprintln!("ablation C: level-driven choice on the timing cases…");
        for case in eco_workload::timing_cases() {
            let points = ablation::level_driven_comparison(&case, &options);
            println!(
                "{}",
                ablation::format_points(
                    &format!("Ablation C: level-driven selection (case {})", case.id),
                    &points
                )
            );
        }
    };

    match what.as_str() {
        "dump" => {
            let dir = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "suite".to_string());
            std::fs::create_dir_all(&dir).expect("create dump directory");
            eprintln!("building and dumping the full suite to {dir}/ …");
            for case in eco_workload::table1_cases()
                .into_iter()
                .chain(eco_workload::timing_cases())
            {
                let ip = format!("{dir}/case{}_impl.blif", case.id);
                let sp = format!("{dir}/case{}_spec.blif", case.id);
                std::fs::write(&ip, eco_netlist::write_blif(&case.implementation))
                    .expect("write impl");
                std::fs::write(&sp, eco_netlist::write_blif(&case.spec)).expect("write spec");
                println!("case {:>2}: {ip} + {sp}", case.id);
            }
        }
        "table1" => run_table1(),
        "table2" => run_table2(),
        "table3" => run_table3(),
        "ablation-samples" => run_ablation_samples(),
        "ablation-error-domain" => run_ablation_error(),
        "ablation-level" => run_ablation_level(),
        "all" => {
            run_table1();
            run_table2();
            run_table3();
            run_ablation_samples();
            run_ablation_error();
            run_ablation_level();
        }
        other => {
            eprintln!(
                "unknown target {other:?}; expected table1|table2|table3|\
                 ablation-samples|ablation-error-domain|ablation-level|all"
            );
            std::process::exit(2);
        }
    }
}
