//! Telemetry overhead benchmark: tracing on vs. off on the scaling case.
//!
//! ```text
//! cargo run --release -p syseco-bench --bin observability -- [out.json]
//! ```
//!
//! Runs the workload scaling case (id 16) twice per mode — telemetry
//! disabled (the default every embedder gets) and telemetry enabled
//! (spans + sharded metrics + snapshot) — and records median wall-clocks,
//! the overhead ratio, and the enabled run's metrics snapshot into
//! `BENCH_observability.json` (default) or the given path.
//!
//! The binary asserts the observability contract directly:
//!
//! * a disabled run records no spans and an empty snapshot,
//! * an enabled run records the full span taxonomy and non-zero SAT/BDD
//!   counters,
//! * the patch is byte-identical in both modes (telemetry must never
//!   steer the search), and
//! * enabled-mode overhead stays under [`MAX_OVERHEAD`] — a deliberately
//!   loose in-binary bound; the design target for *disabled* telemetry is
//!   < 2% vs. the pre-telemetry baseline, which cannot be asserted
//!   in-process and is instead recorded in the output's methodology note.

use std::time::{Duration, Instant};

use eco_netlist::write_blif;
use syseco::telemetry::{Counter, Gauge};
use syseco::{EcoOptions, Session, Telemetry};

const RUNS: usize = 3;
/// In-binary ceiling on enabled/disabled median wall-clock ratio. Loose on
/// purpose: single-core CI hosts jitter by several percent per run.
const MAX_OVERHEAD: f64 = 1.25;

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_observability.json".to_string());

    eprintln!("building scaling case (id 16)…");
    let case = eco_workload::scaling_case();
    let options = EcoOptions::builder().seed(16).jobs(1).build();

    // Warm-up run; its patch is the identity reference for both modes.
    let session = Session::new(options.clone());
    let reference = session
        .run(&case.implementation, &case.spec)
        .expect("rectification failed");
    assert!(
        reference.trace.is_empty(),
        "disabled telemetry must record no spans"
    );
    assert!(
        session.metrics_snapshot().is_empty(),
        "disabled telemetry must record no metrics"
    );
    let reference_blif = write_blif(&reference.patched);

    // Telemetry off: the cost every embedder pays by default.
    let off_samples: Vec<Duration> = (0..RUNS)
        .map(|_| {
            let t0 = Instant::now();
            let r = session
                .run(&case.implementation, &case.spec)
                .expect("rectification failed");
            let dt = t0.elapsed();
            assert!(r.trace.is_empty());
            dt
        })
        .collect();
    let off_median = median(off_samples);
    eprintln!("telemetry off: median {off_median:.2?} over {RUNS} runs");

    // Telemetry on: spans + metrics shards + end-of-run snapshot.
    let mut span_count = 0usize;
    let mut last_snapshot = None;
    let on_samples: Vec<Duration> = (0..RUNS)
        .map(|_| {
            let telemetry = Telemetry::enabled();
            let traced = Session::new(options.clone()).with_telemetry(&telemetry);
            let t0 = Instant::now();
            let r = traced
                .run(&case.implementation, &case.spec)
                .expect("rectification failed");
            let snapshot = traced.metrics_snapshot();
            let dt = t0.elapsed();
            assert_eq!(
                write_blif(&r.patched),
                reference_blif,
                "telemetry must not change the patch"
            );
            for name in ["run", "detect", "search", "validate", "merge"] {
                assert!(
                    r.trace.iter().any(|s| s.name == name),
                    "enabled trace missing span {name:?}"
                );
            }
            assert!(snapshot.counter(Counter::SatConflicts) > 0);
            assert!(snapshot.counter(Counter::BddApplyHits) > 0);
            assert!(snapshot.gauge(Gauge::BddPeakNodes) > 0);
            span_count = r.trace.len();
            last_snapshot = Some(snapshot);
            dt
        })
        .collect();
    let on_median = median(on_samples);
    eprintln!("telemetry on:  median {on_median:.2?} over {RUNS} runs");

    let overhead = on_median.as_secs_f64() / off_median.as_secs_f64();
    eprintln!("overhead ratio (on/off): {overhead:.3}");
    assert!(
        overhead < MAX_OVERHEAD,
        "enabled-telemetry overhead {overhead:.3} exceeds {MAX_OVERHEAD}"
    );

    let snapshot = last_snapshot.expect("at least one traced run");
    let hits = snapshot.counter(Counter::BddApplyHits);
    let misses = snapshot.counter(Counter::BddApplyMisses);
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"case\": \"{}\",\n", case.name));
    json.push_str("  \"jobs\": 1,\n");
    json.push_str(&format!("  \"timed_runs_per_mode\": {RUNS},\n"));
    json.push_str(&format!(
        "  \"telemetry_off_median_wall_clock_s\": {:.6},\n",
        off_median.as_secs_f64()
    ));
    json.push_str(&format!(
        "  \"telemetry_on_median_wall_clock_s\": {:.6},\n",
        on_median.as_secs_f64()
    ));
    json.push_str(&format!("  \"enabled_overhead_ratio\": {overhead:.4},\n"));
    json.push_str(&format!("  \"trace_spans\": {span_count},\n"));
    json.push_str("  \"patch_byte_identical_across_modes\": true,\n");
    json.push_str("  \"metrics_snapshot\": {\n    \"counters\": {");
    for (i, (name, value)) in snapshot.counters().enumerate() {
        json.push_str(&format!(
            "{}\n      \"{name}\": {value}",
            if i > 0 { "," } else { "" }
        ));
    }
    json.push_str("\n    },\n    \"gauges\": {");
    for (i, (name, value)) in snapshot.gauges().enumerate() {
        json.push_str(&format!(
            "{}\n      \"{name}\": {value}",
            if i > 0 { "," } else { "" }
        ));
    }
    json.push_str("\n    }\n  },\n");
    json.push_str(&format!(
        "  \"bdd_apply_hit_rate\": {:.4},\n",
        hits as f64 / (hits + misses).max(1) as f64
    ));
    json.push_str(
        "  \"methodology\": \"Median of 3 timed runs per mode after one warm-up, jobs=1, \
         seed 16, release profile. The disabled-telemetry path is the default every caller \
         gets and is required to stay within 2% of the pre-telemetry baseline \
         (BENCH_parallel.json jobs=1 median, recorded on the same host); compare \
         telemetry_off_median_wall_clock_s against that file after regenerating both on \
         one quiet host. The in-binary assertion bounds the *enabled* overhead ratio \
         (on/off) instead, which is host-comparable within a single process run.\"\n",
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
