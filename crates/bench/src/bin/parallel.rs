//! Thread-scaling benchmark for the per-output rectification scheduler.
//!
//! ```text
//! cargo run --release -p syseco-bench --bin parallel -- [out.json]
//! ```
//!
//! Runs the workload scaling case (id 16, >= 8 failing bit-outputs) at
//! `--jobs` 1/2/4/8, checks the patch is byte-identical at every worker
//! count, and records wall-clocks plus the host's available parallelism
//! into `BENCH_parallel.json` (default) or the given path.
//!
//! Wall-clocks are the median of [`RUNS`] timed runs after one warm-up;
//! speedups are whatever the host really delivers — on a single-core
//! container every row is expected to be ~1x.

use std::time::{Duration, Instant};

use eco_netlist::write_blif;
use syseco::{EcoOptions, Syseco};

const JOBS: [usize; 4] = [1, 2, 4, 8];
const RUNS: usize = 3;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);

    eprintln!("building scaling case (id 16)…");
    let case = eco_workload::scaling_case();
    eprintln!(
        "case {}: {} / {} revised bit-outputs, host parallelism {host_parallelism}",
        case.name,
        case.revised_outputs,
        case.implementation_stats().outputs,
    );

    let mut rows = Vec::new();
    let mut reference: Option<(String, usize)> = None;
    for jobs in JOBS {
        let engine = Syseco::new(EcoOptions::builder().seed(16).jobs(jobs).build());
        // Warm-up run (also the patch-identity sample), then timed runs.
        let result = engine
            .rectify(&case.implementation, &case.spec)
            .expect("rectification failed");
        let patch = write_blif(&result.patched);
        let rewires = result.patch.rewires().len();
        match &reference {
            None => reference = Some((patch, rewires)),
            Some((blif, ops)) => {
                assert_eq!(
                    *blif, patch,
                    "jobs={jobs} patched netlist differs from jobs=1"
                );
                assert_eq!(
                    *ops, rewires,
                    "jobs={jobs} rewire count differs from jobs=1"
                );
            }
        }
        let mut samples: Vec<Duration> = (0..RUNS)
            .map(|_| {
                let t0 = Instant::now();
                let r = engine
                    .rectify(&case.implementation, &case.spec)
                    .expect("rectification failed");
                let dt = t0.elapsed();
                assert_eq!(write_blif(&r.patched), *reference.as_ref().unwrap().0);
                dt
            })
            .collect();
        samples.sort();
        let median = samples[RUNS / 2];
        eprintln!("jobs={jobs}: median {median:.2?} over {RUNS} runs");
        rows.push((jobs, median));
    }

    let base = rows[0].1.as_secs_f64();
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"case\": \"{}\",\n", case.name));
    json.push_str(&format!(
        "  \"failing_bit_outputs\": {},\n",
        case.revised_outputs
    ));
    json.push_str(&format!("  \"host_parallelism\": {host_parallelism},\n"));
    json.push_str(&format!("  \"timed_runs_per_point\": {RUNS},\n"));
    json.push_str("  \"patch_byte_identical_across_jobs\": true,\n");
    json.push_str("  \"runs\": [\n");
    for (i, (jobs, median)) in rows.iter().enumerate() {
        let secs = median.as_secs_f64();
        json.push_str(&format!(
            "    {{\"jobs\": {jobs}, \"median_wall_clock_s\": {secs:.6}, \"speedup_vs_jobs1\": {:.3}}}{}\n",
            base / secs,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"note\": \"Wall-clocks measured on this host; with host_parallelism=1 the \
         worker pool cannot speed anything up, and oversubscribing the single core \
         costs cache locality, so rows can dip below 1x. The patch is verified \
         byte-identical at every worker count.\"\n",
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    eprintln!("wrote {out_path}");
}
