//! Persistent-cache warm-start benchmark on the revision-chain workload.
//!
//! ```text
//! cargo run --release -p syseco-bench --bin warm_start -- [out.json]
//! ```
//!
//! Runs the chain cases (ids 17–19: one implementation, cumulatively
//! revised specs) three ways and records the result in `BENCH_cache.json`
//! (default) or the given path:
//!
//! * **cold** — every pass starts from an empty cache directory, so each
//!   step pays the full symbolic-sampling search (steps after the first
//!   may still warm-start from records the pass itself just wrote — that
//!   incremental reuse is reported as `first_visit_hits`);
//! * **warm** — the same passes against the populated cache, where every
//!   step short-circuits to its re-verified run record;
//! * **off** — `CacheMode::Off` with a cache directory configured, which
//!   must leave no files behind and report all-zero cache statistics.
//!
//! Patches are asserted byte-identical across all three modes, and
//! wall-clocks are the median of [`RUNS`] passes.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use eco_netlist::write_blif;
use eco_workload::EcoCase;
use syseco::{CacheMode, EcoOptions, EcoResult, Syseco};

const RUNS: usize = 3;
const SEED: u64 = 17;

fn rectify(case: &EcoCase, dir: Option<&Path>, mode: CacheMode) -> EcoResult {
    let mut builder = EcoOptions::builder().seed(SEED).jobs(1);
    if let Some(dir) = dir {
        builder = builder.cache_dir(dir).cache_mode(mode);
    }
    Syseco::new(builder.build())
        .rectify(&case.implementation, &case.spec)
        .expect("rectification failed")
}

/// Runs every chain step against `dir`, returning the pass wall-clock and
/// the per-step results.
fn pass(cases: &[EcoCase], dir: &Path) -> (Duration, Vec<EcoResult>) {
    let t0 = Instant::now();
    let results = cases
        .iter()
        .map(|case| rectify(case, Some(dir), CacheMode::ReadWrite))
        .collect();
    (t0.elapsed(), results)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cache.json".to_string());
    let dir: PathBuf = std::env::temp_dir().join(format!("eco-bench-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    eprintln!("building revision chain (ids 17-19)…");
    let cases = eco_workload::chain_cases();

    // Reference pass: no cache at all, also the warm-up.
    let reference: Vec<String> = cases
        .iter()
        .map(|case| write_blif(&rectify(case, None, CacheMode::Off).patched))
        .collect();

    // Cold passes: each starts from an empty directory and populates it.
    let mut cold_samples = Vec::new();
    let mut first_visit_hits = 0u64;
    for _ in 0..RUNS {
        let _ = std::fs::remove_dir_all(&dir);
        let (elapsed, results) = pass(&cases, &dir);
        first_visit_hits = results.iter().map(|r| r.rectify.cache_hits).sum();
        for (r, blif) in results.iter().zip(&reference) {
            assert_eq!(&write_blif(&r.patched), blif, "cold patch differs");
        }
        cold_samples.push(elapsed);
    }

    // Warm passes against the directory the last cold pass populated.
    let mut warm_samples = Vec::new();
    let mut warm_hits = 0u64;
    let mut warm_misses = 0u64;
    for _ in 0..RUNS {
        let (elapsed, results) = pass(&cases, &dir);
        warm_hits = results.iter().map(|r| r.rectify.cache_hits).sum();
        warm_misses = results.iter().map(|r| r.rectify.cache_misses).sum();
        for (step, (r, blif)) in results.iter().zip(&reference).enumerate() {
            assert_eq!(&write_blif(&r.patched), blif, "warm patch differs");
            assert!(r.rectify.cache_hits > 0, "step {step} did not hit");
        }
        warm_samples.push(elapsed);
    }
    assert!(warm_hits > 0);

    // CacheMode::Off with a directory configured must be a strict no-op.
    let off_dir = dir.with_extension("off");
    let _ = std::fs::remove_dir_all(&off_dir);
    let off = rectify(&cases[0], Some(&off_dir), CacheMode::Off);
    assert!(!off_dir.exists(), "cache=off created {}", off_dir.display());
    assert_eq!(off.rectify.cache_hits, 0);
    assert_eq!(off.rectify.cache_misses, 0);
    assert_eq!(off.rectify.cache_verify_rejects, 0);
    assert_eq!(off.rectify.cache_corrupt_segments, 0);
    assert_eq!(write_blif(&off.patched), reference[0]);

    cold_samples.sort();
    warm_samples.sort();
    let cold = cold_samples[RUNS / 2];
    let warm = warm_samples[RUNS / 2];
    let speedup = cold.as_secs_f64() / warm.as_secs_f64();
    eprintln!(
        "cold median {cold:.2?}, warm median {warm:.2?} ({speedup:.2}x), \
         warm hits {warm_hits}, first-visit hits {first_visit_hits}"
    );

    let mut json = String::from("{\n");
    json.push_str("  \"workload\": \"revision chain (ids 17-19, shared implementation)\",\n");
    json.push_str(&format!("  \"chain_steps\": {},\n", cases.len()));
    json.push_str(&format!("  \"timed_passes_per_point\": {RUNS},\n"));
    json.push_str(&format!(
        "  \"cold_median_wall_clock_s\": {:.6},\n",
        cold.as_secs_f64()
    ));
    json.push_str(&format!(
        "  \"warm_median_wall_clock_s\": {:.6},\n",
        warm.as_secs_f64()
    ));
    json.push_str(&format!("  \"warm_speedup\": {speedup:.3},\n"));
    json.push_str(&format!("  \"warm_cache_hits\": {warm_hits},\n"));
    json.push_str(&format!("  \"warm_cache_misses\": {warm_misses},\n"));
    json.push_str(&format!("  \"first_visit_hits\": {first_visit_hits},\n"));
    json.push_str("  \"warm_patches_byte_identical_to_cold\": true,\n");
    json.push_str("  \"cache_off_is_no_op\": true,\n");
    json.push_str(
        "  \"note\": \"Cold passes rebuild the cache from an empty directory; warm \
         passes replay stored run records after SAT re-verification, skipping the \
         per-output symbolic-sampling searches. first_visit_hits counts per-output \
         records reused across chain steps within a single cold pass (the chain \
         shares one implementation, so unchanged failing cones hit on their first \
         visit). Patches are verified byte-identical in every mode.\"\n",
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write benchmark json");
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!("wrote {out_path}");
}
