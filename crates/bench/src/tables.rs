//! Regeneration of Tables 1–3.

use std::time::Duration;

use eco_netlist::CircuitStats;
use eco_timing::{DelayModel, TimingReport};
use eco_workload::EcoCase;
use syseco::baseline::{cone, deltasyn};
use syseco::{verify_rectification, EcoOptions, EcoResult, PatchStats, Syseco};

/// One row of Table 1: characteristics of an ECO test case.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Case id.
    pub id: u32,
    /// Implementation statistics.
    pub stats: CircuitStats,
    /// Bit-level outputs affected by the revision.
    pub revised_outputs: usize,
    /// Percentage of outputs affected.
    pub percent: f64,
}

/// Computes Table 1 for the standard suite.
pub fn table1_rows(cases: &[EcoCase]) -> Vec<Table1Row> {
    cases
        .iter()
        .map(|case| Table1Row {
            id: case.id,
            stats: case.implementation_stats(),
            revised_outputs: case.revised_outputs,
            percent: case.revised_percent(),
        })
        .collect()
}

/// Renders Table 1 in the paper's column layout.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::from(
        "Table 1: Characteristics of ECO test cases.\n\
         | id | inputs | outputs |  gates |   nets |  sinks | rev.outs |    % |\n\
         |----|--------|---------|--------|--------|--------|----------|------|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {:>2} | {:>6} | {:>7} | {:>6} | {:>6} | {:>6} | {:>8} | {:>4.1} |\n",
            r.id,
            r.stats.inputs,
            r.stats.outputs,
            r.stats.gates,
            r.stats.nets,
            r.stats.sinks,
            r.revised_outputs,
            r.percent
        ));
    }
    out
}

/// One engine's patch attributes in a Table 2 row.
#[derive(Debug, Clone, Copy)]
pub struct PatchCell {
    /// Patch attributes.
    pub stats: PatchStats,
    /// Wall-clock runtime.
    pub time: Duration,
    /// Whether the patched design verified equivalent to the spec.
    pub verified: bool,
}

impl PatchCell {
    fn from_result(result: &EcoResult, spec: &eco_netlist::Circuit) -> Self {
        PatchCell {
            stats: result.stats,
            time: result.runtime,
            verified: verify_rectification(&result.patched, spec).unwrap_or(false),
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Case id.
    pub id: u32,
    /// Designer's estimate (technology cells).
    pub estimate: usize,
    /// Commercial-tool proxy (cone rewrite).
    pub commercial: PatchCell,
    /// DeltaSyn-style baseline.
    pub deltasyn: PatchCell,
    /// The syseco engine.
    pub syseco: PatchCell,
}

/// Average reduction ratios of syseco relative to DeltaSyn (Table 2 footer).
#[derive(Debug, Clone, Copy, Default)]
pub struct ReductionRatios {
    /// Patch inputs ratio.
    pub inputs: f64,
    /// Patch outputs ratio.
    pub outputs: f64,
    /// Patch gates ratio.
    pub gates: f64,
    /// Patch nets ratio.
    pub nets: f64,
}

/// Runs all three engines over the suite.
///
/// `progress` receives one message per completed case (use
/// `|m| eprintln!("{m}")` from binaries).
pub fn table2_rows(
    cases: &[EcoCase],
    options: &EcoOptions,
    mut progress: impl FnMut(&str),
) -> Vec<Table2Row> {
    let engine = Syseco::new(options.clone());
    let mut rows = Vec::with_capacity(cases.len());
    for case in cases {
        let commercial = cone::rectify(&case.implementation, &case.spec)
            .expect("cone baseline cannot fail on well-formed cases");
        let ds = deltasyn::rectify(&case.implementation, &case.spec)
            .expect("deltasyn baseline cannot fail on well-formed cases");
        let sy = engine
            .rectify(&case.implementation, &case.spec)
            .expect("syseco cannot fail on well-formed cases");
        let row = Table2Row {
            id: case.id,
            estimate: case.designer_estimate,
            commercial: PatchCell::from_result(&commercial, &case.spec),
            deltasyn: PatchCell::from_result(&ds, &case.spec),
            syseco: PatchCell::from_result(&sy, &case.spec),
        };
        progress(&format!(
            "case {:>2}: commercial {:>4}g {:>6.2?} | deltasyn {:>4}g {:>6.2?} | syseco {:>4}g {:>6.2?}{}{}",
            case.id,
            row.commercial.stats.gates,
            row.commercial.time,
            row.deltasyn.stats.gates,
            row.deltasyn.time,
            row.syseco.stats.gates,
            row.syseco.time,
            if row.syseco.verified { "" } else { "  [syseco UNVERIFIED]" },
            if row.deltasyn.verified { "" } else { "  [deltasyn UNVERIFIED]" },
        ));
        rows.push(row);
    }
    rows
}

/// Computes the average syseco/DeltaSyn reduction ratios.
///
/// Rows where the DeltaSyn attribute is zero are skipped for that
/// attribute (no meaningful ratio).
pub fn reduction_ratios(rows: &[Table2Row]) -> ReductionRatios {
    let mut acc = [0.0f64; 4];
    let mut cnt = [0usize; 4];
    for row in rows {
        let pairs = [
            (row.syseco.stats.inputs, row.deltasyn.stats.inputs),
            (row.syseco.stats.outputs, row.deltasyn.stats.outputs),
            (row.syseco.stats.gates, row.deltasyn.stats.gates),
            (row.syseco.stats.nets, row.deltasyn.stats.nets),
        ];
        for (k, (s, d)) in pairs.into_iter().enumerate() {
            if d > 0 {
                acc[k] += s as f64 / d as f64;
                cnt[k] += 1;
            }
        }
    }
    let avg = |k: usize| {
        if cnt[k] == 0 {
            0.0
        } else {
            acc[k] / cnt[k] as f64
        }
    };
    ReductionRatios {
        inputs: avg(0),
        outputs: avg(1),
        gates: avg(2),
        nets: avg(3),
    }
}

/// Renders Table 2 in the paper's column layout.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::from(
        "Table 2: Patch attributes: designer estimate / commercial proxy / DeltaSyn / syseco.\n\
         | id | est |  commercial (in/out/g/n, time)  |   DeltaSyn (in/out/g/n, time)   |    syseco (in/out/g/n, time)    |\n\
         |----|-----|---------------------------------|---------------------------------|---------------------------------|\n",
    );
    let cell = |c: &PatchCell| {
        format!(
            "{:>4}/{:>4}/{:>4}/{:>4} {:>7.2?}{}",
            c.stats.inputs,
            c.stats.outputs,
            c.stats.gates,
            c.stats.nets,
            c.time,
            if c.verified { " " } else { "!" }
        )
    };
    for r in rows {
        out.push_str(&format!(
            "| {:>2} | {:>3} | {:>31} | {:>31} | {:>31} |\n",
            r.id,
            r.estimate,
            cell(&r.commercial),
            cell(&r.deltasyn),
            cell(&r.syseco)
        ));
    }
    let ratios = reduction_ratios(rows);
    out.push_str(&format!(
        "average reduction ratios relative to DeltaSyn: inputs {:.2}  outputs {:.2}  gates {:.2}  nets {:.2}\n",
        ratios.inputs, ratios.outputs, ratios.gates, ratios.nets
    ));
    out
}

/// One row of Table 3: patch size and slack impact.
#[derive(Debug, Clone, Copy)]
pub struct Table3Row {
    /// Case id (12–15).
    pub id: u32,
    /// DeltaSyn patch gates.
    pub deltasyn_gates: usize,
    /// Post-patch worst slack with the DeltaSyn patch (ps).
    pub deltasyn_slack: f64,
    /// syseco patch gates.
    pub syseco_gates: usize,
    /// Post-patch worst slack with the syseco patch (ps).
    pub syseco_slack: f64,
}

/// Runs the Table 3 experiment: both engines on the timing cases, slack
/// measured against a clock set at the *original* implementation's critical
/// delay (so any deepening shows up as negative slack).
pub fn table3_rows(
    cases: &[EcoCase],
    options: &EcoOptions,
    mut progress: impl FnMut(&str),
) -> Vec<Table3Row> {
    let model = DelayModel::default();
    let mut sy_options = options.clone();
    sy_options.level_driven = true;
    let engine = Syseco::new(sy_options);
    let mut rows = Vec::with_capacity(cases.len());
    for case in cases {
        let probe = TimingReport::analyze(&case.implementation, &model, 0.0)
            .expect("acyclic implementation");
        let period = probe.critical_delay();
        let ds = deltasyn::rectify(&case.implementation, &case.spec)
            .expect("deltasyn baseline cannot fail");
        let sy = engine
            .rectify(&case.implementation, &case.spec)
            .expect("syseco cannot fail");
        let ds_slack = TimingReport::analyze(&ds.patched, &model, period)
            .expect("acyclic patched design")
            .worst_slack();
        let sy_slack = TimingReport::analyze(&sy.patched, &model, period)
            .expect("acyclic patched design")
            .worst_slack();
        let row = Table3Row {
            id: case.id,
            deltasyn_gates: ds.stats.gates,
            deltasyn_slack: ds_slack,
            syseco_gates: sy.stats.gates,
            syseco_slack: sy_slack,
        };
        progress(&format!(
            "case {:>2}: deltasyn {}g slack {:>7.1}ps | syseco {}g slack {:>7.1}ps",
            row.id, row.deltasyn_gates, row.deltasyn_slack, row.syseco_gates, row.syseco_slack
        ));
        rows.push(row);
    }
    rows
}

/// Renders Table 3 in the paper's column layout.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from(
        "Table 3: Rectification impact on design slack.\n\
         | id | DeltaSyn gates | DeltaSyn slack,ps | syseco gates | syseco slack,ps |\n\
         |----|----------------|-------------------|--------------|-----------------|\n",
    );
    for r in rows {
        out.push_str(&format!(
            "| {:>2} | {:>14} | {:>17.1} | {:>12} | {:>15.1} |\n",
            r.id, r.deltasyn_gates, r.deltasyn_slack, r.syseco_gates, r.syseco_slack
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_workload::{build_case, CaseParams, RevisionKind};

    fn tiny_case() -> EcoCase {
        build_case(&CaseParams {
            id: 90,
            name: "tiny",
            seed: 7,
            input_words: 3,
            width: 3,
            logic_signals: 10,
            output_words: 3,
            revisions: vec![(0, RevisionKind::PolarityFlip)],
            heavy_optimization: true,
            aggressive_optimization: false,
        })
    }

    #[test]
    fn table1_rows_match_cases() {
        let cases = vec![tiny_case()];
        let rows = table1_rows(&cases);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].id, 90);
        assert!(rows[0].stats.gates > 0);
        let text = format_table1(&rows);
        assert!(text.contains("| 90 |"));
    }

    #[test]
    fn table2_runs_all_engines_verified() {
        let cases = vec![tiny_case()];
        let rows = table2_rows(&cases, &EcoOptions::with_seed(1), |_| {});
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.commercial.verified, "cone baseline must verify");
        assert!(r.deltasyn.verified, "deltasyn must verify");
        assert!(r.syseco.verified, "syseco must verify");
        // syseco should be no worse than the cone proxy on gates.
        assert!(r.syseco.stats.gates <= r.commercial.stats.gates);
        let text = format_table2(&rows);
        assert!(text.contains("average reduction ratios"));
    }

    #[test]
    fn table3_reports_slack() {
        let cases = vec![tiny_case()];
        let rows = table3_rows(&cases, &EcoOptions::with_seed(1), |_| {});
        assert_eq!(rows.len(), 1);
        let text = format_table3(&rows);
        assert!(text.contains("slack"));
    }

    #[test]
    fn ratios_skip_zero_denominators() {
        let zero = PatchCell {
            stats: PatchStats::default(),
            time: Duration::ZERO,
            verified: true,
        };
        let row = Table2Row {
            id: 1,
            estimate: 1,
            commercial: zero,
            deltasyn: zero,
            syseco: zero,
        };
        let r = reduction_ratios(&[row]);
        assert_eq!(r.gates, 0.0);
    }
}
