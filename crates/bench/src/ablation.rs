//! Ablation studies backing the paper's design claims.
//!
//! * **A — sampling-domain size** (§5.1): sweeping `N` trades false
//!   positives (refinements) against per-attempt BDD cost.
//! * **B — error-domain vs random samples** (§5.1: "fewer false positives
//!   when sampled assignments are from the error domain").
//! * **C — level-driven rewiring choice** (§6, the basis of Table 3).

use std::time::Duration;

use eco_timing::{DelayModel, TimingReport};
use eco_workload::{build_case, CaseParams, EcoCase, RevisionKind};
use syseco::{verify_rectification, EcoOptions, Syseco};

/// Result of one ablation configuration.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Configuration label (e.g. `N=32` or `random-samples`).
    pub label: String,
    /// Domain refinements (false positives) across the run.
    pub refinements: usize,
    /// SAT validations across the run.
    pub validations: usize,
    /// Outputs that needed the whole-cone fallback.
    pub fallbacks: usize,
    /// Outputs rectified by genuine rewiring search.
    pub rewired: usize,
    /// Patch gates.
    pub patch_gates: usize,
    /// Wall-clock runtime.
    pub runtime: Duration,
    /// Post-patch worst slack (only meaningful for ablation C).
    pub slack: f64,
    /// Whether the result verified.
    pub verified: bool,
}

fn run_config(case: &EcoCase, options: &EcoOptions, label: String) -> AblationPoint {
    let engine = Syseco::new(options.clone());
    let result = engine
        .rectify(&case.implementation, &case.spec)
        .expect("rectification cannot fail on well-formed cases");
    let model = DelayModel::default();
    let period = TimingReport::analyze(&case.implementation, &model, 0.0)
        .expect("acyclic")
        .critical_delay();
    let slack = TimingReport::analyze(&result.patched, &model, period)
        .expect("acyclic")
        .worst_slack();
    AblationPoint {
        label,
        refinements: result.rectify.refinements,
        validations: result.rectify.validations,
        fallbacks: result.rectify.fallbacks,
        rewired: result.rectify.rewire_rectified,
        patch_gates: result.stats.gates,
        runtime: result.runtime,
        slack,
        verified: verify_rectification(&result.patched, &case.spec).unwrap_or(false),
    }
}

/// Ablation A: sweep the sampling-domain size `N`.
pub fn sampling_size_sweep(
    case: &EcoCase,
    sizes: &[usize],
    base: &EcoOptions,
) -> Vec<AblationPoint> {
    sizes
        .iter()
        .map(|&n| {
            let mut options = base.clone();
            options.num_samples = n;
            run_config(case, &options, format!("N={n}"))
        })
        .collect()
}

/// Ablation B: error-domain vs random vs mixed sampling policies.
pub fn sample_policy_comparison(case: &EcoCase, base: &EcoOptions) -> Vec<AblationPoint> {
    use syseco::SamplePolicy;
    [
        (SamplePolicy::ErrorDomain, "error-domain"),
        (SamplePolicy::Random, "random"),
        (SamplePolicy::Mixed, "mixed"),
    ]
    .into_iter()
    .map(|(policy, label)| {
        let mut options = base.clone();
        options.sample_policy = policy;
        run_config(case, &options, label.into())
    })
    .collect()
}

/// A dedicated sparse-error case for ablation B: the injected revision
/// flips a word only when a helper word equals a random constant, so the
/// error domain is a `2^-width` sliver of the input space. Uniform random
/// sampling essentially never sees it; error-domain sampling does — the
/// situation behind the paper's §5.1 claim.
pub fn sparse_error_case() -> EcoCase {
    build_case(&CaseParams {
        id: 80,
        name: "sparse",
        seed: 0x0580,
        input_words: 8,
        width: 8,
        logic_signals: 30,
        output_words: 4,
        revisions: vec![(0, RevisionKind::SparseTrigger)],
        heavy_optimization: true,
        aggressive_optimization: false,
    })
}

/// Ablation C: level-driven rewiring selection on vs off.
pub fn level_driven_comparison(case: &EcoCase, base: &EcoOptions) -> Vec<AblationPoint> {
    let mut on = base.clone();
    on.level_driven = true;
    let mut off = base.clone();
    off.level_driven = false;
    vec![
        run_config(case, &on, "level-driven".into()),
        run_config(case, &off, "depth-blind".into()),
    ]
}

/// Renders ablation points as an aligned table.
pub fn format_points(title: &str, points: &[AblationPoint]) -> String {
    let mut out = format!(
        "{title}\n| {:<14} | refine | valid | rewired | fallback | patch gates | slack,ps |   runtime | ok |\n",
        "config"
    );
    out.push_str(
        "|----------------|--------|-------|---------|----------|-------------|----------|-----------|----|\n",
    );
    for p in points {
        out.push_str(&format!(
            "| {:<14} | {:>6} | {:>5} | {:>7} | {:>8} | {:>11} | {:>8.1} | {:>9.2?} | {:>2} |\n",
            p.label,
            p.refinements,
            p.validations,
            p.rewired,
            p.fallbacks,
            p.patch_gates,
            p.slack,
            p.runtime,
            if p.verified { "y" } else { "N" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_workload::{build_case, CaseParams, RevisionKind};

    fn tiny_case() -> EcoCase {
        build_case(&CaseParams {
            id: 91,
            name: "tiny",
            seed: 13,
            input_words: 3,
            width: 3,
            logic_signals: 8,
            output_words: 2,
            revisions: vec![(0, RevisionKind::ConstantChange)],
            heavy_optimization: true,
            aggressive_optimization: false,
        })
    }

    #[test]
    fn sampling_sweep_runs_and_verifies() {
        let case = tiny_case();
        let points = sampling_size_sweep(&case, &[4, 16], &EcoOptions::with_seed(3));
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.verified, "{} must verify", p.label);
        }
        let text = format_points("ablation A", &points);
        assert!(text.contains("N=4"));
    }

    #[test]
    fn sample_policy_comparison_runs() {
        let case = tiny_case();
        let points = sample_policy_comparison(&case, &EcoOptions::with_seed(3));
        assert_eq!(points.len(), 3); // error-domain, random, mixed
        assert!(points.iter().all(|p| p.verified));
    }

    #[test]
    fn level_driven_comparison_runs() {
        let case = tiny_case();
        let points = level_driven_comparison(&case, &EcoOptions::with_seed(3));
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.verified));
    }
}
