//! Benchmark harness regenerating the paper's evaluation tables.
//!
//! * [`tables::table1_rows`] — Table 1: test-case characteristics,
//! * [`tables::table2_rows`] — Table 2: patch attributes from the designer
//!   estimate, the commercial-tool proxy, the DeltaSyn baseline, and syseco,
//!   plus the average syseco/DeltaSyn reduction ratios,
//! * [`tables::table3_rows`] — Table 3: patch gates and post-patch slack,
//!   DeltaSyn vs syseco (level-driven selection on),
//! * [`ablation`] — the three ablation studies from DESIGN.md: sampling
//!   domain size, error-domain vs random samples, level-driven choice,
//! * [`diff`] — BENCH-file regression comparison behind the `bench_diff`
//!   binary and the CI perf gate (DESIGN.md §14).
//!
//! Everything is deterministic; run through the `tables` binary:
//!
//! ```text
//! cargo run --release -p syseco-bench --bin tables -- table2
//! ```

pub mod ablation;
pub mod diff;
pub mod tables;
