//! BENCH-file regression comparison (the `bench_diff` binary's engine).
//!
//! Compares two benchmark JSON documents (a committed baseline like
//! `BENCH_observability.json` and a freshly regenerated copy) metric by
//! metric. Each numeric leaf is classified by its key into a comparison
//! direction:
//!
//! * **lower is better** — wall-clock and duration keys (`*_s`, `*_us`,
//!   `*_ms`, `*wall_clock*`), overhead ratios, allocation counts;
//!   regression when `current > base * (1 + tolerance)`,
//! * **higher is better** — `*throughput*`, `*_per_s`, `*hit_rate*`;
//!   regression when `current < base * (1 - tolerance)`,
//! * **informational** — everything else (raw counters, span counts);
//!   reported but never a regression, since deterministic counters are
//!   expected to change whenever the algorithm changes.
//!
//! The default tolerance is deliberately loose ([`DEFAULT_TOLERANCE`],
//! ±20%): benchmark hosts jitter, and the CI perf gate built on this is a
//! soft signal, not a merge blocker. Per-metric overrides tighten or
//! loosen individual keys, and per-metric *direction* overrides promote
//! informational counters (e.g. `direct_build.peak_nodes`) into
//! lower-is-better gates so structural wins stay locked in.

use std::fmt::Write as _;

use eco_telemetry::json::{parse, Value};

/// Default relative tolerance for directional metrics.
pub const DEFAULT_TOLERANCE: f64 = 0.20;

/// How a metric's two values are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Time-like: regression when the current value grows past tolerance.
    LowerIsBetter,
    /// Rate-like: regression when the current value drops past tolerance.
    HigherIsBetter,
    /// Counter-like: drift is reported but never flagged.
    Informational,
}

/// Classifies a flattened metric key into its comparison direction.
pub fn direction(key: &str) -> Direction {
    // The leaf segment names the unit; container segments are grouping.
    let leaf = key.rsplit('.').next().unwrap_or(key);
    if leaf.contains("throughput") || leaf.ends_with("_per_s") || leaf.contains("hit_rate") {
        Direction::HigherIsBetter
    } else if leaf.ends_with("_s")
        || leaf.ends_with("_us")
        || leaf.ends_with("_ms")
        // Dotted telemetry names carry the unit as their own segment
        // ("validate.us").
        || matches!(leaf, "s" | "ms" | "us")
        || leaf.contains("wall_clock")
        || leaf.contains("overhead")
        || leaf.contains("bytes")
        || leaf.contains("allocations")
    {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

impl Direction {
    /// Parses a CLI/CI direction name.
    ///
    /// # Errors
    ///
    /// Returns the offending token when it is not one of
    /// `lower` | `higher` | `info`.
    pub fn parse(s: &str) -> Result<Direction, String> {
        match s {
            "lower" => Ok(Direction::LowerIsBetter),
            "higher" => Ok(Direction::HigherIsBetter),
            "info" => Ok(Direction::Informational),
            other => Err(format!(
                "unknown direction {other:?} (expected lower|higher|info)"
            )),
        }
    }
}

/// Tolerances for [`compare`]: a default plus per-metric overrides.
///
/// Direction overrides make otherwise-informational counters gate-worthy
/// (`direct_build.peak_nodes=lower` turns node-count growth into a
/// regression) or silence a directional key whose unit heuristic
/// misclassifies it; they take precedence over [`direction`]'s key-based
/// classification.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Relative tolerance applied to every directional metric.
    pub default: f64,
    /// `(key, tolerance)` overrides; exact flattened-key match.
    pub per_metric: Vec<(String, f64)>,
    /// `(key, direction)` overrides; exact flattened-key match.
    pub per_metric_direction: Vec<(String, Direction)>,
}

impl Default for Tolerances {
    fn default() -> Self {
        Tolerances {
            default: DEFAULT_TOLERANCE,
            per_metric: Vec::new(),
            per_metric_direction: Vec::new(),
        }
    }
}

impl Tolerances {
    fn for_key(&self, key: &str) -> f64 {
        self.per_metric
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, t)| *t)
            .unwrap_or(self.default)
    }

    fn direction_for(&self, key: &str) -> Direction {
        self.per_metric_direction
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, d)| *d)
            .unwrap_or_else(|| direction(key))
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Flattened dotted key, e.g. `metrics_snapshot.counters.sat.conflicts`.
    pub key: String,
    /// Baseline value.
    pub base: f64,
    /// Current value.
    pub current: f64,
    /// Relative change `(current - base) / base`; infinite when the
    /// baseline is zero and the current value is not.
    pub change: f64,
    /// Comparison direction the key classified into.
    pub direction: Direction,
    /// Tolerance applied to this row.
    pub tolerance: f64,
    /// Whether the change crossed the tolerance in the bad direction.
    pub regressed: bool,
}

/// The full comparison of two BENCH documents.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every metric present in both documents, in baseline key order.
    pub rows: Vec<DiffRow>,
    /// Keys only the baseline has (renamed or dropped metrics).
    pub missing_in_current: Vec<String>,
    /// Keys only the current document has (new metrics).
    pub added_in_current: Vec<String>,
}

impl DiffReport {
    /// The rows that crossed their tolerance in the bad direction.
    pub fn regressions(&self) -> Vec<&DiffRow> {
        self.rows.iter().filter(|r| r.regressed).collect()
    }

    /// Renders the comparison as a markdown table plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("| metric | baseline | current | change | verdict |\n");
        out.push_str("| --- | ---: | ---: | ---: | --- |\n");
        for row in &self.rows {
            let verdict = if row.regressed {
                "**REGRESSED**"
            } else {
                match row.direction {
                    Direction::Informational => "info",
                    _ => "ok",
                }
            };
            let change = if row.change.is_infinite() {
                "new".to_string()
            } else {
                format!("{:+.1}%", row.change * 100.0)
            };
            let _ = writeln!(
                out,
                "| `{}` | {} | {} | {} | {} |",
                row.key,
                format_value(row.base),
                format_value(row.current),
                change,
                verdict
            );
        }
        for key in &self.missing_in_current {
            let _ = writeln!(out, "| `{key}` | — | — | — | missing in current |");
        }
        for key in &self.added_in_current {
            let _ = writeln!(out, "| `{key}` | — | — | — | new in current |");
        }
        let regressions = self.regressions();
        if regressions.is_empty() {
            out.push_str("\nno regressions\n");
        } else {
            let _ = writeln!(out, "\n{} regression(s):", regressions.len());
            for row in regressions {
                let _ = writeln!(
                    out,
                    "  {}: {} -> {} ({:+.1}%, tolerance ±{:.0}%)",
                    row.key,
                    format_value(row.base),
                    format_value(row.current),
                    row.change * 100.0,
                    row.tolerance * 100.0
                );
            }
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:.4}")
    }
}

/// Flattens a JSON document into `(dotted key, number)` leaves in
/// document order. Arrays and non-numeric leaves are skipped: BENCH
/// files carry their comparable signal in scalar fields, and time-series
/// arrays are not stable enough to gate on.
pub fn flatten(value: &Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    fn walk(prefix: &str, value: &Value, out: &mut Vec<(String, f64)>) {
        match value {
            Value::Number(n) => out.push((prefix.to_string(), *n)),
            Value::Object(fields) => {
                for (key, child) in fields {
                    let path = if prefix.is_empty() {
                        key.clone()
                    } else {
                        format!("{prefix}.{key}")
                    };
                    walk(&path, child, out);
                }
            }
            _ => {}
        }
    }
    walk("", value, &mut out);
    out
}

/// Compares two parsed BENCH documents.
pub fn compare(base: &Value, current: &Value, tolerances: &Tolerances) -> DiffReport {
    let base_flat = flatten(base);
    let current_flat = flatten(current);
    let mut report = DiffReport::default();
    for (key, base_value) in &base_flat {
        let Some((_, current_value)) = current_flat.iter().find(|(k, _)| k == key) else {
            report.missing_in_current.push(key.clone());
            continue;
        };
        let direction = tolerances.direction_for(key);
        let tolerance = tolerances.for_key(key);
        let change = if *base_value == 0.0 {
            if *current_value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (current_value - base_value) / base_value
        };
        let regressed = match direction {
            Direction::LowerIsBetter => *current_value > base_value * (1.0 + tolerance),
            Direction::HigherIsBetter => *current_value < base_value * (1.0 - tolerance),
            Direction::Informational => false,
        };
        report.rows.push(DiffRow {
            key: key.clone(),
            base: *base_value,
            current: *current_value,
            change,
            direction,
            tolerance,
            regressed,
        });
    }
    for (key, _) in &current_flat {
        if !base_flat.iter().any(|(k, _)| k == key) {
            report.added_in_current.push(key.clone());
        }
    }
    report
}

/// Parses and compares two BENCH JSON texts.
///
/// # Errors
///
/// Returns a message naming the document that failed to parse.
pub fn compare_texts(
    base: &str,
    current: &str,
    tolerances: &Tolerances,
) -> Result<DiffReport, String> {
    let base = parse(base).map_err(|e| format!("baseline: {e}"))?;
    let current = parse(current).map_err(|e| format!("current: {e}"))?;
    Ok(compare(&base, &current, tolerances))
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
        "wall_clock_s": 10.0,
        "apply_throughput_per_s": 1000.0,
        "bdd_apply_hit_rate": 0.9,
        "metrics": {"sat": {"conflicts": 100}},
        "trace_spans": 42
    }"#;

    #[test]
    fn keys_classify_into_documented_directions() {
        assert_eq!(
            direction("telemetry_off_median_wall_clock_s"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            direction("enabled_overhead_ratio"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction("validate.us"), Direction::LowerIsBetter);
        assert_eq!(
            direction("apply_throughput_per_s"),
            Direction::HigherIsBetter
        );
        assert_eq!(direction("bdd_apply_hit_rate"), Direction::HigherIsBetter);
        assert_eq!(
            direction("metrics_snapshot.counters.sat.conflicts"),
            Direction::Informational
        );
        assert_eq!(direction("trace_spans"), Direction::Informational);
    }

    #[test]
    fn identical_documents_have_no_regressions() {
        let report = compare_texts(BASE, BASE, &Tolerances::default()).unwrap();
        assert!(report.regressions().is_empty());
        assert!(report.missing_in_current.is_empty());
        assert!(report.added_in_current.is_empty());
        assert!(report.render().contains("no regressions"));
    }

    #[test]
    fn drift_within_tolerance_passes() {
        let current = BASE.replace("10.0", "11.5"); // +15% < 20%
        let report = compare_texts(BASE, &current, &Tolerances::default()).unwrap();
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn seeded_wall_clock_regression_is_flagged() {
        let current = BASE.replace("10.0", "12.5"); // +25% > 20%
        let report = compare_texts(BASE, &current, &Tolerances::default()).unwrap();
        let regressions = report.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].key, "wall_clock_s");
        assert!(report.render().contains("**REGRESSED**"));
    }

    #[test]
    fn throughput_and_hit_rate_drops_are_flagged() {
        let current = BASE.replace("1000.0", "700.0").replace("0.9", "0.5");
        let report = compare_texts(BASE, &current, &Tolerances::default()).unwrap();
        let keys: Vec<&str> = report
            .regressions()
            .iter()
            .map(|r| r.key.as_str())
            .collect();
        assert_eq!(keys, ["apply_throughput_per_s", "bdd_apply_hit_rate"]);
    }

    #[test]
    fn counters_only_drift_never_regress() {
        let current = BASE.replace("100", "900");
        let report = compare_texts(BASE, &current, &Tolerances::default()).unwrap();
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn per_metric_override_tightens_one_key() {
        let current = BASE.replace("10.0", "10.8"); // +8%
        let tolerances = Tolerances {
            per_metric: vec![("wall_clock_s".to_string(), 0.05)],
            ..Tolerances::default()
        };
        let report = compare_texts(BASE, &current, &tolerances).unwrap();
        assert_eq!(report.regressions().len(), 1);
    }

    #[test]
    fn direction_parse_round_trips_and_rejects_junk() {
        assert_eq!(Direction::parse("lower"), Ok(Direction::LowerIsBetter));
        assert_eq!(Direction::parse("higher"), Ok(Direction::HigherIsBetter));
        assert_eq!(Direction::parse("info"), Ok(Direction::Informational));
        assert!(Direction::parse("sideways").is_err());
    }

    #[test]
    fn direction_override_gates_an_informational_counter() {
        // `metrics.sat.conflicts` classifies Informational; a lower-is-better
        // override turns its 9x growth into a regression.
        let current = BASE.replace("100", "900");
        let tolerances = Tolerances {
            per_metric_direction: vec![(
                "metrics.sat.conflicts".to_string(),
                Direction::LowerIsBetter,
            )],
            ..Tolerances::default()
        };
        let report = compare_texts(BASE, &current, &tolerances).unwrap();
        let regressions = report.regressions();
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].key, "metrics.sat.conflicts");
        assert_eq!(regressions[0].direction, Direction::LowerIsBetter);
    }

    #[test]
    fn direction_override_silences_a_directional_key() {
        let current = BASE.replace("10.0", "30.0"); // 3x wall clock
        let tolerances = Tolerances {
            per_metric_direction: vec![("wall_clock_s".to_string(), Direction::Informational)],
            ..Tolerances::default()
        };
        let report = compare_texts(BASE, &current, &tolerances).unwrap();
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn direction_override_composes_with_tolerance_override() {
        // Gate the counter AND tighten it: +8% crosses a 5% tolerance.
        let current = BASE.replace("100", "108");
        let tolerances = Tolerances {
            per_metric: vec![("metrics.sat.conflicts".to_string(), 0.05)],
            per_metric_direction: vec![(
                "metrics.sat.conflicts".to_string(),
                Direction::LowerIsBetter,
            )],
            ..Tolerances::default()
        };
        let report = compare_texts(BASE, &current, &tolerances).unwrap();
        assert_eq!(report.regressions().len(), 1);
    }

    #[test]
    fn renamed_keys_are_reported_not_flagged() {
        let current = BASE.replace("wall_clock_s", "run_wall_clock_s");
        let report = compare_texts(BASE, &current, &Tolerances::default()).unwrap();
        assert_eq!(report.missing_in_current, ["wall_clock_s"]);
        assert_eq!(report.added_in_current, ["run_wall_clock_s"]);
        assert!(report.regressions().is_empty());
    }
}
