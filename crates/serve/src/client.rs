//! A small blocking client for the framed protocol, used by the
//! `syseco-load` generator, the CLI smoke tests, and embedders.

use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::frame::{self, FrameError, Message};
use crate::job::{JobRequest, JobStatus, RejectReason};

/// Client-side failure: transport/codec trouble or a protocol-order
/// violation by the daemon. Admission rejections are *not* errors — they
/// are the expected backpressure signal and surface as
/// [`SubmitReply::Rejected`].
#[derive(Debug)]
pub enum ClientError {
    /// Transport or codec failure.
    Frame(FrameError),
    /// The daemon sent a message that violates the protocol order.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Unexpected(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> ClientError {
        ClientError::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Frame(FrameError::Io(e))
    }
}

/// Admission outcome of [`Client::submit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitReply {
    /// Admitted under this job id.
    Accepted(u64),
    /// Refused; retry (on `Overloaded`) or give up.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Daemon-provided detail.
        detail: String,
    },
}

/// Terminal job report as received over the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DoneReport {
    /// Which job.
    pub job_id: u64,
    /// Terminal status.
    pub status: JobStatus,
    /// Degraded output count.
    pub degradations: u32,
    /// Engine wall-clock, µs.
    pub runtime_us: u64,
    /// Patch BLIF text.
    pub patch_blif: String,
    /// Status detail.
    pub detail: String,
}

/// One blocking protocol connection.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sends one raw message.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        frame::write_message(&mut self.stream, msg)
    }

    /// Receives one raw message, blocking until a full frame arrives.
    pub fn recv(&mut self) -> Result<Message, FrameError> {
        frame::read_message(&mut self.stream)
    }

    /// Submits a job and waits for the admission reply, skipping any
    /// interleaved progress frames.
    pub fn submit(&mut self, request: &JobRequest) -> Result<SubmitReply, ClientError> {
        self.send(&Message::Submit(request.clone()))?;
        loop {
            match self.recv()? {
                Message::Accepted { job_id } => return Ok(SubmitReply::Accepted(job_id)),
                Message::Rejected { reason, detail } => {
                    return Ok(SubmitReply::Rejected { reason, detail })
                }
                Message::Progress { .. } => {}
                other => {
                    return Err(ClientError::Unexpected(format!(
                        "kind {} while awaiting admission",
                        other.kind()
                    )))
                }
            }
        }
    }

    /// Requests cancellation of an accepted job.
    pub fn cancel(&mut self, job_id: u64) -> io::Result<()> {
        self.send(&Message::Cancel { job_id })
    }

    /// Waits for the `Done` frame of `job_id`, skipping progress frames.
    ///
    /// This assumes the connection is used for one job at a time (the
    /// load generator's shape); a `Done` for a different id is a
    /// protocol-order error.
    pub fn wait_done(&mut self, job_id: u64) -> Result<DoneReport, ClientError> {
        loop {
            match self.recv()? {
                Message::Progress { .. } => {}
                Message::Done {
                    job_id: done_id,
                    status,
                    degradations,
                    runtime_us,
                    patch_blif,
                    detail,
                } => {
                    if done_id != job_id {
                        return Err(ClientError::Unexpected(format!(
                            "done for job {done_id} while awaiting {job_id}"
                        )));
                    }
                    return Ok(DoneReport {
                        job_id: done_id,
                        status,
                        degradations,
                        runtime_us,
                        patch_blif,
                        detail,
                    });
                }
                other => {
                    return Err(ClientError::Unexpected(format!(
                        "kind {} while awaiting done",
                        other.kind()
                    )))
                }
            }
        }
    }

    /// Sends a drain request (the frame-level equivalent of SIGTERM).
    pub fn shutdown_daemon(&mut self) -> io::Result<()> {
        self.send(&Message::Shutdown)?;
        self.stream.flush()
    }
}
