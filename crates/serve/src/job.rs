//! The job model shared by the wire protocol, the scheduler, and the
//! engine bridge.
//!
//! `eco-serve` is deliberately engine-agnostic: it knows nothing about
//! netlists, SAT, or BDDs. A job is a pair of opaque BLIF strings plus
//! service options; the engine is plugged in through the [`JobRunner`]
//! trait, which `syseco` implements over its `Session` API. This keeps the
//! dependency arrow pointing from the engine crate to the service crate
//! (so `syseco::serve` can re-export this crate) rather than the reverse.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Scheduler lane a job is admitted into. Lower value = served first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Latency-sensitive lane, always served first.
    High = 0,
    /// Default lane.
    Normal = 1,
    /// Batch lane; served when the others are empty, plus a guaranteed
    /// anti-starvation share (see `sched`).
    Low = 2,
}

impl Priority {
    /// Decodes a wire byte.
    pub fn from_u8(raw: u8) -> Option<Priority> {
        match raw {
            0 => Some(Priority::High),
            1 => Some(Priority::Normal),
            2 => Some(Priority::Low),
            _ => None,
        }
    }

    /// Lane index (0 = high, 2 = low).
    pub fn lane(self) -> usize {
        self as usize
    }
}

/// Terminal state of a job. Every admitted job resolves to exactly one of
/// these; the daemon's accounting invariant is
/// `admitted = completed + degraded + cancelled + expired + failed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JobStatus {
    /// Clean rectification: every failing output patched, zero
    /// degradations, patch verified.
    Completed = 0,
    /// Patch produced, but at least one output took a degradation
    /// fallback (deadline pressure, cancellation mid-run, or overload
    /// shedding). The patch is still honest — degraded outputs are
    /// reported, not hidden.
    Degraded = 1,
    /// Cancelled by a client `Cancel` frame or by daemon drain before the
    /// engine produced anything useful.
    Cancelled = 2,
    /// The client deadline passed while the job was still queued; the
    /// engine never ran.
    Expired = 3,
    /// The engine returned an error (for example an unparsable netlist)
    /// or panicked; the worker survives and reports the failure.
    Failed = 4,
}

impl JobStatus {
    /// Decodes a wire byte.
    pub fn from_u8(raw: u8) -> Option<JobStatus> {
        match raw {
            0 => Some(JobStatus::Completed),
            1 => Some(JobStatus::Degraded),
            2 => Some(JobStatus::Cancelled),
            3 => Some(JobStatus::Expired),
            4 => Some(JobStatus::Failed),
            _ => None,
        }
    }

    /// Stable lowercase label (used in `Done` detail strings and logs).
    pub fn label(self) -> &'static str {
        match self {
            JobStatus::Completed => "completed",
            JobStatus::Degraded => "degraded",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Expired => "expired",
            JobStatus::Failed => "failed",
        }
    }
}

/// Why an admission attempt was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// The target lane's bounded queue is full; retry with backoff.
    Overloaded = 0,
    /// The daemon is draining and accepts no new work.
    ShuttingDown = 1,
    /// The request itself is malformed (empty netlist, zero weight after
    /// clamping, unknown priority...).
    Invalid = 2,
}

impl RejectReason {
    /// Decodes a wire byte.
    pub fn from_u8(raw: u8) -> Option<RejectReason> {
        match raw {
            0 => Some(RejectReason::Overloaded),
            1 => Some(RejectReason::ShuttingDown),
            2 => Some(RejectReason::Invalid),
            _ => None,
        }
    }

    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::Overloaded => "overloaded",
            RejectReason::ShuttingDown => "shutting_down",
            RejectReason::Invalid => "invalid",
        }
    }
}

/// One rectification job as submitted by a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobRequest {
    /// Tenant identity; weighted fair queuing shares lane capacity across
    /// distinct client names.
    pub client: String,
    /// Scheduler lane.
    pub priority: Priority,
    /// Fair-queuing weight, clamped to `1..=`[`MAX_WEIGHT`]. A client
    /// with weight 2 receives twice the lane share of a weight-1 client.
    pub weight: u32,
    /// Client deadline in milliseconds from admission; `0` means "use the
    /// daemon default". The engine budget is derived from this and may be
    /// shrunk further by the overload-shedding ladder.
    pub deadline_ms: u64,
    /// Engine sampling seed.
    pub seed: u64,
    /// Engine sample count per failing output (`0` = engine default).
    pub num_samples: u32,
    /// The erroneous implementation netlist (BLIF text).
    pub impl_blif: String,
    /// The golden specification netlist (BLIF text).
    pub spec_blif: String,
    /// Free-form client tag echoed in progress/done frames (scenario id,
    /// revision number...).
    pub tag: String,
}

/// Upper bound for [`JobRequest::weight`]; larger values are clamped.
pub const MAX_WEIGHT: u32 = 64;

impl JobRequest {
    /// A minimal valid request for `client` over the given netlist pair,
    /// with normal priority, weight 1 and no explicit deadline.
    pub fn new(
        client: impl Into<String>,
        impl_blif: impl Into<String>,
        spec_blif: impl Into<String>,
    ) -> JobRequest {
        JobRequest {
            client: client.into(),
            priority: Priority::Normal,
            weight: 1,
            deadline_ms: 0,
            seed: 1,
            num_samples: 0,
            impl_blif: impl_blif.into(),
            spec_blif: spec_blif.into(),
            tag: String::new(),
        }
    }

    /// Weight after clamping to the documented `1..=`[`MAX_WEIGHT`] range.
    pub fn effective_weight(&self) -> u32 {
        self.weight.clamp(1, MAX_WEIGHT)
    }

    /// Cheap structural validation at admission; returns a reason string
    /// on failure (mapped to `Rejected{Invalid}` by the server).
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.client.is_empty() {
            return Err("empty client name");
        }
        if self.impl_blif.is_empty() || self.spec_blif.is_empty() {
            return Err("empty netlist");
        }
        Ok(())
    }
}

/// Cancellation + deadline handle threaded from the scheduler into the
/// engine bridge. The flag is shared with the admission-side cancel map,
/// so a client `Cancel` frame (or drain) flips it while the engine runs.
#[derive(Clone, Debug)]
pub struct JobControl {
    cancel: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl JobControl {
    /// A control block over an existing shared flag.
    pub fn new(cancel: Arc<AtomicBool>, deadline: Option<Instant>) -> JobControl {
        JobControl { cancel, deadline }
    }

    /// A detached control block (tests, direct runner calls).
    pub fn unbounded() -> JobControl {
        JobControl {
            cancel: Arc::new(AtomicBool::new(false)),
            deadline: None,
        }
    }

    /// The shared cancellation flag; the engine bridge adapts this into
    /// its own cancel-token type.
    pub fn cancel_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancel)
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// The (possibly shed-shrunk) absolute engine deadline.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

/// What the engine produced for one job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobOutcome {
    /// Terminal status.
    pub status: JobStatus,
    /// The rectification patch as BLIF text (empty unless `Completed` or
    /// `Degraded`).
    pub patch_blif: String,
    /// Number of degraded outputs (0 for `Completed`).
    pub degradations: u32,
    /// Human-readable detail (error message, degradation reasons...).
    pub detail: String,
}

impl JobOutcome {
    /// An outcome with no patch, for non-running terminal states.
    pub fn empty(status: JobStatus, detail: impl Into<String>) -> JobOutcome {
        JobOutcome {
            status,
            patch_blif: String::new(),
            degradations: 0,
            detail: detail.into(),
        }
    }
}

/// The engine plug-in point. `syseco` implements this over its `Session`
/// API; tests implement it with stubs (sleep loops, panics, echoes).
///
/// Contract: `run` must honor `control` — poll [`JobControl::is_cancelled`]
/// and respect [`JobControl::deadline`] by degrading rather than running
/// long — and must not panic for malformed input (return
/// [`JobStatus::Failed`] instead). The server still wraps every call in a
/// panic guard so one bad job can never take down a worker.
pub trait JobRunner: Send + Sync + 'static {
    /// Runs one rectification job to a terminal outcome.
    fn run(&self, request: &JobRequest, control: &JobControl) -> JobOutcome;
}
