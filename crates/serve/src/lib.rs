//! `eco-serve`: the multi-tenant batch rectification service layer
//! (DESIGN.md §15), re-exported by the engine crate as `syseco::serve`.
//!
//! The daemon shape: clients speak a length-prefixed, checksummed,
//! versioned binary protocol ([`frame`]) over TCP; admitted jobs flow
//! through a bounded, weighted-fair, overload-shedding scheduler
//! ([`sched`]); engine workers run them through the pluggable
//! [`JobRunner`] and report terminal outcomes; one shared telemetry
//! registry backs a `GET /metrics` OpenMetrics endpoint ([`http`]).
//!
//! The crate is engine-agnostic on purpose — it depends only on
//! `eco-telemetry` — so the dependency arrow points from the engine to
//! the service layer and the whole stack stays free of external
//! dependencies. The engine crate plugs its `Session` API in through
//! [`JobRunner`] and hosts the `syseco-serve` / `syseco-load` binaries.
//!
//! # Embedding example
//!
//! ```
//! use std::sync::Arc;
//! use eco_serve::{
//!     Client, JobControl, JobOutcome, JobRequest, JobRunner, JobStatus,
//!     Server, ServerConfig, SubmitReply,
//! };
//!
//! struct Echo;
//! impl JobRunner for Echo {
//!     fn run(&self, req: &JobRequest, _ctl: &JobControl) -> JobOutcome {
//!         JobOutcome {
//!             status: JobStatus::Completed,
//!             patch_blif: req.impl_blif.clone(),
//!             degradations: 0,
//!             detail: String::new(),
//!         }
//!     }
//! }
//!
//! let server = Server::bind(
//!     ServerConfig::default(),
//!     Arc::new(Echo),
//!     eco_telemetry::Telemetry::enabled(),
//! )
//! .unwrap();
//! let addr = server.addr().unwrap();
//! let stop = server.shutdown_handle();
//! let daemon = std::thread::spawn(move || server.run());
//!
//! let mut client = Client::connect(addr).unwrap();
//! let req = JobRequest::new("tenant", ".model a\n.end\n", ".model b\n.end\n");
//! let SubmitReply::Accepted(id) = client.submit(&req).unwrap() else {
//!     panic!("rejected");
//! };
//! let done = client.wait_done(id).unwrap();
//! assert_eq!(done.status, JobStatus::Completed);
//!
//! stop.store(true, std::sync::atomic::Ordering::Relaxed);
//! daemon.join().unwrap().unwrap();
//! ```

#![warn(missing_docs)]

pub mod frame;
pub mod http;
mod job;
pub mod sched;
mod server;

mod client;

pub use client::{Client, ClientError, DoneReport, SubmitReply};
pub use frame::{FrameError, Message};
pub use job::{
    JobControl, JobOutcome, JobRequest, JobRunner, JobStatus, Priority, RejectReason, MAX_WEIGHT,
};
pub use sched::{ReplySink, Scheduler, SchedulerConfig};
pub use server::{Server, ServerConfig};
