//! Minimal HTTP/1.1 endpoint for observability: `GET /metrics`
//! (OpenMetrics scrape of the shared registry) and `GET /healthz`.
//!
//! This is deliberately not a web server: one thread, one request per
//! connection, `Connection: close`, a 4 KiB request cap, and only the two
//! read-only routes a scraper and a liveness probe need.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use eco_telemetry::{export, Telemetry};

use crate::sched::Scheduler;

const MAX_REQUEST: usize = 4 * 1024;

/// Accept loop: serves scrape/probe requests until `shutdown` is set.
/// `listener` must already be non-blocking; `poll` bounds shutdown
/// latency.
pub fn serve(
    listener: &TcpListener,
    telemetry: &Telemetry,
    scheduler: &Scheduler,
    shutdown: &AtomicBool,
    poll: Duration,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => handle(stream, telemetry, scheduler, poll),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => std::thread::sleep(poll),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => std::thread::sleep(poll),
        }
    }
}

fn handle(mut stream: TcpStream, telemetry: &Telemetry, scheduler: &Scheduler, poll: Duration) {
    if stream
        .set_read_timeout(Some(poll.max(Duration::from_millis(100))))
        .is_err()
    {
        return;
    }
    // Read until the header terminator (we never accept bodies).
    let mut req = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&chunk[..n]);
                if req.windows(4).any(|w| w == b"\r\n\r\n") || req.len() > MAX_REQUEST {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request_line = match std::str::from_utf8(&req) {
        Ok(text) => text.lines().next().unwrap_or(""),
        Err(_) => "",
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "application/openmetrics-text; version=1.0.0; charset=utf-8",
            export::openmetrics(&telemetry.snapshot()),
        ),
        ("GET", "/healthz") => {
            let (queued, active) = scheduler.depth();
            (
                "200 OK",
                "text/plain; charset=utf-8",
                format!(
                    "ok queued={queued} active={active} draining={}\n",
                    scheduler.is_draining()
                ),
            )
        }
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".into(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET\n".into(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}
