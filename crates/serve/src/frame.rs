//! The framed wire protocol: a length-prefixed, checksummed, versioned
//! binary codec (DESIGN.md §15).
//!
//! # Frame grammar
//!
//! ```text
//! frame   := magic version kind len payload crc
//! magic   := "SYES"                  (4 bytes)
//! version := u8                      (currently 1)
//! kind    := u8                      (message discriminant, see Message)
//! len     := u32 LE                  (payload length, <= MAX_PAYLOAD)
//! payload := len bytes               (kind-specific body)
//! crc     := u32 LE                  (CRC-32/IEEE over version..payload)
//! ```
//!
//! The checksum covers everything after the magic and before the crc
//! itself, so a flipped bit anywhere in the header or body is caught.
//! Inside payloads, integers are little-endian and strings are a `u32`
//! byte length followed by UTF-8 bytes.
//!
//! Every decoding failure is a typed [`FrameError`]; the decoder never
//! panics on arbitrary input (pinned by the proptests in
//! `tests/frame_props.rs`).

use std::fmt;
use std::io::{self, Read, Write};

use crate::job::{JobRequest, JobStatus, Priority, RejectReason};

/// Leading frame magic.
pub const MAGIC: [u8; 4] = *b"SYES";
/// Current protocol version.
pub const VERSION: u8 = 1;
/// Hard cap on a frame payload; larger `len` fields are rejected before
/// any allocation, so a hostile header cannot balloon memory.
pub const MAX_PAYLOAD: u32 = 32 * 1024 * 1024;
/// Fixed bytes before the payload: magic + version + kind + len.
pub const HEADER_LEN: usize = 10;
/// Trailing checksum bytes.
pub const TRAILER_LEN: usize = 4;

/// Typed decoding/transport failure. The codec guarantees arbitrary input
/// maps to one of these — never a panic.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying transport error.
    Io(io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The buffer ends before the declared frame does.
    Truncated,
    /// First four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Version byte this decoder does not speak.
    UnsupportedVersion(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Checksum mismatch: the frame was corrupted in flight.
    BadChecksum {
        /// CRC recomputed over the received bytes.
        expected: u32,
        /// CRC carried by the frame trailer.
        found: u32,
    },
    /// Unknown message discriminant.
    UnknownKind(u8),
    /// Structurally invalid payload for an otherwise well-formed frame.
    BadPayload(&'static str),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::UnsupportedVersion(v) => {
                write!(f, "unsupported protocol version {v} (speaks {VERSION})")
            }
            FrameError::Oversized(n) => {
                write!(f, "declared payload of {n} bytes exceeds cap {MAX_PAYLOAD}")
            }
            FrameError::BadChecksum { expected, found } => {
                write!(
                    f,
                    "checksum mismatch: computed {expected:08x}, frame says {found:08x}"
                )
            }
            FrameError::UnknownKind(k) => write!(f, "unknown message kind {k}"),
            FrameError::BadPayload(why) => write!(f, "bad payload: {why}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

/// Every message of the protocol. Discriminants are the wire `kind`
/// bytes; client→daemon kinds are 1–3, daemon→client kinds are 4–7.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Message {
    /// Submit one rectification job (kind 1).
    Submit(JobRequest),
    /// Cancel a previously accepted job (kind 2). Idempotent; unknown ids
    /// are ignored.
    Cancel {
        /// Id from the matching [`Message::Accepted`].
        job_id: u64,
    },
    /// Administrative drain request (kind 3): equivalent to SIGTERM, for
    /// platforms and tests where signals are awkward.
    Shutdown,
    /// The job was admitted (kind 4).
    Accepted {
        /// Daemon-assigned id, unique for the daemon's lifetime.
        job_id: u64,
    },
    /// The job was refused at admission (kind 5).
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Human-readable detail.
        detail: String,
    },
    /// Lifecycle progress for an accepted job (kind 6).
    Progress {
        /// Which job.
        job_id: u64,
        /// Stage label (`queued`, `running`, ...).
        stage: String,
    },
    /// Terminal outcome for an accepted job (kind 7).
    Done {
        /// Which job.
        job_id: u64,
        /// Terminal status.
        status: JobStatus,
        /// Degraded output count.
        degradations: u32,
        /// Engine wall-clock in microseconds (0 if the engine never ran).
        runtime_us: u64,
        /// Patch BLIF text (empty unless completed/degraded).
        patch_blif: String,
        /// Status detail.
        detail: String,
    },
}

impl Message {
    /// Wire discriminant.
    pub fn kind(&self) -> u8 {
        match self {
            Message::Submit(_) => 1,
            Message::Cancel { .. } => 2,
            Message::Shutdown => 3,
            Message::Accepted { .. } => 4,
            Message::Rejected { .. } => 5,
            Message::Progress { .. } => 6,
            Message::Done { .. } => 7,
        }
    }
}

// ---------------------------------------------------------------------
// CRC-32/IEEE (same polynomial as eco-cache's segment checksums)
// ---------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32/IEEE over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(FrameError::BadPayload("payload ends early"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn str(&mut self) -> Result<String, FrameError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::BadPayload("string is not UTF-8"))
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::BadPayload("trailing bytes after message"))
        }
    }
}

// ---------------------------------------------------------------------
// Message body codec
// ---------------------------------------------------------------------

fn encode_body(msg: &Message) -> Vec<u8> {
    let mut out = Vec::new();
    match msg {
        Message::Submit(req) => {
            put_str(&mut out, &req.client);
            out.push(req.priority as u8);
            put_u32(&mut out, req.weight);
            put_u64(&mut out, req.deadline_ms);
            put_u64(&mut out, req.seed);
            put_u32(&mut out, req.num_samples);
            put_str(&mut out, &req.impl_blif);
            put_str(&mut out, &req.spec_blif);
            put_str(&mut out, &req.tag);
        }
        Message::Cancel { job_id } => put_u64(&mut out, *job_id),
        Message::Shutdown => {}
        Message::Accepted { job_id } => put_u64(&mut out, *job_id),
        Message::Rejected { reason, detail } => {
            out.push(*reason as u8);
            put_str(&mut out, detail);
        }
        Message::Progress { job_id, stage } => {
            put_u64(&mut out, *job_id);
            put_str(&mut out, stage);
        }
        Message::Done {
            job_id,
            status,
            degradations,
            runtime_us,
            patch_blif,
            detail,
        } => {
            put_u64(&mut out, *job_id);
            out.push(*status as u8);
            put_u32(&mut out, *degradations);
            put_u64(&mut out, *runtime_us);
            put_str(&mut out, patch_blif);
            put_str(&mut out, detail);
        }
    }
    out
}

fn decode_body(kind: u8, payload: &[u8]) -> Result<Message, FrameError> {
    let mut r = Reader::new(payload);
    let msg = match kind {
        1 => {
            let client = r.str()?;
            let priority =
                Priority::from_u8(r.u8()?).ok_or(FrameError::BadPayload("unknown priority"))?;
            let weight = r.u32()?;
            let deadline_ms = r.u64()?;
            let seed = r.u64()?;
            let num_samples = r.u32()?;
            let impl_blif = r.str()?;
            let spec_blif = r.str()?;
            let tag = r.str()?;
            Message::Submit(JobRequest {
                client,
                priority,
                weight,
                deadline_ms,
                seed,
                num_samples,
                impl_blif,
                spec_blif,
                tag,
            })
        }
        2 => Message::Cancel { job_id: r.u64()? },
        3 => Message::Shutdown,
        4 => Message::Accepted { job_id: r.u64()? },
        5 => {
            let reason = RejectReason::from_u8(r.u8()?)
                .ok_or(FrameError::BadPayload("unknown reject reason"))?;
            let detail = r.str()?;
            Message::Rejected { reason, detail }
        }
        6 => {
            let job_id = r.u64()?;
            let stage = r.str()?;
            Message::Progress { job_id, stage }
        }
        7 => {
            let job_id = r.u64()?;
            let status =
                JobStatus::from_u8(r.u8()?).ok_or(FrameError::BadPayload("unknown job status"))?;
            let degradations = r.u32()?;
            let runtime_us = r.u64()?;
            let patch_blif = r.str()?;
            let detail = r.str()?;
            Message::Done {
                job_id,
                status,
                degradations,
                runtime_us,
                patch_blif,
                detail,
            }
        }
        other => return Err(FrameError::UnknownKind(other)),
    };
    r.finish()?;
    Ok(msg)
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

/// Encodes one message as a complete frame.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let body = encode_body(msg);
    debug_assert!(body.len() as u64 <= MAX_PAYLOAD as u64);
    let mut out = Vec::with_capacity(HEADER_LEN + body.len() + TRAILER_LEN);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(msg.kind());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Attempts to decode one frame from the front of `buf`.
///
/// `Ok((msg, consumed))` on success. [`FrameError::Truncated`] means "keep
/// reading" — the buffer holds a valid prefix of an incomplete frame.
/// Every other error is fatal for the stream: framing is lost or the peer
/// speaks a different protocol.
pub fn decode_frame(buf: &[u8]) -> Result<(Message, usize), FrameError> {
    if buf.len() < 4 {
        if MAGIC.starts_with(buf) {
            return Err(FrameError::Truncated);
        }
        let mut m = [0u8; 4];
        m[..buf.len()].copy_from_slice(buf);
        return Err(FrameError::BadMagic(m));
    }
    if buf[..4] != MAGIC {
        return Err(FrameError::BadMagic([buf[0], buf[1], buf[2], buf[3]]));
    }
    if buf.len() < HEADER_LEN {
        return Err(FrameError::Truncated);
    }
    let version = buf[4];
    if version != VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let kind = buf[5];
    let len = u32::from_le_bytes([buf[6], buf[7], buf[8], buf[9]]);
    // Oversize is checked before completeness so a hostile length field
    // is refused without waiting for (or allocating) the claimed bytes.
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    if buf.len() < total {
        return Err(FrameError::Truncated);
    }
    let crc_off = HEADER_LEN + len as usize;
    let found = u32::from_le_bytes([
        buf[crc_off],
        buf[crc_off + 1],
        buf[crc_off + 2],
        buf[crc_off + 3],
    ]);
    let expected = crc32(&buf[4..crc_off]);
    if expected != found {
        return Err(FrameError::BadChecksum { expected, found });
    }
    let msg = decode_body(kind, &buf[HEADER_LEN..crc_off])?;
    Ok((msg, total))
}

/// Writes one complete frame to `w`.
pub fn write_message(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    w.write_all(&encode_frame(msg))?;
    w.flush()
}

/// Reads exactly one frame from `r`, blocking until it is complete.
///
/// Returns [`FrameError::Closed`] on clean EOF at a frame boundary and
/// [`FrameError::Truncated`] on EOF inside a frame.
pub fn read_message(r: &mut impl Read) -> Result<Message, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Err(FrameError::Closed),
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if header[..4] != MAGIC {
        return Err(FrameError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    if header[4] != VERSION {
        return Err(FrameError::UnsupportedVersion(header[4]));
    }
    let len = u32::from_le_bytes([header[6], header[7], header[8], header[9]]);
    if len > MAX_PAYLOAD {
        return Err(FrameError::Oversized(len));
    }
    let mut rest = vec![0u8; len as usize + TRAILER_LEN];
    r.read_exact(&mut rest).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    })?;
    let mut frame = Vec::with_capacity(HEADER_LEN + rest.len());
    frame.extend_from_slice(&header);
    frame.extend_from_slice(&rest);
    decode_frame(&frame).map(|(msg, _)| msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_submit() -> Message {
        Message::Submit(JobRequest {
            client: "tenant-a".into(),
            priority: Priority::High,
            weight: 3,
            deadline_ms: 1500,
            seed: 42,
            num_samples: 64,
            impl_blif: ".model a\n.end\n".into(),
            spec_blif: ".model b\n.end\n".into(),
            tag: "rev-7".into(),
        })
    }

    #[test]
    fn every_kind_roundtrips() {
        let msgs = [
            sample_submit(),
            Message::Cancel { job_id: 9 },
            Message::Shutdown,
            Message::Accepted { job_id: 11 },
            Message::Rejected {
                reason: RejectReason::Overloaded,
                detail: "lane full".into(),
            },
            Message::Progress {
                job_id: 11,
                stage: "running".into(),
            },
            Message::Done {
                job_id: 11,
                status: JobStatus::Degraded,
                degradations: 2,
                runtime_us: 12345,
                patch_blif: ".model p\n.end\n".into(),
                detail: "deadline".into(),
            },
        ];
        for msg in msgs {
            let bytes = encode_frame(&msg);
            let (back, used) = decode_frame(&bytes).unwrap();
            assert_eq!(back, msg);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn decode_consumes_one_frame_from_a_pipelined_buffer() {
        let mut buf = encode_frame(&Message::Shutdown);
        let first_len = buf.len();
        buf.extend_from_slice(&encode_frame(&Message::Cancel { job_id: 1 }));
        let (msg, used) = decode_frame(&buf).unwrap();
        assert_eq!(msg, Message::Shutdown);
        assert_eq!(used, first_len);
        let (msg2, _) = decode_frame(&buf[used..]).unwrap();
        assert_eq!(msg2, Message::Cancel { job_id: 1 });
    }

    #[test]
    fn corrupted_byte_is_a_checksum_error() {
        let mut bytes = encode_frame(&sample_submit());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match decode_frame(&bytes) {
            Err(FrameError::BadChecksum { .. }) | Err(FrameError::BadPayload(_)) => {}
            other => panic!("expected corruption error, got {other:?}"),
        }
    }

    #[test]
    fn foreign_version_is_typed() {
        let mut bytes = encode_frame(&Message::Shutdown);
        bytes[4] = 2;
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::UnsupportedVersion(2))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_completeness() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(3);
        bytes.extend_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Oversized(_))
        ));
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
