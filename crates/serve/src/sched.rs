//! The multi-tenant scheduler: priority lanes, weighted fair queuing,
//! bounded admission, overload shedding, and drain (DESIGN.md §15).
//!
//! # State machine
//!
//! A job is `queued` (sitting in its priority lane) → `running` (claimed
//! by a worker) → terminal. Admission can short-circuit straight to
//! `rejected` when the lane is full or the daemon is draining. Memory is
//! bounded by construction: each lane holds at most
//! [`SchedulerConfig::lane_capacity`] jobs and everything beyond that is
//! refused with an explicit `Rejected{Overloaded}` — the daemon never
//! buffers unbounded work.
//!
//! # Fairness
//!
//! Lanes are served in strict priority order (high, normal, low), except
//! that every [`SchedulerConfig::low_lane_period`]-th dispatch serves the
//! *lowest* non-empty lane so batch work cannot starve. Within a lane,
//! clients compete by stride scheduling: each client carries a virtual
//! *pass*, the client with the smallest pass is served next, and serving
//! advances the pass by `STRIDE / weight` — a weight-2 client therefore
//! receives twice the dispatches of a weight-1 client under contention.
//! New clients join at the current minimum pass, so an idle tenant cannot
//! bank credit and then monopolize the lane.
//!
//! # Shedding
//!
//! Under overload the scheduler shrinks the *engine grant* (the budget
//! deadline handed to the engine) by one power of two per ladder level,
//! where the level is `queued / shed_watermark`. Jobs still complete —
//! through the engine's degradation ladder — but faster and with more
//! degraded outputs, trading patch optimality for queue drain. This is
//! graceful shedding: explicit, counted (`serve.shed`), and honest in the
//! reply (`Degraded`, never a silent timeout).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use eco_telemetry::{Counter, Gauge, Histogram, MetricsShard, Telemetry};

use crate::frame::Message;
use crate::job::{JobControl, JobRequest, Priority, RejectReason};

/// Where admission replies and job outcomes are delivered. The server
/// implements this over a connection's framed writer; tests implement it
/// with an in-memory collector. Implementations must not block for long
/// and must swallow transport errors (a vanished client does not stop the
/// daemon).
pub trait ReplySink: Send + Sync {
    /// Delivers one daemon→client message.
    fn send(&self, msg: &Message);
}

/// A sink that drops everything (detached submissions).
pub struct NullSink;

impl ReplySink for NullSink {
    fn send(&self, _msg: &Message) {}
}

/// Scheduler tuning knobs.
#[derive(Clone, Debug)]
pub struct SchedulerConfig {
    /// Bounded capacity of each priority lane.
    pub lane_capacity: usize,
    /// Engine grant for jobs that carry no client deadline.
    pub default_deadline: Duration,
    /// Queue depth per shedding-ladder level: at `queued >= k *
    /// shed_watermark` the engine grant is divided by `2^k` (capped at
    /// [`MAX_SHED_LEVEL`]).
    pub shed_watermark: usize,
    /// Every n-th dispatch serves the lowest-priority non-empty lane.
    pub low_lane_period: u64,
}

impl Default for SchedulerConfig {
    fn default() -> SchedulerConfig {
        SchedulerConfig {
            lane_capacity: 64,
            default_deadline: Duration::from_secs(30),
            shed_watermark: 16,
            low_lane_period: 8,
        }
    }
}

/// Ladder depth cap: grants shrink at most by `2^3 = 8x`.
pub const MAX_SHED_LEVEL: u32 = 3;
/// Engine grants never shrink below this, however deep the ladder.
pub const MIN_GRANT: Duration = Duration::from_millis(10);
/// Stride-scheduling numerator; pass advances by `STRIDE / weight`.
const STRIDE: u64 = 1 << 16;

/// One admitted job waiting in a lane.
struct QueuedJob {
    id: u64,
    seq: u64,
    request: JobRequest,
    cancel: Arc<AtomicBool>,
    enqueued: Instant,
    client_deadline: Option<Instant>,
    reply: Arc<dyn ReplySink>,
}

/// A job claimed by a worker: everything needed to run it and report the
/// outcome.
pub struct Dispatch {
    /// Daemon-assigned id.
    pub job_id: u64,
    /// The request as admitted.
    pub request: JobRequest,
    /// Cancel flag + shed-adjusted engine deadline.
    pub control: JobControl,
    /// Absolute client deadline (jobs past it expire without running).
    pub client_deadline: Option<Instant>,
    /// Where to deliver progress/done frames.
    pub reply: Arc<dyn ReplySink>,
    /// Time spent queued.
    pub wait: Duration,
    /// Lane the job was served from.
    pub lane: Priority,
    /// Shedding-ladder level in force at dispatch (0 = no shedding).
    pub shed_level: u32,
}

struct SchedState {
    lanes: [VecDeque<QueuedJob>; 3],
    /// Per-client stride pass, shared across lanes.
    passes: BTreeMap<String, u64>,
    /// Cancel flags of every live (queued or running) job.
    cancels: HashMap<u64, Arc<AtomicBool>>,
    next_id: u64,
    seq: u64,
    dispatches: u64,
    queued: usize,
    active: usize,
    draining: bool,
}

/// The scheduler: a bounded, fair, shedding job queue shared by the
/// listener threads (producers) and worker threads (consumers).
pub struct Scheduler {
    state: Mutex<SchedState>,
    /// Signalled when work arrives or drain starts.
    available: Condvar,
    /// Signalled when a job finishes (drain waits on this).
    idle: Condvar,
    config: SchedulerConfig,
    metrics: MetricsShard,
}

impl Scheduler {
    /// A fresh scheduler recording into `telemetry`.
    pub fn new(config: SchedulerConfig, telemetry: &Telemetry) -> Scheduler {
        Scheduler {
            state: Mutex::new(SchedState {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                passes: BTreeMap::new(),
                cancels: HashMap::new(),
                next_id: 1,
                seq: 0,
                dispatches: 0,
                queued: 0,
                active: 0,
                draining: false,
            }),
            available: Condvar::new(),
            idle: Condvar::new(),
            config,
            metrics: telemetry.shard(),
        }
    }

    /// Attempts to admit `request`. The admission reply (`Accepted` or
    /// `Rejected`) is delivered through `reply` *before* the job becomes
    /// claimable, so clients always see `Accepted` before any `Done`.
    /// Returns the job id on admission.
    pub fn submit(&self, request: JobRequest, reply: Arc<dyn ReplySink>) -> Option<u64> {
        self.metrics.add(Counter::ServeSubmitted, 1);
        if let Err(why) = request.validate() {
            self.metrics.add(Counter::ServeRejected, 1);
            reply.send(&Message::Rejected {
                reason: RejectReason::Invalid,
                detail: why.into(),
            });
            return None;
        }
        let mut state = self.state.lock().unwrap();
        if state.draining {
            self.metrics.add(Counter::ServeRejected, 1);
            reply.send(&Message::Rejected {
                reason: RejectReason::ShuttingDown,
                detail: "daemon is draining".into(),
            });
            return None;
        }
        let lane = request.priority.lane();
        if state.lanes[lane].len() >= self.config.lane_capacity {
            self.metrics.add(Counter::ServeRejected, 1);
            reply.send(&Message::Rejected {
                reason: RejectReason::Overloaded,
                detail: format!("lane {lane} is at capacity {}", self.config.lane_capacity),
            });
            return None;
        }
        let id = state.next_id;
        state.next_id += 1;
        let seq = state.seq;
        state.seq += 1;
        let now = Instant::now();
        let cancel = Arc::new(AtomicBool::new(false));
        // New clients join at the current minimum pass so idle tenants
        // cannot bank credit (see module docs).
        let floor = state.passes.values().copied().min().unwrap_or(0);
        state.passes.entry(request.client.clone()).or_insert(floor);
        let client_deadline =
            (request.deadline_ms > 0).then(|| now + Duration::from_millis(request.deadline_ms));
        state.cancels.insert(id, Arc::clone(&cancel));
        state.lanes[lane].push_back(QueuedJob {
            id,
            seq,
            request,
            cancel,
            enqueued: now,
            client_deadline,
            reply: Arc::clone(&reply),
        });
        state.queued += 1;
        self.metrics.add(Counter::ServeAdmitted, 1);
        self.metrics
            .gauge_max(Gauge::ServeQueueDepth, state.queued as u64);
        reply.send(&Message::Accepted { job_id: id });
        drop(state);
        self.available.notify_one();
        Some(id)
    }

    /// Flags `job_id` for cancellation. Idempotent; `false` when the id
    /// is unknown or already terminal. Queued jobs are resolved by the
    /// next worker to claim them (they skip the engine entirely).
    pub fn cancel(&self, job_id: u64) -> bool {
        let state = self.state.lock().unwrap();
        match state.cancels.get(&job_id) {
            Some(flag) => {
                flag.store(true, Ordering::Relaxed);
                true
            }
            None => false,
        }
    }

    /// Blocks until a job is claimable, then claims it. Returns `None`
    /// once the scheduler is draining and empty — the worker's signal to
    /// exit.
    pub fn next(&self) -> Option<Dispatch> {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.queued > 0 {
                return Some(self.claim(&mut state));
            }
            if state.draining {
                return None;
            }
            state = self.available.wait(state).unwrap();
        }
    }

    fn claim(&self, state: &mut SchedState) -> Dispatch {
        state.dispatches += 1;
        // Anti-starvation: every n-th dispatch serves the lowest
        // non-empty lane instead of the highest.
        let from_low = self.config.low_lane_period > 0
            && state.dispatches.is_multiple_of(self.config.low_lane_period);
        let lane_idx = if from_low {
            (0..3).rev().find(|&l| !state.lanes[l].is_empty()).unwrap()
        } else {
            (0..3).find(|&l| !state.lanes[l].is_empty()).unwrap()
        };
        // Stride scheduling within the lane: serve the queued client with
        // the smallest pass; FIFO (admission seq) breaks ties.
        let mut best: Option<(u64, u64, usize)> = None; // (pass, seq, pos)
        for (pos, job) in state.lanes[lane_idx].iter().enumerate() {
            let pass = *state.passes.get(&job.request.client).unwrap_or(&0);
            let key = (pass, job.seq, pos);
            if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                best = Some(key);
            }
        }
        let pos = best.expect("claim called on empty lane").2;
        let job = state.lanes[lane_idx].remove(pos).unwrap();
        state.queued -= 1;
        state.active += 1;
        self.metrics
            .gauge_max(Gauge::ServeActiveJobs, state.active as u64);
        let advance = STRIDE / u64::from(job.request.effective_weight());
        *state.passes.entry(job.request.client.clone()).or_insert(0) += advance.max(1);

        let now = Instant::now();
        let wait = now.saturating_duration_since(job.enqueued);
        let lane = match lane_idx {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        self.metrics.observe(
            match lane {
                Priority::High => Histogram::ServeWaitHighMicros,
                Priority::Normal => Histogram::ServeWaitNormalMicros,
                Priority::Low => Histogram::ServeWaitLowMicros,
            },
            wait.as_micros() as u64,
        );

        // Overload-shedding ladder: shrink the engine grant by 2^level.
        let shed_level = state
            .queued
            .checked_div(self.config.shed_watermark)
            .map_or(0, |level| (level as u32).min(MAX_SHED_LEVEL));
        if shed_level > 0 {
            self.metrics.add(Counter::ServeShed, 1);
        }
        let base_grant = match job.client_deadline {
            Some(at) => at.saturating_duration_since(now),
            None => self.config.default_deadline,
        };
        let grant = (base_grant / 2u32.pow(shed_level)).max(MIN_GRANT);
        let engine_deadline = now + grant;

        Dispatch {
            job_id: job.id,
            control: JobControl::new(Arc::clone(&job.cancel), Some(engine_deadline)),
            client_deadline: job.client_deadline,
            reply: job.reply,
            wait,
            lane,
            shed_level,
            request: job.request,
        }
    }

    /// Marks a claimed job terminal: drops its cancel handle and wakes
    /// drain waiters. Every `next()` must be paired with one `finish`.
    pub fn finish(&self, job_id: u64) {
        let mut state = self.state.lock().unwrap();
        state.cancels.remove(&job_id);
        state.active -= 1;
        drop(state);
        self.idle.notify_all();
    }

    /// Live queue/active counts `(queued, active)` for health reporting.
    pub fn depth(&self) -> (usize, usize) {
        let state = self.state.lock().unwrap();
        (state.queued, state.active)
    }

    /// Whether drain has started.
    pub fn is_draining(&self) -> bool {
        self.state.lock().unwrap().draining
    }

    /// Drains the scheduler: refuses new admissions, flags every live job
    /// for cancellation (queued jobs resolve as `Cancelled` without
    /// running; running jobs finish fast through the engine's degradation
    /// ladder, checkpointing what they have), and blocks until every
    /// claimed job has called [`Scheduler::finish`].
    pub fn drain(&self) {
        let mut state = self.state.lock().unwrap();
        state.draining = true;
        for flag in state.cancels.values() {
            flag.store(true, Ordering::Relaxed);
        }
        drop(state);
        // Wake every worker so idle ones observe draining and exit, and
        // so queued-but-cancelled jobs get claimed and resolved.
        self.available.notify_all();
        let mut state = self.state.lock().unwrap();
        while state.queued > 0 || state.active > 0 {
            state = self.idle.wait(state).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    struct Collect(StdMutex<Vec<Message>>);

    impl Collect {
        fn new() -> Arc<Collect> {
            Arc::new(Collect(StdMutex::new(Vec::new())))
        }
        fn msgs(&self) -> Vec<Message> {
            self.0.lock().unwrap().clone()
        }
    }

    impl ReplySink for Collect {
        fn send(&self, msg: &Message) {
            self.0.lock().unwrap().push(msg.clone());
        }
    }

    fn req(client: &str, priority: Priority, weight: u32) -> JobRequest {
        let mut r = JobRequest::new(client, ".model a\n.end\n", ".model b\n.end\n");
        r.priority = priority;
        r.weight = weight;
        r
    }

    fn sched(capacity: usize) -> Scheduler {
        Scheduler::new(
            SchedulerConfig {
                lane_capacity: capacity,
                ..SchedulerConfig::default()
            },
            &Telemetry::enabled(),
        )
    }

    #[test]
    fn admission_is_bounded_and_rejections_are_explicit() {
        let s = sched(2);
        let sink = Collect::new();
        assert!(s
            .submit(req("a", Priority::Normal, 1), sink.clone())
            .is_some());
        assert!(s
            .submit(req("a", Priority::Normal, 1), sink.clone())
            .is_some());
        assert!(s
            .submit(req("a", Priority::Normal, 1), sink.clone())
            .is_none());
        let msgs = sink.msgs();
        assert!(matches!(msgs[0], Message::Accepted { job_id: 1 }));
        assert!(matches!(msgs[1], Message::Accepted { job_id: 2 }));
        assert!(matches!(
            msgs[2],
            Message::Rejected {
                reason: RejectReason::Overloaded,
                ..
            }
        ));
        // Other lanes still have room.
        assert!(s.submit(req("a", Priority::High, 1), sink).is_some());
    }

    #[test]
    fn invalid_requests_are_rejected_without_queueing() {
        let s = sched(4);
        let sink = Collect::new();
        let mut bad = req("", Priority::Normal, 1);
        bad.client = String::new();
        assert!(s.submit(bad, sink.clone()).is_none());
        assert!(matches!(
            sink.msgs()[0],
            Message::Rejected {
                reason: RejectReason::Invalid,
                ..
            }
        ));
        assert_eq!(s.depth(), (0, 0));
    }

    #[test]
    fn high_lane_is_served_first() {
        let s = sched(8);
        let sink = Collect::new();
        s.submit(req("a", Priority::Low, 1), sink.clone());
        s.submit(req("b", Priority::Normal, 1), sink.clone());
        s.submit(req("c", Priority::High, 1), sink);
        let d = s.next().unwrap();
        assert_eq!(d.lane, Priority::High);
        s.finish(d.job_id);
    }

    #[test]
    fn weighted_fairness_favors_the_heavier_client() {
        let s = sched(64);
        let sink = Collect::new();
        // Interleave admissions so arrival order cannot explain the
        // dispatch ratio.
        for _ in 0..12 {
            s.submit(req("heavy", Priority::Normal, 4), sink.clone());
            s.submit(req("light", Priority::Normal, 1), sink.clone());
        }
        let mut heavy = 0;
        let mut light = 0;
        for _ in 0..10 {
            let d = s.next().unwrap();
            match d.request.client.as_str() {
                "heavy" => heavy += 1,
                _ => light += 1,
            }
            s.finish(d.job_id);
        }
        assert!(
            heavy >= 2 * light.max(1),
            "weight-4 client got {heavy}/10 vs weight-1 {light}/10"
        );
    }

    #[test]
    fn low_lane_cannot_starve() {
        let s = Scheduler::new(
            SchedulerConfig {
                lane_capacity: 128,
                low_lane_period: 4,
                ..SchedulerConfig::default()
            },
            &Telemetry::enabled(),
        );
        let sink = Collect::new();
        s.submit(req("batch", Priority::Low, 1), sink.clone());
        for _ in 0..20 {
            s.submit(req("hot", Priority::High, 1), sink.clone());
        }
        let mut low_seen = false;
        for _ in 0..8 {
            let d = s.next().unwrap();
            low_seen |= d.lane == Priority::Low;
            s.finish(d.job_id);
        }
        assert!(low_seen, "low lane starved across 8 dispatches");
    }

    #[test]
    fn cancel_flags_queued_jobs_and_unknown_ids_are_harmless() {
        let s = sched(4);
        let sink = Collect::new();
        let id = s.submit(req("a", Priority::Normal, 1), sink).unwrap();
        assert!(s.cancel(id));
        assert!(!s.cancel(9999));
        let d = s.next().unwrap();
        assert!(d.control.is_cancelled());
        s.finish(d.job_id);
        assert!(!s.cancel(id), "finished ids drop out of the cancel map");
    }

    #[test]
    fn shed_level_grows_with_queue_depth_and_caps() {
        let s = Scheduler::new(
            SchedulerConfig {
                lane_capacity: 256,
                shed_watermark: 4,
                low_lane_period: 0,
                ..SchedulerConfig::default()
            },
            &Telemetry::enabled(),
        );
        let sink = Collect::new();
        for _ in 0..64 {
            s.submit(req("a", Priority::Normal, 1), sink.clone());
        }
        let d = s.next().unwrap();
        assert_eq!(d.shed_level, MAX_SHED_LEVEL);
        let deadline = d.control.deadline().expect("shed jobs still get a grant");
        assert!(deadline > Instant::now(), "grant has a positive floor");
        s.finish(d.job_id);
    }

    #[test]
    fn drain_rejects_new_work_and_resolves_everything() {
        let s = Arc::new(sched(16));
        let sink = Collect::new();
        for _ in 0..5 {
            s.submit(req("a", Priority::Normal, 1), sink.clone());
        }
        // Start the drain first (it blocks until the queue empties), then
        // act as the worker once `draining` is observable — every claim
        // from that point on must already carry the cancel flag.
        let drainer = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || s.drain())
        };
        while !s.is_draining() {
            std::thread::yield_now();
        }
        let mut resolved = 0;
        while let Some(d) = s.next() {
            assert!(d.control.is_cancelled(), "drain must flag live jobs");
            s.finish(d.job_id);
            resolved += 1;
        }
        drainer.join().unwrap();
        assert_eq!(resolved, 5);
        assert!(s
            .submit(req("a", Priority::Normal, 1), sink.clone())
            .is_none());
        assert!(matches!(
            sink.msgs().last(),
            Some(Message::Rejected {
                reason: RejectReason::ShuttingDown,
                ..
            })
        ));
    }
}
