//! The daemon: TCP listener, connection handling, worker pool, and
//! drain orchestration.
//!
//! `Server::run` owns four kinds of threads inside one scope: the accept
//! loop (the calling thread), one framed-protocol thread per client
//! connection, `workers` engine workers draining the [`Scheduler`], and
//! an optional HTTP thread serving `/metrics` + `/healthz`. Shutdown is a
//! single shared flag — flipped by SIGTERM (the binary installs the
//! handler), by a client `Shutdown` frame, or by the embedding test — and
//! triggers: stop accepting, drain the scheduler (every queued job
//! resolves as `Cancelled`, every running job is cancel-flagged and
//! finishes fast through the degradation ladder, checkpointing what it
//! has), then join everything and return.

use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use eco_telemetry::{Counter, Histogram, MetricsShard, Telemetry};

use crate::frame::{self, FrameError, Message};
use crate::http;
use crate::job::{JobOutcome, JobRunner, JobStatus, RejectReason};
use crate::sched::{Dispatch, ReplySink, Scheduler, SchedulerConfig};

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Job-protocol listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Optional metrics/health HTTP listen address.
    pub http_addr: Option<String>,
    /// Engine worker threads.
    pub workers: usize,
    /// Scheduler tuning.
    pub sched: SchedulerConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            http_addr: None,
            workers: 2,
            sched: SchedulerConfig::default(),
        }
    }
}

/// Poll interval for the accept loops and connection read timeouts; this
/// bounds how stale a shutdown-flag observation can be.
const POLL: Duration = Duration::from_millis(25);

/// A framed writer over one connection, shared by the scheduler and the
/// workers. Send errors are swallowed: a vanished client must not stop
/// the daemon, and its job still runs to a terminal state for accounting.
struct FramedSink {
    stream: Mutex<TcpStream>,
}

impl ReplySink for FramedSink {
    fn send(&self, msg: &Message) {
        let mut stream = self.stream.lock().unwrap();
        let _ = frame::write_message(&mut *stream, msg);
    }
}

/// The bound-but-not-yet-running daemon. Binding is split from running so
/// embedders (tests, the load generator's in-process mode) can learn the
/// ephemeral port and grab the shutdown handle before the blocking run.
pub struct Server {
    listener: TcpListener,
    http_listener: Option<TcpListener>,
    scheduler: Arc<Scheduler>,
    runner: Arc<dyn JobRunner>,
    telemetry: Telemetry,
    shutdown: Arc<AtomicBool>,
    workers: usize,
}

impl Server {
    /// Binds the protocol listener (and the HTTP listener, when
    /// configured) without accepting anything yet.
    pub fn bind(
        config: ServerConfig,
        runner: Arc<dyn JobRunner>,
        telemetry: Telemetry,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let http_listener = match &config.http_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        Ok(Server {
            listener,
            http_listener,
            scheduler: Arc::new(Scheduler::new(config.sched, &telemetry)),
            runner,
            telemetry,
            shutdown: Arc::new(AtomicBool::new(false)),
            workers: config.workers.max(1),
        })
    }

    /// The bound job-protocol address.
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound HTTP address, when configured.
    pub fn http_addr(&self) -> Option<SocketAddr> {
        self.http_listener
            .as_ref()
            .and_then(|l| l.local_addr().ok())
    }

    /// The shutdown flag: store `true` (from a signal handler, another
    /// thread, or a test) to trigger graceful drain.
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Runs the daemon until the shutdown flag is set, then drains and
    /// returns. The calling thread becomes the accept loop.
    pub fn run(self) -> io::Result<()> {
        let metrics = self.telemetry.shard();
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let scheduler = Arc::clone(&self.scheduler);
                let runner = Arc::clone(&self.runner);
                let metrics = self.telemetry.shard();
                scope.spawn(move || worker_loop(&scheduler, runner.as_ref(), &metrics));
            }
            if let Some(http) = &self.http_listener {
                let telemetry = self.telemetry.clone();
                let scheduler = Arc::clone(&self.scheduler);
                let shutdown = Arc::clone(&self.shutdown);
                scope.spawn(move || http::serve(http, &telemetry, &scheduler, &shutdown, POLL));
            }
            while !self.shutdown.load(Ordering::Relaxed) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let scheduler = Arc::clone(&self.scheduler);
                        let shutdown = Arc::clone(&self.shutdown);
                        scope.spawn(move || connection_loop(stream, &scheduler, &shutdown));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(POLL),
                }
            }
            // Graceful drain: resolve everything, then the scope joins
            // the workers (which see drained-and-empty) and the
            // connection/http threads (which see the flag).
            self.scheduler.drain();
        });
        let _ = metrics; // shard retired with the run
        Ok(())
    }
}

/// One engine worker: claim, run under a panic guard, account, reply.
fn worker_loop(scheduler: &Scheduler, runner: &dyn JobRunner, metrics: &MetricsShard) {
    while let Some(dispatch) = scheduler.next() {
        let Dispatch {
            job_id,
            request,
            control,
            client_deadline,
            reply,
            ..
        } = dispatch;
        let start = Instant::now();
        let outcome = if control.is_cancelled() {
            JobOutcome::empty(JobStatus::Cancelled, "cancelled before start")
        } else if client_deadline.is_some_and(|at| Instant::now() >= at) {
            JobOutcome::empty(JobStatus::Expired, "deadline passed while queued")
        } else {
            reply.send(&Message::Progress {
                job_id,
                stage: "running".into(),
            });
            match catch_unwind(AssertUnwindSafe(|| runner.run(&request, &control))) {
                Ok(outcome) => outcome,
                Err(_) => JobOutcome::empty(JobStatus::Failed, "engine panicked"),
            }
        };
        let runtime = start.elapsed();
        metrics.observe(Histogram::ServeJobMicros, runtime.as_micros() as u64);
        metrics.add(
            match outcome.status {
                JobStatus::Completed => Counter::ServeCompleted,
                JobStatus::Degraded => Counter::ServeDegraded,
                JobStatus::Cancelled => Counter::ServeCancelled,
                JobStatus::Expired => Counter::ServeExpired,
                JobStatus::Failed => Counter::ServeFailed,
            },
            1,
        );
        reply.send(&Message::Done {
            job_id,
            status: outcome.status,
            degradations: outcome.degradations,
            runtime_us: runtime.as_micros() as u64,
            patch_blif: outcome.patch_blif,
            detail: outcome.detail,
        });
        scheduler.finish(job_id);
    }
}

/// One client connection: buffer bytes, decode frames, route messages.
fn connection_loop(stream: TcpStream, scheduler: &Scheduler, shutdown: &AtomicBool) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let writer: Arc<dyn ReplySink> = match stream.try_clone() {
        Ok(w) => Arc::new(FramedSink {
            stream: Mutex::new(w),
        }),
        Err(_) => return,
    };
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return, // clean EOF
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    match frame::decode_frame(&buf) {
                        Ok((msg, used)) => {
                            buf.drain(..used);
                            match msg {
                                Message::Submit(req) => {
                                    scheduler.submit(req, Arc::clone(&writer));
                                }
                                Message::Cancel { job_id } => {
                                    scheduler.cancel(job_id);
                                }
                                Message::Shutdown => {
                                    shutdown.store(true, Ordering::Relaxed);
                                    return;
                                }
                                // Daemon→client kinds arriving at the
                                // daemon: the peer is confused; hang up.
                                _ => {
                                    writer.send(&Message::Rejected {
                                        reason: RejectReason::Invalid,
                                        detail: "unexpected message direction".into(),
                                    });
                                    return;
                                }
                            }
                        }
                        // A valid prefix of an incomplete frame: read on.
                        Err(FrameError::Truncated) => break,
                        // Framing is lost; tell the peer and hang up.
                        Err(e) => {
                            writer.send(&Message::Rejected {
                                reason: RejectReason::Invalid,
                                detail: e.to_string(),
                            });
                            return;
                        }
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}
