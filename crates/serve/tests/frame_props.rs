//! Property tests for the frame codec (ISSUE 9 satellite): roundtrip,
//! truncation, oversized lengths, checksum corruption, and cross-version
//! headers all resolve to typed [`FrameError`]s — never a panic, never a
//! silently wrong message.

use proptest::collection::vec;
use proptest::prelude::*;

use eco_serve::frame::{
    crc32, decode_frame, encode_frame, FrameError, HEADER_LEN, MAGIC, MAX_PAYLOAD, TRAILER_LEN,
    VERSION,
};
use eco_serve::{JobRequest, JobStatus, Message, Priority, RejectReason};

fn arb_string() -> impl Strategy<Value = String> {
    vec(any::<u8>(), 0..64).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| char::from(b'a' + (b % 26)))
            .collect()
    })
}

fn arb_request() -> impl Strategy<Value = JobRequest> {
    (
        (arb_string(), 0u8..3),
        (any::<u32>(), any::<u64>()),
        (any::<u64>(), 0u32..1024),
        arb_string(),
        arb_string(),
        arb_string(),
    )
        .prop_map(
            |((client, pri), (weight, deadline_ms), (seed, num_samples), imp, spec, tag)| {
                JobRequest {
                    client,
                    priority: Priority::from_u8(pri).unwrap(),
                    weight,
                    deadline_ms,
                    seed,
                    num_samples,
                    impl_blif: imp,
                    spec_blif: spec,
                    tag,
                }
            },
        )
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        arb_request().prop_map(Message::Submit),
        any::<u64>().prop_map(|job_id| Message::Cancel { job_id }),
        Just(Message::Shutdown),
        any::<u64>().prop_map(|job_id| Message::Accepted { job_id }),
        (0u8..3, arb_string()).prop_map(|(r, detail)| Message::Rejected {
            reason: RejectReason::from_u8(r).unwrap(),
            detail,
        }),
        (any::<u64>(), arb_string())
            .prop_map(|(job_id, stage)| Message::Progress { job_id, stage }),
        (
            any::<u64>(),
            0u8..5,
            any::<u32>(),
            any::<u64>(),
            arb_string(),
            arb_string()
        )
            .prop_map(
                |(job_id, status, degradations, runtime_us, patch_blif, detail)| {
                    Message::Done {
                        job_id,
                        status: JobStatus::from_u8(status).unwrap(),
                        degradations,
                        runtime_us,
                        patch_blif,
                        detail,
                    }
                }
            ),
    ]
}

proptest! {
    /// encode → decode is the identity and consumes exactly the frame.
    #[test]
    fn roundtrip_is_identity(msg in arb_message()) {
        let bytes = encode_frame(&msg);
        let (back, used) = decode_frame(&bytes).expect("own encoding must decode");
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(used, bytes.len());
    }

    /// Every strict prefix of a valid frame is `Truncated` (keep reading),
    /// except sub-magic prefixes that cannot yet prove themselves frames.
    #[test]
    fn every_prefix_is_truncated(msg in arb_message(), cut in 0usize..4096) {
        let bytes = encode_frame(&msg);
        let cut = cut % bytes.len();
        match decode_frame(&bytes[..cut]) {
            Err(FrameError::Truncated) => {}
            Err(FrameError::BadMagic(_)) => prop_assert!(
                cut < MAGIC.len(),
                "BadMagic is only allowed before the magic completes (cut={})", cut
            ),
            other => {
                return Err(format!("prefix of len {cut} gave {other:?}"));
            }
        }
    }

    /// A length field beyond the cap is refused before the payload is
    /// awaited (or allocated), whatever the rest of the bytes say.
    #[test]
    fn oversized_length_is_refused(kind in any::<u8>(), extra in any::<u32>()) {
        let len = MAX_PAYLOAD + 1 + (extra % 1024);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(kind);
        bytes.extend_from_slice(&len.to_le_bytes());
        prop_assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::Oversized(n)) if n == len
        ));
    }

    /// Flipping any bit after the magic is caught: checksum, payload
    /// validation, or a typed header error — never an accepted frame with
    /// different content, never a panic.
    #[test]
    fn corruption_never_yields_a_different_message(
        msg in arb_message(),
        pos in any::<usize>(),
        bit in 0u8..8,
    ) {
        let clean = encode_frame(&msg);
        let mut bytes = clean.clone();
        let pos = MAGIC.len() + pos % (bytes.len() - MAGIC.len());
        bytes[pos] ^= 1 << bit;
        match decode_frame(&bytes) {
            Ok((back, _)) => prop_assert_eq!(
                back, msg,
                "corrupt frame decoded to a different message"
            ),
            Err(
                FrameError::BadChecksum { .. }
                | FrameError::Truncated
                | FrameError::Oversized(_)
                | FrameError::UnsupportedVersion(_)
                | FrameError::UnknownKind(_)
                | FrameError::BadPayload(_),
            ) => {}
            Err(other) => {
                return Err(format!("unexpected error class {other:?}"));
            }
        }
    }

    /// Any foreign version byte is `UnsupportedVersion`, reported before
    /// the checksum is even consulted.
    #[test]
    fn cross_version_header_is_typed(msg in arb_message(), version in any::<u8>()) {
        let mut bytes = encode_frame(&msg);
        bytes[4] = version;
        if version == VERSION {
            prop_assert!(decode_frame(&bytes).is_ok());
        } else {
            prop_assert!(matches!(
                decode_frame(&bytes),
                Err(FrameError::UnsupportedVersion(v)) if v == version
            ));
        }
    }

    /// Arbitrary garbage never panics the decoder; and garbage that
    /// happens to start with the magic still resolves to a typed error or
    /// a valid frame.
    #[test]
    fn garbage_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        let _ = decode_frame(&bytes);
        let mut framed = MAGIC.to_vec();
        framed.extend_from_slice(&bytes);
        let _ = decode_frame(&framed);
    }

    /// A frame whose checksum field is rewritten to a wrong value is a
    /// `BadChecksum` carrying both sides of the mismatch.
    #[test]
    fn garbage_checksum_is_reported_with_both_values(
        msg in arb_message(),
        wrong in any::<u32>(),
    ) {
        let mut bytes = encode_frame(&msg);
        let crc_off = bytes.len() - TRAILER_LEN;
        let real = crc32(&bytes[4..crc_off]);
        let wrong = if wrong == real { wrong.wrapping_add(1) } else { wrong };
        bytes[crc_off..].copy_from_slice(&wrong.to_le_bytes());
        prop_assert!(matches!(
            decode_frame(&bytes),
            Err(FrameError::BadChecksum { expected, found })
                if expected == real && found == wrong
        ));
    }

    /// Pipelined frames decode one at a time with exact consumption.
    #[test]
    fn pipelined_frames_split_exactly(
        first in arb_message(),
        second in arb_message(),
    ) {
        let mut buf = encode_frame(&first);
        let first_len = buf.len();
        buf.extend_from_slice(&encode_frame(&second));
        let (a, used_a) = decode_frame(&buf).unwrap();
        prop_assert_eq!(a, first);
        prop_assert_eq!(used_a, first_len);
        let (b, used_b) = decode_frame(&buf[used_a..]).unwrap();
        prop_assert_eq!(b, second);
        prop_assert_eq!(used_a + used_b, buf.len());
    }
}

/// Non-property pin: header/trailer arithmetic stays in sync with the
/// constants the buffered reader relies on.
#[test]
fn frame_overhead_is_constant() {
    let bytes = encode_frame(&Message::Shutdown);
    assert_eq!(bytes.len(), HEADER_LEN + TRAILER_LEN);
}
