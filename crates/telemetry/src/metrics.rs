//! The sharded metrics registry: counters, max-gauges, and log₂
//! histograms, one shard per thread, folded into a snapshot at run end.

use crate::names;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket `b` covers values `v` with
/// `⌈log₂(v+1)⌉ = b`, i.e. bucket 0 is exactly 0, bucket `b ≥ 1` is
/// `[2^(b-1), 2^b)`.
pub(crate) const NUM_BUCKETS: usize = 64;

macro_rules! metric_enum {
    ($(#[$doc:meta])* $name:ident { $($(#[$vdoc:meta])* $variant:ident => $label:expr),* $(,)? }) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vdoc])* $variant),*
        }

        impl $name {
            /// Every variant, in declaration (and export) order.
            pub const ALL: &'static [$name] = &[$($name::$variant),*];

            /// The dotted export name of this metric.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $label),*
                }
            }
        }
    };
}

metric_enum! {
    /// Monotonic counters folded by summation.
    Counter {
        /// SAT conflicts across every solver the run created.
        SatConflicts => names::SAT_CONFLICTS,
        /// SAT decisions.
        SatDecisions => names::SAT_DECISIONS,
        /// SAT unit propagations.
        SatPropagations => names::SAT_PROPAGATIONS,
        /// SAT Luby restarts.
        SatRestarts => names::SAT_RESTARTS,
        /// SAT learnt clauses (asserting units included).
        SatLearntClauses => names::SAT_LEARNT_CLAUSES,
        /// SAT literals across every learnt clause.
        SatLearntLiterals => names::SAT_LEARNT_LITERALS,
        /// BDD apply-cache hits.
        BddApplyHits => names::BDD_APPLY_HITS,
        /// BDD apply-cache misses.
        BddApplyMisses => names::BDD_APPLY_MISSES,
        /// BDD ITE-cache hits.
        BddIteHits => names::BDD_ITE_HITS,
        /// BDD ITE-cache misses.
        BddIteMisses => names::BDD_ITE_MISSES,
        /// BDD NOT-cache hits.
        BddNotHits => names::BDD_NOT_HITS,
        /// BDD NOT-cache misses.
        BddNotMisses => names::BDD_NOT_MISSES,
        /// BDD quantification-cache hits.
        BddQuantHits => names::BDD_QUANT_HITS,
        /// BDD quantification-cache misses.
        BddQuantMisses => names::BDD_QUANT_MISSES,
        /// BDD unique-table resize (rehash) events.
        BddUniqueResizes => names::BDD_UNIQUE_RESIZES,
        /// BDD operation-cache entries dropped by explicit clears.
        BddEvictions => names::BDD_EVICTIONS,
        /// BDD mark-and-sweep garbage-collection passes.
        BddGcRuns => names::BDD_GC_RUNS,
        /// BDD nodes reclaimed by garbage collection.
        BddGcFreed => names::BDD_GC_FREED,
        /// BDD variable-reorder (sifting) passes.
        BddReorders => names::BDD_REORDERS,
        /// Sampling-domain refinements (false positives fed back).
        RectifyRefinements => names::RECTIFY_REFINEMENTS,
        /// SAT validation calls.
        RectifyValidations => names::RECTIFY_VALIDATIONS,
        /// Feasible point-sets examined.
        RectifyPointSets => names::RECTIFY_POINT_SETS,
        /// Rewiring choices examined.
        RectifyChoices => names::RECTIFY_CHOICES,
        /// Candidates rejected by the bit-parallel simulation pre-filter.
        PrefilterScreened => names::PREFILTER_SCREENED,
        /// Candidates that survived the simulation pre-filter.
        PrefilterPassed => names::PREFILTER_PASSED,
        /// Outputs that took the output-rewire fallback.
        RectifyFallbacks => names::RECTIFY_FALLBACKS,
        /// Outputs rectified through non-trivial rewiring.
        RectifyRewired => names::RECTIFY_REWIRED,
        /// Proposals invalidated by an earlier merge.
        RectifyMergeConflicts => names::RECTIFY_MERGE_CONFLICTS,
        /// Degradations recorded (any reason).
        RectifyDegradations => names::RECTIFY_DEGRADATIONS,
        /// Persistent-cache lookups that found a reusable record.
        CacheHits => names::CACHE_HIT,
        /// Persistent-cache lookups that missed.
        CacheMisses => names::CACHE_MISS,
        /// Cached results rejected by re-verification before reuse.
        CacheVerifyRejects => names::CACHE_VERIFY_REJECT,
        /// Damaged cache segments skipped on open.
        CacheCorruptSegments => names::CACHE_CORRUPT_SEGMENT,
        /// Transient cache/checkpoint I/O retries performed.
        CacheRetries => names::CACHE_RETRY,
        /// Cache/checkpoint operations that failed after all retries.
        CacheIoErrors => names::CACHE_IO_ERROR,
        /// Per-output searches skipped by a checkpoint resume.
        CheckpointHits => names::CHECKPOINT_HIT,
        /// Per-output results persisted to the checkpoint directory.
        CheckpointWrites => names::CHECKPOINT_WRITE,
        /// Faults fired by an active fault-injection plan.
        FaultInjections => names::FAULT_INJECTED,
        /// Jobs submitted to the rectification daemon.
        ServeSubmitted => names::SERVE_SUBMITTED,
        /// Jobs admitted into a scheduler lane.
        ServeAdmitted => names::SERVE_ADMITTED,
        /// Jobs rejected at admission.
        ServeRejected => names::SERVE_REJECTED,
        /// Jobs finished with a clean, undegraded patch.
        ServeCompleted => names::SERVE_COMPLETED,
        /// Jobs finished with at least one degraded output.
        ServeDegraded => names::SERVE_DEGRADED,
        /// Jobs cancelled by a client or by daemon drain.
        ServeCancelled => names::SERVE_CANCELLED,
        /// Jobs whose deadline passed before dispatch.
        ServeExpired => names::SERVE_EXPIRED,
        /// Jobs that errored before producing a patch.
        ServeFailed => names::SERVE_FAILED,
        /// Dispatches shrunk by the overload-shedding ladder.
        ServeShed => names::SERVE_SHED,
    }
}

metric_enum! {
    /// High-water marks folded by maximum.
    Gauge {
        /// Peak node count over every BDD manager of the run.
        BddPeakNodes => names::BDD_PEAK_NODES,
        /// Peak unique-table size over every BDD manager of the run.
        BddUniqueEntries => names::BDD_UNIQUE_ENTRIES,
        /// Peak number of jobs queued across all scheduler lanes.
        ServeQueueDepth => names::SERVE_QUEUE_DEPTH,
        /// Peak number of jobs running concurrently on daemon workers.
        ServeActiveJobs => names::SERVE_ACTIVE_JOBS,
    }
}

metric_enum! {
    /// Log₂-bucketed distributions folded by per-bucket summation.
    Histogram {
        /// Per-output search wall-clock, µs.
        SearchMicros => names::SEARCH_US,
        /// Per-validation wall-clock, µs.
        ValidateMicros => names::VALIDATE_US,
        /// SAT conflicts spent per validation call.
        SatConflictsPerCall => names::SAT_CONFLICTS_PER_CALL,
        /// Queue wait of jobs dispatched from the high-priority lane, µs.
        ServeWaitHighMicros => names::SERVE_WAIT_HIGH_US,
        /// Queue wait of jobs dispatched from the normal-priority lane, µs.
        ServeWaitNormalMicros => names::SERVE_WAIT_NORMAL_US,
        /// Queue wait of jobs dispatched from the low-priority lane, µs.
        ServeWaitLowMicros => names::SERVE_WAIT_LOW_US,
        /// End-to-end service time of one daemon job, µs.
        ServeJobMicros => names::SERVE_JOB_US,
    }
}

const NUM_COUNTERS: usize = Counter::ALL.len();
const NUM_GAUGES: usize = Gauge::ALL.len();
const NUM_HISTOGRAMS: usize = Histogram::ALL.len();

/// One thread's slice of the registry. All operations are relaxed atomic
/// read-modify-writes — lock-free, no allocation.
struct ShardData {
    counters: [AtomicU64; NUM_COUNTERS],
    gauges: [AtomicU64; NUM_GAUGES],
    histograms: [[AtomicU64; NUM_BUCKETS]; NUM_HISTOGRAMS],
    histogram_sums: [AtomicU64; NUM_HISTOGRAMS],
}

impl Default for ShardData {
    fn default() -> Self {
        ShardData {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            histogram_sums: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl std::fmt::Debug for ShardData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardData").finish_non_exhaustive()
    }
}

/// Handle through which one thread records metrics.
///
/// Cheap to clone (an `Arc`); a no-op shard (from a disabled
/// [`Telemetry`](crate::Telemetry)) skips even the atomic writes.
#[derive(Debug, Clone)]
pub struct MetricsShard(Option<Arc<ShardData>>);

impl MetricsShard {
    /// A shard that records nothing.
    pub fn noop() -> Self {
        MetricsShard(None)
    }

    /// Whether this shard records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(d) = &self.0 {
            d.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Raises a gauge to at least `value`.
    #[inline]
    pub fn gauge_max(&self, gauge: Gauge, value: u64) {
        if let Some(d) = &self.0 {
            d.gauges[gauge as usize].fetch_max(value, Ordering::Relaxed);
        }
    }

    /// Records one observation into a histogram's log₂ bucket and its
    /// exact running sum.
    #[inline]
    pub fn observe(&self, histogram: Histogram, value: u64) {
        if let Some(d) = &self.0 {
            d.histograms[histogram as usize][bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            d.histogram_sums[histogram as usize].fetch_add(value, Ordering::Relaxed);
        }
    }
}

/// The log₂ bucket of `value`: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub(crate) fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (u64::BITS - value.leading_zeros()) as usize
    }
    .min(NUM_BUCKETS - 1)
}

/// The shard store behind an enabled [`Telemetry`](crate::Telemetry)
/// handle. The mutex guards only shard registration and snapshotting —
/// never the recording hot path.
#[derive(Debug, Default)]
pub(crate) struct Registry {
    shards: Mutex<Vec<Arc<ShardData>>>,
}

impl Registry {
    pub(crate) fn shard(&self) -> MetricsShard {
        let data = Arc::new(ShardData::default());
        // Recover from poisoning: the guarded Vec is only ever pushed to,
        // so a worker that panicked mid-registration cannot have left it
        // inconsistent — and metrics must stay takeable after a contained
        // per-output panic.
        self.shards
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(Arc::clone(&data));
        MetricsShard(Some(data))
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in self
            .shards
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            for (i, c) in shard.counters.iter().enumerate() {
                snap.counters[i] += c.load(Ordering::Relaxed);
            }
            for (i, g) in shard.gauges.iter().enumerate() {
                snap.gauges[i] = snap.gauges[i].max(g.load(Ordering::Relaxed));
            }
            for (i, h) in shard.histograms.iter().enumerate() {
                for (b, count) in h.iter().enumerate() {
                    snap.histograms[i][b] += count.load(Ordering::Relaxed);
                }
            }
            for (i, s) in shard.histogram_sums.iter().enumerate() {
                snap.histogram_sums[i] += s.load(Ordering::Relaxed);
            }
        }
        snap
    }
}

/// A folded, point-in-time view of every shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; NUM_COUNTERS],
    gauges: [u64; NUM_GAUGES],
    histograms: [[u64; NUM_BUCKETS]; NUM_HISTOGRAMS],
    histogram_sums: [u64; NUM_HISTOGRAMS],
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        MetricsSnapshot {
            counters: [0; NUM_COUNTERS],
            gauges: [0; NUM_GAUGES],
            histograms: [[0; NUM_BUCKETS]; NUM_HISTOGRAMS],
            histogram_sums: [0; NUM_HISTOGRAMS],
        }
    }
}

impl MetricsSnapshot {
    /// The folded value of one counter.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// The folded value of one gauge.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize]
    }

    /// Per-bucket observation counts of one histogram; bucket 0 is exactly
    /// 0, bucket `b ≥ 1` covers `[2^(b-1), 2^b)`.
    pub fn histogram_buckets(&self, histogram: Histogram) -> &[u64; NUM_BUCKETS] {
        &self.histograms[histogram as usize]
    }

    /// Total number of observations recorded into one histogram.
    pub fn histogram_count(&self, histogram: Histogram) -> u64 {
        self.histograms[histogram as usize].iter().sum()
    }

    /// Exact sum of every value observed into one histogram (tracked
    /// alongside the buckets, not reconstructed from them).
    pub fn histogram_sum(&self, histogram: Histogram) -> u64 {
        self.histogram_sums[histogram as usize]
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of one histogram from
    /// its log₂ buckets, interpolating linearly inside the bucket that
    /// holds the target rank. Bucket `b ≥ 1` spans `[2^(b-1), 2^b - 1]`;
    /// bucket 0 is exactly 0. Returns 0.0 for an empty histogram.
    ///
    /// The estimate is deterministic (pure integer/f64 arithmetic on the
    /// folded bucket counts) but coarse by construction: the true value is
    /// somewhere within the matched power-of-two bucket.
    pub fn histogram_quantile(&self, histogram: Histogram, q: f64) -> f64 {
        let buckets = &self.histograms[histogram as usize];
        let count: u64 = buckets.iter().sum();
        if count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * count as f64;
        let mut cumulative = 0u64;
        for (b, &n) in buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cumulative + n;
            if (next as f64) >= target {
                if b == 0 {
                    return 0.0;
                }
                let lo = (1u64 << (b - 1)) as f64;
                let hi = ((1u64 << b) - 1) as f64;
                let into = (target - cumulative as f64).max(0.0) / n as f64;
                return lo + into * (hi - lo);
            }
            cumulative = next;
        }
        0.0
    }

    /// `(p50, p90, p99)` of one histogram, as estimated by
    /// [`histogram_quantile`](Self::histogram_quantile).
    pub fn histogram_percentiles(&self, histogram: Histogram) -> (f64, f64, f64) {
        (
            self.histogram_quantile(histogram, 0.50),
            self.histogram_quantile(histogram, 0.90),
            self.histogram_quantile(histogram, 0.99),
        )
    }

    /// Whether every metric is zero (nothing was recorded).
    pub fn is_empty(&self) -> bool {
        *self == MetricsSnapshot::default()
    }

    /// `(name, value)` over every counter, in export order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Counter::ALL.iter().map(|&c| (c.name(), self.counter(c)))
    }

    /// `(name, value)` over every gauge, in export order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Gauge::ALL.iter().map(|&g| (g.name(), self.gauge(g)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_boundaries_follow_the_documented_formula() {
        // Bucket b ≥ 1 covers [2^(b-1), 2^b): both edges for every power
        // of two that fits below the saturating top bucket.
        for b in 1..NUM_BUCKETS - 1 {
            let lo = 1u64 << (b - 1);
            let hi = (1u64 << b) - 1;
            assert_eq!(bucket_of(lo), b, "lower edge of bucket {b}");
            assert_eq!(bucket_of(hi), b, "upper edge of bucket {b}");
            assert_eq!(bucket_of(hi) + 1, bucket_of(hi + 1), "boundary at 2^{b}");
        }
    }

    #[test]
    fn zero_duration_samples_land_in_bucket_zero_only() {
        let reg = Registry::default();
        let shard = reg.shard();
        shard.observe(Histogram::SearchMicros, 0);
        shard.observe(Histogram::SearchMicros, 0);
        let snap = reg.snapshot();
        let buckets = snap.histogram_buckets(Histogram::SearchMicros);
        assert_eq!(buckets[0], 2, "a zero duration is exactly bucket 0");
        assert!(buckets[1..].iter().all(|&c| c == 0), "and nothing else");
        // Bucket 0 is exclusive to zero: the smallest non-zero sample is
        // already bucket 1.
        shard.observe(Histogram::SearchMicros, 1);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram_buckets(Histogram::SearchMicros)[0], 2);
        assert_eq!(snap.histogram_buckets(Histogram::SearchMicros)[1], 1);
    }

    #[test]
    fn top_bucket_saturates_instead_of_overflowing() {
        // Without clamping, values ≥ 2^63 would index bucket 64 — one past
        // the array. They must saturate into the last bucket, which
        // therefore covers [2^62, u64::MAX].
        assert_eq!(bucket_of(1 << 62), NUM_BUCKETS - 1);
        assert_eq!(bucket_of(1 << 63), NUM_BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        let reg = Registry::default();
        let shard = reg.shard();
        for v in [1u64 << 62, 1 << 63, u64::MAX] {
            shard.observe(Histogram::SatConflictsPerCall, v);
        }
        let snap = reg.snapshot();
        let buckets = snap.histogram_buckets(Histogram::SatConflictsPerCall);
        assert_eq!(buckets[NUM_BUCKETS - 1], 3);
        assert_eq!(snap.histogram_count(Histogram::SatConflictsPerCall), 3);
    }

    #[test]
    fn shards_fold_by_sum_max_and_bucket() {
        let reg = Registry::default();
        let a = reg.shard();
        let b = reg.shard();
        a.add(Counter::SatConflicts, 3);
        b.add(Counter::SatConflicts, 4);
        a.gauge_max(Gauge::BddPeakNodes, 10);
        b.gauge_max(Gauge::BddPeakNodes, 8);
        a.observe(Histogram::ValidateMicros, 5);
        b.observe(Histogram::ValidateMicros, 5);
        b.observe(Histogram::ValidateMicros, 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::SatConflicts), 7);
        assert_eq!(snap.gauge(Gauge::BddPeakNodes), 10);
        assert_eq!(snap.histogram_buckets(Histogram::ValidateMicros)[3], 2);
        assert_eq!(snap.histogram_buckets(Histogram::ValidateMicros)[0], 1);
        assert_eq!(snap.histogram_count(Histogram::ValidateMicros), 3);
        assert!(!snap.is_empty());
    }

    #[test]
    fn concurrent_shards_lose_nothing() {
        let reg = std::sync::Arc::new(Registry::default());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let shard = reg.shard();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        shard.incr(Counter::RectifyChoices);
                    }
                });
            }
        });
        assert_eq!(reg.snapshot().counter(Counter::RectifyChoices), 4000);
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Counter::ALL
            .iter()
            .map(|c| c.name())
            .chain(Gauge::ALL.iter().map(|g| g.name()))
            .chain(Histogram::ALL.iter().map(|h| h.name()))
            .collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
        assert!(names.iter().all(|n| n.contains('.')));
    }

    #[test]
    fn enum_labels_match_the_documented_registry_exactly() {
        // The names module is the registry of record; the enums must
        // export exactly that set, in the same order.
        let exported: Vec<&str> = Counter::ALL
            .iter()
            .map(|c| c.name())
            .chain(Gauge::ALL.iter().map(|g| g.name()))
            .chain(Histogram::ALL.iter().map(|h| h.name()))
            .collect();
        assert_eq!(exported, names::ALL_METRIC_NAMES);
    }

    #[test]
    fn histogram_sums_are_exact_and_fold_across_shards() {
        let reg = Registry::default();
        let a = reg.shard();
        let b = reg.shard();
        a.observe(Histogram::SearchMicros, 100);
        a.observe(Histogram::SearchMicros, 23);
        b.observe(Histogram::SearchMicros, 7);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram_sum(Histogram::SearchMicros), 130);
        assert_eq!(snap.histogram_sum(Histogram::ValidateMicros), 0);
    }

    #[test]
    fn quantiles_interpolate_within_log2_buckets() {
        let reg = Registry::default();
        let shard = reg.shard();
        // Empty histogram: all quantiles are 0.
        assert_eq!(
            reg.snapshot()
                .histogram_quantile(Histogram::SearchMicros, 0.5),
            0.0
        );
        // 100 observations of exactly 64 (bucket 7 = [64, 127]): every
        // quantile must land inside that bucket's range.
        for _ in 0..100 {
            shard.observe(Histogram::SearchMicros, 64);
        }
        let snap = reg.snapshot();
        let (p50, p90, p99) = snap.histogram_percentiles(Histogram::SearchMicros);
        for p in [p50, p90, p99] {
            assert!((64.0..=127.0).contains(&p), "estimate {p} outside bucket");
        }
        assert!(p50 <= p90 && p90 <= p99, "quantiles must be monotone");
    }

    #[test]
    fn quantiles_rank_across_buckets() {
        let reg = Registry::default();
        let shard = reg.shard();
        // 90 small values (bucket 1, exactly 1) and 10 large (bucket 11,
        // [1024, 2047]): p50 must sit in the small bucket, p99 in the
        // large one.
        for _ in 0..90 {
            shard.observe(Histogram::SatConflictsPerCall, 1);
        }
        for _ in 0..10 {
            shard.observe(Histogram::SatConflictsPerCall, 1500);
        }
        let snap = reg.snapshot();
        let p50 = snap.histogram_quantile(Histogram::SatConflictsPerCall, 0.50);
        let p99 = snap.histogram_quantile(Histogram::SatConflictsPerCall, 0.99);
        assert_eq!(p50, 1.0, "bucket 1 holds only the value 1");
        assert!((1024.0..=2047.0).contains(&p99), "p99 {p99} must be large");
        // Zero-only histograms stay at 0 for every quantile.
        shard.observe(Histogram::ValidateMicros, 0);
        let snap = reg.snapshot();
        assert_eq!(
            snap.histogram_quantile(Histogram::ValidateMicros, 0.99),
            0.0
        );
    }
}
