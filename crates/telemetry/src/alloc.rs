//! An allocation-counting global allocator hook.
//!
//! [`CountingAlloc`] wraps [`System`] and counts allocations, frees, and
//! bytes through process-global relaxed atomics. It is **opt-in per
//! binary**: profiling binaries (e.g. `bdd_profile`) install it with
//! `#[global_allocator]`; the library never does, so production binaries
//! and the overhead-budget benchmark keep the stock allocator and the
//! disabled-telemetry no-op guarantee is untouched.
//!
//! ```
//! use eco_telemetry::alloc::{allocation_counts, AllocCounts};
//! // In a profiling binary:
//! // #[global_allocator]
//! // static ALLOC: eco_telemetry::alloc::CountingAlloc =
//! //     eco_telemetry::alloc::CountingAlloc;
//! let AllocCounts { allocations, .. } = allocation_counts();
//! println!("{allocations} allocations so far"); // zero unless installed
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts every allocation.
pub struct CountingAlloc;

// SAFETY: defers entirely to System; the counters are relaxed atomics
// touched outside the allocation itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// A point-in-time reading of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounts {
    /// Allocations (including reallocations) since process start.
    pub allocations: u64,
    /// Deallocations since process start.
    pub deallocations: u64,
    /// Total bytes requested (not peak, not live).
    pub bytes_allocated: u64,
}

impl AllocCounts {
    /// The counter deltas from `earlier` to `self`.
    pub fn since(self, earlier: AllocCounts) -> AllocCounts {
        AllocCounts {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            deallocations: self.deallocations.saturating_sub(earlier.deallocations),
            bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
        }
    }
}

/// Reads the current allocation counters. All zero unless a binary has
/// installed [`CountingAlloc`] as its `#[global_allocator]`.
pub fn allocation_counts() -> AllocCounts {
    AllocCounts {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        deallocations: DEALLOCATIONS.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_subtract_and_saturate() {
        let a = AllocCounts {
            allocations: 10,
            deallocations: 4,
            bytes_allocated: 1000,
        };
        let b = AllocCounts {
            allocations: 25,
            deallocations: 9,
            bytes_allocated: 1600,
        };
        assert_eq!(
            b.since(a),
            AllocCounts {
                allocations: 15,
                deallocations: 5,
                bytes_allocated: 600,
            }
        );
        assert_eq!(a.since(b).allocations, 0, "saturates instead of wrapping");
    }

    #[test]
    fn counting_allocator_counts_through_the_trait() {
        // Exercise the GlobalAlloc impl directly (without installing it
        // process-wide, which a test must not do).
        let before = allocation_counts();
        let layout = Layout::from_size_align(64, 8).unwrap();
        unsafe {
            let p = CountingAlloc.alloc(layout);
            assert!(!p.is_null());
            let p = CountingAlloc.realloc(p, layout, 128);
            assert!(!p.is_null());
            CountingAlloc.dealloc(p, Layout::from_size_align(128, 8).unwrap());
        }
        let delta = allocation_counts().since(before);
        assert_eq!(delta.allocations, 2);
        assert_eq!(delta.deallocations, 1);
        assert_eq!(delta.bytes_allocated, 64 + 128);
    }
}
