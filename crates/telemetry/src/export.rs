//! Exporters: span JSONL, Chrome `chrome://tracing` JSON, metrics JSON.
//!
//! All writers are hand-rolled (this crate is zero-dependency); strings are
//! escaped per JSON (RFC 8259) and every document is plain ASCII-safe
//! UTF-8.

use crate::metrics::{Histogram, MetricsSnapshot, NUM_BUCKETS};
use crate::span::{ArgValue, SpanRecord};

/// Appends `s` to `out` as a JSON string literal (quotes included).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders `s` as a JSON string literal, quotes included — the escaping
/// building block shared with embedders that emit their own JSON lines
/// (the CLI's `--log-format json` progress stream uses it).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_json_str(&mut out, s);
    out
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, key);
        out.push(':');
        match value {
            ArgValue::U64(n) => out.push_str(&n.to_string()),
            ArgValue::Str(s) => push_json_str(out, s),
        }
    }
    out.push('}');
}

/// Renders spans as JSONL: one object per line, in record order, with keys
/// `name`, `cat`, `lane`, `ts_us`, `dur_us`, and (when present) `args`.
///
/// With `normalize_time`, `ts_us`/`dur_us` are emitted as 0 — the form used
/// by the trace-determinism test, where everything except wall-clock must
/// be identical across worker counts.
pub fn spans_jsonl(spans: &[SpanRecord], normalize_time: bool) -> String {
    let mut out = String::new();
    for span in spans {
        out.push_str("{\"name\":");
        push_json_str(&mut out, span.name);
        out.push_str(",\"cat\":");
        push_json_str(&mut out, span.cat);
        out.push_str(&format!(",\"lane\":{}", span.lane));
        let (ts, dur) = if normalize_time {
            (0, 0)
        } else {
            (span.start_us, span.dur_us)
        };
        out.push_str(&format!(",\"ts_us\":{ts},\"dur_us\":{dur}"));
        if !span.args.is_empty() {
            out.push_str(",\"args\":");
            push_args(&mut out, &span.args);
        }
        out.push_str("}\n");
    }
    out
}

/// Renders spans in the Chrome trace-event format (load via
/// `chrome://tracing` or <https://ui.perfetto.dev>): one `"X"` complete
/// event per span, `pid` 1, `tid` = lane, timestamps in µs.
pub fn chrome_trace(spans: &[SpanRecord]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"ph\":\"X\",\"pid\":1,");
        out.push_str(&format!(
            "\"tid\":{},\"ts\":{},\"dur\":{},",
            span.lane, span.start_us, span.dur_us
        ));
        out.push_str("\"name\":");
        push_json_str(&mut out, span.name);
        out.push_str(",\"cat\":");
        push_json_str(&mut out, span.cat);
        if !span.args.is_empty() {
            out.push_str(",\"args\":");
            push_args(&mut out, &span.args);
        }
        out.push('}');
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders a metrics snapshot as one JSON document:
///
/// ```json
/// {
///   "counters": {"sat.conflicts": 123, ...},
///   "gauges": {"bdd.peak_nodes": 456, ...},
///   "histograms": {
///     "search.us": {"count": 3, "sum": 18432, "p50": 95.5, "p90": 120.7,
///                   "p99": 126.4, "buckets": [[13, 2], [14, 1]]}
///   }
/// }
/// ```
///
/// Histogram buckets are `[bucket_index, count]` pairs over non-empty
/// buckets only; bucket `b ≥ 1` covers values in `[2^(b-1), 2^b)`. `sum`
/// is the exact sum of observations; `p50`/`p90`/`p99` are log₂-bucket
/// quantile estimates rendered to one decimal place.
pub fn metrics_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    for (i, (name, value)) in snapshot.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_str(&mut out, name);
        out.push_str(&format!(": {value}"));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in snapshot.gauges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_str(&mut out, name);
        out.push_str(&format!(": {value}"));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, &h) in Histogram::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        push_json_str(&mut out, h.name());
        let (p50, p90, p99) = snapshot.histogram_percentiles(h);
        out.push_str(&format!(
            ": {{\"count\": {}, \"sum\": {}, \"p50\": {p50:.1}, \"p90\": {p90:.1}, \"p99\": {p99:.1}, \"buckets\": [",
            snapshot.histogram_count(h),
            snapshot.histogram_sum(h),
        ));
        let buckets = snapshot.histogram_buckets(h);
        let mut first = true;
        for (b, &count) in buckets.iter().enumerate().take(NUM_BUCKETS) {
            if count == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("[{b}, {count}]"));
        }
        out.push_str("]}");
    }
    out.push_str("\n  }\n}\n");
    out
}

/// An exported metric name in OpenMetrics form: `syseco_` prefix, dots
/// replaced by underscores (`sat.conflicts` → `syseco_sat_conflicts`).
pub fn openmetrics_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 7);
    out.push_str("syseco_");
    for c in name.chars() {
        out.push(if c == '.' { '_' } else { c });
    }
    out
}

/// Renders a metrics snapshot in the OpenMetrics text exposition format —
/// the scrape format for the planned `syseco-serve` daemon.
///
/// Mapping (documented in DESIGN.md §14): every name gets a `syseco_`
/// prefix with dots replaced by underscores; counters expose
/// `<name>_total`; gauges expose `<name>`; histograms expose cumulative
/// `<name>_bucket{le="..."}` series (log₂ bucket `b`'s upper bound is
/// `2^b − 1`, bucket 0's is `0`), a `+Inf` bucket, `<name>_sum`, and
/// `<name>_count`. The document ends with the mandatory `# EOF`.
pub fn openmetrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in snapshot.counters() {
        let om = openmetrics_name(name);
        out.push_str(&format!("# TYPE {om} counter\n{om}_total {value}\n"));
    }
    for (name, value) in snapshot.gauges() {
        let om = openmetrics_name(name);
        out.push_str(&format!("# TYPE {om} gauge\n{om} {value}\n"));
    }
    for &h in Histogram::ALL {
        let om = openmetrics_name(h.name());
        out.push_str(&format!("# TYPE {om} histogram\n"));
        let buckets = snapshot.histogram_buckets(h);
        let highest = buckets.iter().rposition(|&c| c != 0);
        let mut cumulative = 0u64;
        if let Some(top) = highest {
            for (b, &count) in buckets.iter().enumerate().take(top + 1) {
                cumulative += count;
                let le = if b == 0 { 0 } else { (1u64 << b) - 1 };
                out.push_str(&format!("{om}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
        }
        out.push_str(&format!(
            "{om}_bucket{{le=\"+Inf\"}} {cum}\n{om}_sum {sum}\n{om}_count {cum}\n",
            cum = cumulative,
            sum = snapshot.histogram_sum(h),
        ));
    }
    out.push_str("# EOF\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Counter, Gauge, Telemetry};

    fn sample_spans() -> Vec<SpanRecord> {
        let t = Telemetry::enabled();
        let mut buf = t.buffer(1);
        let tok = buf.start();
        buf.end_with(tok, "search", "rectify", || {
            vec![
                ("output", ArgValue::Str("y\"1\n".into())),
                ("validations", ArgValue::U64(3)),
            ]
        });
        let tok = buf.start();
        buf.end(tok, "merge", "rectify");
        buf.into_spans()
    }

    #[test]
    fn jsonl_has_one_line_per_span_with_schema_keys() {
        let out = spans_jsonl(&sample_spans(), false);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            for key in [
                "\"name\":",
                "\"cat\":",
                "\"lane\":",
                "\"ts_us\":",
                "\"dur_us\":",
            ] {
                assert!(line.contains(key), "{line} missing {key}");
            }
        }
        assert!(lines[0].contains("\"output\":\"y\\\"1\\n\""));
        assert!(lines[0].contains("\"validations\":3"));
        assert!(!lines[1].contains("args"));
    }

    #[test]
    fn jsonl_normalization_zeroes_time_only() {
        let spans = sample_spans();
        let out = spans_jsonl(&spans, true);
        assert!(out.contains("\"ts_us\":0,\"dur_us\":0"));
        assert!(out.contains("\"name\":\"search\""));
    }

    #[test]
    fn chrome_trace_wraps_complete_events() {
        let out = chrome_trace(&sample_spans());
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"pid\":1"));
        assert!(out.contains("\"tid\":1"));
        assert!(out.trim_end().ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert_eq!(out.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn empty_trace_is_still_valid() {
        let out = chrome_trace(&[]);
        assert!(out.contains("\"traceEvents\":["));
        assert_eq!(spans_jsonl(&[], false), "");
    }

    #[test]
    fn metrics_json_lists_every_metric() {
        let t = Telemetry::enabled();
        let shard = t.shard();
        shard.add(Counter::SatConflicts, 9);
        shard.gauge_max(Gauge::BddPeakNodes, 5);
        shard.observe(crate::Histogram::SearchMicros, 100);
        let out = metrics_json(&t.snapshot());
        assert!(out.contains("\"sat.conflicts\": 9"));
        assert!(out.contains("\"bdd.peak_nodes\": 5"));
        // One observation of 100 lands in bucket 7 = [64, 127]; the
        // quantile estimates interpolate inside that bucket.
        assert!(out.contains(
            "\"search.us\": {\"count\": 1, \"sum\": 100, \"p50\": 95.5, \
             \"p90\": 120.7, \"p99\": 126.4, \"buckets\": [[7, 1]]}"
        ));
        for c in Counter::ALL {
            assert!(out.contains(c.name()), "missing {}", c.name());
        }
    }

    #[test]
    fn openmetrics_names_mangle_dots() {
        assert_eq!(openmetrics_name("sat.conflicts"), "syseco_sat_conflicts");
        assert_eq!(openmetrics_name("bdd.apply.hits"), "syseco_bdd_apply_hits");
    }

    #[test]
    fn openmetrics_exposes_counters_gauges_histograms_and_eof() {
        let t = Telemetry::enabled();
        let shard = t.shard();
        shard.add(Counter::SatConflicts, 9);
        shard.gauge_max(Gauge::BddPeakNodes, 5);
        shard.observe(crate::Histogram::SearchMicros, 100);
        shard.observe(crate::Histogram::SearchMicros, 3);
        let out = openmetrics(&t.snapshot());
        assert!(out.contains("# TYPE syseco_sat_conflicts counter\n"));
        assert!(out.contains("syseco_sat_conflicts_total 9\n"));
        assert!(out.contains("# TYPE syseco_bdd_peak_nodes gauge\n"));
        assert!(out.contains("syseco_bdd_peak_nodes 5\n"));
        assert!(out.contains("# TYPE syseco_search_us histogram\n"));
        // 3 is bucket 2 (le 3), 100 is bucket 7 (le 127); series are
        // cumulative.
        assert!(out.contains("syseco_search_us_bucket{le=\"3\"} 1\n"));
        assert!(out.contains("syseco_search_us_bucket{le=\"127\"} 2\n"));
        assert!(out.contains("syseco_search_us_bucket{le=\"+Inf\"} 2\n"));
        assert!(out.contains("syseco_search_us_sum 103\n"));
        assert!(out.contains("syseco_search_us_count 2\n"));
        assert!(out.ends_with("# EOF\n"));
        // An empty histogram still exposes +Inf/sum/count.
        assert!(out.contains("syseco_validate_us_bucket{le=\"+Inf\"} 0\n"));
        assert!(out.contains("syseco_validate_us_sum 0\n"));
    }

    #[test]
    fn json_escaping_covers_control_chars() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
