//! The hierarchical profiler: folds a flat span trace back into a
//! self/total-time tree with per-phase and per-output attribution, plus a
//! time-sliced counter sampler for turning end-of-run totals into time
//! series.
//!
//! Spans are recorded flat, per lane, children before parents (a span is
//! pushed when it *ends*). The profiler reconstructs nesting by interval
//! containment, with one engine-specific guard: spans whose names are in
//! the documented vocabulary ([`crate::names::SPAN_NAMES`]) carry a fixed
//! nesting depth, and a span never adopts a same-or-shallower-depth span
//! even when microsecond timestamps tie at a phase boundary. That keeps
//! the reconstructed tree — and everything derived from it — identical
//! across worker counts, which the determinism suite pins byte-for-byte.

use crate::json::{self, Value};
use crate::names;
use crate::span::{ArgValue, SpanRecord};
use crate::{Counter, MetricsSnapshot, Telemetry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A span that owns its strings — the form the profiler works on, so
/// traces can come either from a live run ([`SpanRecord`]) or re-parsed
/// from a trace JSONL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnedSpan {
    /// Span name.
    pub name: String,
    /// Category.
    pub cat: String,
    /// Lane (0 = coordinator, `i + 1` = merge-slot `i`).
    pub lane: u32,
    /// Start, µs since the trace epoch.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// `u64` annotations, in record order.
    pub args_u64: Vec<(String, u64)>,
    /// String annotations, in record order.
    pub args_str: Vec<(String, String)>,
}

impl OwnedSpan {
    /// The value of a `u64` annotation.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.args_u64
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
    }

    /// The value of a string annotation.
    pub fn arg_str(&self, key: &str) -> Option<&str> {
        self.args_str
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }
}

impl From<&SpanRecord> for OwnedSpan {
    fn from(record: &SpanRecord) -> Self {
        let mut span = OwnedSpan {
            name: record.name.to_string(),
            cat: record.cat.to_string(),
            lane: record.lane,
            start_us: record.start_us,
            dur_us: record.dur_us,
            args_u64: Vec::new(),
            args_str: Vec::new(),
        };
        for (key, value) in &record.args {
            match value {
                ArgValue::U64(n) => span.args_u64.push((key.to_string(), *n)),
                ArgValue::Str(s) => span.args_str.push((key.to_string(), s.clone())),
            }
        }
        span
    }
}

/// Parses a trace JSONL document (as written by
/// [`export::spans_jsonl`](crate::export::spans_jsonl)) back into owned
/// spans. Lines must carry `name`, `cat`, `lane`, `ts_us`, `dur_us` and
/// may carry `args`.
pub fn parse_spans_jsonl(input: &str) -> Result<Vec<OwnedSpan>, String> {
    let docs = json::parse_lines(input).map_err(|e| e.to_string())?;
    let mut spans = Vec::with_capacity(docs.len());
    for doc in &docs {
        let field = |key: &str| {
            doc.get(key)
                .ok_or_else(|| format!("trace line missing key {key:?}"))
        };
        let num = |key: &str| {
            field(key)?
                .as_u64()
                .ok_or_else(|| format!("trace key {key:?} is not a u64"))
        };
        let mut span = OwnedSpan {
            name: field("name")?
                .as_str()
                .ok_or("trace name is not a string")?
                .to_string(),
            cat: field("cat")?
                .as_str()
                .ok_or("trace cat is not a string")?
                .to_string(),
            lane: num("lane")? as u32,
            start_us: num("ts_us")?,
            dur_us: num("dur_us")?,
            args_u64: Vec::new(),
            args_str: Vec::new(),
        };
        if let Some(args) = doc.get("args") {
            for (key, value) in args.as_object().ok_or("trace args is not an object")? {
                match value {
                    Value::Number(_) => span
                        .args_u64
                        .push((key.clone(), value.as_u64().ok_or("trace arg is not a u64")?)),
                    Value::String(s) => span.args_str.push((key.clone(), s.clone())),
                    _ => return Err(format!("trace arg {key:?} has unsupported type")),
                }
            }
        }
        spans.push(span);
    }
    Ok(spans)
}

/// The fixed nesting depth of a documented span name within its lane;
/// `None` for names outside the vocabulary.
fn schema_depth(name: &str) -> Option<u32> {
    match name {
        names::SPAN_RUN | names::SPAN_SEARCH => Some(0),
        names::SPAN_DETECT | names::SPAN_MERGE | names::SPAN_VERIFY | names::SPAN_REFINE_PATCH => {
            Some(1)
        }
        names::SPAN_COMMIT => Some(2),
        names::SPAN_SAMPLES
        | names::SPAN_POINT_SETS
        | names::SPAN_CHOICES
        | names::SPAN_VALIDATE
        | names::SPAN_REFINE => Some(1),
        _ => None,
    }
}

/// One node of the aggregated profile tree: all spans of one name under
/// one parent path, folded together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span name.
    pub name: String,
    /// Number of spans folded into this node.
    pub count: u64,
    /// Summed wall-clock including children, µs.
    pub total_us: u64,
    /// Summed wall-clock excluding children, µs.
    pub self_us: u64,
    /// Summed `u64` annotations, in first-seen order.
    pub args_u64: Vec<(String, u64)>,
    /// Children, in first-seen order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    fn new(name: &str) -> Self {
        ProfileNode {
            name: name.to_string(),
            count: 0,
            total_us: 0,
            self_us: 0,
            args_u64: Vec::new(),
            children: Vec::new(),
        }
    }

    fn child_mut(&mut self, name: &str) -> &mut ProfileNode {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(ProfileNode::new(name));
        self.children.last_mut().unwrap()
    }

    fn add_args(&mut self, args: &[(String, u64)]) {
        for (key, value) in args {
            match self.args_u64.iter_mut().find(|(k, _)| k == key) {
                Some((_, total)) => *total += value,
                None => self.args_u64.push((key.clone(), *value)),
            }
        }
    }
}

/// One raw tree node before name-aggregation.
struct RawNode {
    span: usize,
    children: Vec<RawNode>,
}

/// The reconstructed profile of one trace: an aggregated self/total tree
/// plus flat per-phase and per-output views.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Synthetic root; its children are the lane roots (`run`, then each
    /// `search` lane) in lane order.
    pub root: ProfileNode,
    spans: Vec<OwnedSpan>,
}

impl Profile {
    /// Builds the profile from a flat span list (record order: per lane,
    /// children before parents).
    pub fn from_spans(spans: &[SpanRecord]) -> Profile {
        Profile::from_owned(spans.iter().map(OwnedSpan::from).collect())
    }

    /// Builds the profile from owned spans (e.g. re-parsed JSONL).
    pub fn from_owned(spans: Vec<OwnedSpan>) -> Profile {
        // First-occurrence order (not sort) keeps the coordinator lane
        // first without assuming lane ids are contiguous. A lane's spans
        // need not be contiguous in record order — the coordinator lane
        // records the closing `run` span after the worker lanes flush —
        // so consecutive-only dedup would fold such a lane twice.
        let mut lanes: Vec<u32> = Vec::new();
        for span in &spans {
            if !lanes.contains(&span.lane) {
                lanes.push(span.lane);
            }
        }
        let mut root = ProfileNode::new("(run)");
        for &lane in &lanes {
            let indices: Vec<usize> = spans
                .iter()
                .enumerate()
                .filter(|(_, s)| s.lane == lane)
                .map(|(i, _)| i)
                .collect();
            let forest = build_forest(&spans, &indices);
            for raw in &forest {
                fold(&spans, raw, &mut root);
            }
        }
        Profile { root, spans }
    }

    /// Flat totals per span name, in the documented phase order
    /// ([`names::SPAN_NAMES`]) followed by any undocumented names in
    /// first-seen order.
    pub fn phase_totals(&self) -> Vec<ProfileNode> {
        let mut flat: Vec<ProfileNode> = Vec::new();
        fn walk(node: &ProfileNode, flat: &mut Vec<ProfileNode>) {
            for child in &node.children {
                let entry = match flat.iter_mut().find(|n| n.name == child.name) {
                    Some(entry) => entry,
                    None => {
                        flat.push(ProfileNode::new(&child.name));
                        flat.last_mut().unwrap()
                    }
                };
                entry.count += child.count;
                entry.total_us += child.total_us;
                entry.self_us += child.self_us;
                entry.add_args(&child.args_u64);
                walk(child, flat);
            }
        }
        walk(&self.root, &mut flat);
        flat.sort_by_key(|node| {
            names::SPAN_NAMES
                .iter()
                .position(|&n| n == node.name)
                .unwrap_or(usize::MAX)
        });
        flat
    }

    /// One row per `search` span: the output it rectified plus its
    /// deterministic work annotations and wall-clock.
    pub fn per_output(&self) -> Vec<OutputRow> {
        self.spans
            .iter()
            .filter(|s| s.name == names::SPAN_SEARCH)
            .map(|s| OutputRow {
                output: s.arg_str("output").unwrap_or("?").to_string(),
                sat_conflicts: s.arg_u64("sat_conflicts").unwrap_or(0),
                validations: s.arg_u64("validations").unwrap_or(0),
                point_sets: s.arg_u64("point_sets").unwrap_or(0),
                choices: s.arg_u64("choices").unwrap_or(0),
                refinements: s.arg_u64("refinements").unwrap_or(0),
                proposal: s.arg_u64("proposal").unwrap_or(0) != 0,
                dur_us: s.dur_us,
            })
            .collect()
    }

    /// The spans the profile was built from.
    pub fn spans(&self) -> &[OwnedSpan] {
        &self.spans
    }
}

/// Per-output attribution extracted from one `search` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputRow {
    /// Output name.
    pub output: String,
    /// SAT conflicts spent on this output.
    pub sat_conflicts: u64,
    /// Validation calls.
    pub validations: u64,
    /// Feasible point-sets examined.
    pub point_sets: u64,
    /// Rewiring choices examined.
    pub choices: u64,
    /// Sampling-domain refinements.
    pub refinements: u64,
    /// Whether the search produced a rewiring proposal.
    pub proposal: bool,
    /// Search wall-clock, µs.
    pub dur_us: u64,
}

/// Reconstructs the span forest of one lane by interval containment.
///
/// `indices` is in record order, i.e. sorted by end time with children
/// before parents. Each span adopts, from the pending-roots stack, the
/// trailing run of spans its interval contains — schema depths break
/// microsecond ties between adjacent phases.
fn build_forest(spans: &[OwnedSpan], indices: &[usize]) -> Vec<RawNode> {
    let mut pending: Vec<RawNode> = Vec::new();
    for &i in indices {
        let span = &spans[i];
        let mut adopted: Vec<RawNode> = Vec::new();
        while let Some(last) = pending.last() {
            let candidate = &spans[last.span];
            let contained =
                candidate.start_us >= span.start_us && candidate.end_us() <= span.end_us();
            let deeper = match (schema_depth(&candidate.name), schema_depth(&span.name)) {
                (Some(c), Some(p)) => c > p,
                _ => true,
            };
            if contained && deeper {
                adopted.push(pending.pop().unwrap());
            } else {
                break;
            }
        }
        adopted.reverse();
        pending.push(RawNode {
            span: i,
            children: adopted,
        });
    }
    pending
}

/// Folds one raw node into the aggregated tree under `parent`.
fn fold(spans: &[OwnedSpan], raw: &RawNode, parent: &mut ProfileNode) {
    let span = &spans[raw.span];
    let children_us: u64 = raw.children.iter().map(|c| spans[c.span].dur_us).sum();
    let node = parent.child_mut(&span.name);
    node.count += 1;
    node.total_us += span.dur_us;
    node.self_us += span.dur_us.saturating_sub(children_us);
    node.add_args(&span.args_u64);
    for child in &raw.children {
        fold(spans, child, node);
    }
}

/// One time slice captured by a [`CounterSampler`].
#[derive(Debug, Clone)]
pub struct CounterSample {
    /// Milliseconds since sampling started.
    pub elapsed_ms: u64,
    /// The full metrics snapshot at this instant.
    pub snapshot: MetricsSnapshot,
}

impl CounterSample {
    /// Convenience: one counter's value at this instant.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.snapshot.counter(counter)
    }
}

/// Samples the metrics registry on a background thread at a fixed
/// interval, turning monotonic totals into a time series (e.g. BDD apply
/// throughput and hit rate over the course of a run).
///
/// Sampling only reads the registry's folded snapshot — the recording hot
/// path stays lock-free and unaffected.
#[derive(Debug)]
pub struct CounterSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Vec<CounterSample>>>,
}

impl CounterSampler {
    /// Starts sampling `telemetry` every `interval`. A disabled handle
    /// yields an empty series.
    pub fn start(telemetry: &Telemetry, interval: Duration) -> CounterSampler {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let telemetry = telemetry.clone();
        let handle = std::thread::spawn(move || {
            let mut samples = Vec::new();
            if !telemetry.is_enabled() {
                return samples;
            }
            let started = std::time::Instant::now();
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(interval);
                samples.push(CounterSample {
                    elapsed_ms: started.elapsed().as_millis() as u64,
                    snapshot: telemetry.snapshot(),
                });
            }
            samples
        });
        CounterSampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler and returns the captured series. Callers that
    /// need the end-of-run totals take one more
    /// [`Telemetry::snapshot`] themselves.
    pub fn stop(mut self) -> Vec<CounterSample> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            .expect("sampler stopped twice")
            .join()
            .unwrap_or_default()
    }
}

impl Drop for CounterSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export;

    fn span(
        name: &'static str,
        lane: u32,
        start_us: u64,
        dur_us: u64,
        args: Vec<(&'static str, ArgValue)>,
    ) -> SpanRecord {
        SpanRecord {
            name,
            cat: "rectify",
            lane,
            start_us,
            dur_us,
            args,
        }
    }

    /// A miniature two-lane trace in record order (children first).
    fn sample_trace() -> Vec<SpanRecord> {
        vec![
            // lane 0: run [0, 100] containing detect [0, 10] and merge
            // [60, 90] containing commit [61, 80]
            span("detect", 0, 0, 10, vec![]),
            span("commit", 0, 61, 19, vec![]),
            span("merge", 0, 60, 30, vec![]),
            span("run", 0, 0, 100, vec![]),
            // lane 1: search [10, 50] with phases
            span("point_sets", 1, 12, 8, vec![("sets", ArgValue::U64(4))]),
            span(
                "validate",
                1,
                20,
                15,
                vec![("sat_conflicts", ArgValue::U64(7))],
            ),
            span(
                "search",
                1,
                10,
                40,
                vec![
                    ("output", ArgValue::Str("y0".into())),
                    ("sat_conflicts", ArgValue::U64(7)),
                    ("validations", ArgValue::U64(1)),
                    ("point_sets", ArgValue::U64(4)),
                    ("choices", ArgValue::U64(2)),
                    ("refinements", ArgValue::U64(0)),
                    ("proposal", ArgValue::U64(1)),
                ],
            ),
        ]
    }

    #[test]
    fn split_lane_blocks_fold_once() {
        // The coordinator lane records `detect` early, worker lanes flush
        // next, and the closing `run` span lands in a second lane-0
        // block. Each lane-0 span must still be counted exactly once.
        let trace = vec![
            span("detect", 0, 0, 10, vec![]),
            span("search", 1, 10, 40, vec![]),
            span("run", 0, 0, 100, vec![]),
        ];
        let profile = Profile::from_spans(&trace);
        let totals = profile.phase_totals();
        let run = totals.iter().find(|n| n.name == "run").unwrap();
        let detect = totals.iter().find(|n| n.name == "detect").unwrap();
        assert_eq!(run.count, 1);
        assert_eq!(detect.count, 1);
    }

    #[test]
    fn tree_reconstructs_nesting_with_self_times() {
        let profile = Profile::from_spans(&sample_trace());
        let run = &profile.root.children[0];
        assert_eq!(run.name, "run");
        assert_eq!(run.total_us, 100);
        // run's children: detect (10) + merge (30) → self 60.
        assert_eq!(run.self_us, 60);
        let merge = run.children.iter().find(|c| c.name == "merge").unwrap();
        assert_eq!(merge.self_us, 30 - 19);
        assert_eq!(merge.children[0].name, "commit");

        let search = &profile.root.children[1];
        assert_eq!(search.name, "search");
        assert_eq!(search.self_us, 40 - 8 - 15);
        assert_eq!(search.children.len(), 2);
        assert_eq!(search.args_u64[0], ("sat_conflicts".to_string(), 7));
        assert!(search.args_u64.contains(&("validations".to_string(), 1)));
    }

    #[test]
    fn equal_timestamp_phases_stay_siblings() {
        // Zero-duration adjacent phases at the same microsecond: the
        // schema guard must keep choices/validate siblings under search
        // instead of letting validate adopt choices.
        let trace = vec![
            span("choices", 1, 5, 0, vec![]),
            span("validate", 1, 5, 0, vec![]),
            span(
                "search",
                1,
                5,
                0,
                vec![("output", ArgValue::Str("y".into()))],
            ),
        ];
        let profile = Profile::from_spans(&trace);
        let search = &profile.root.children[0];
        assert_eq!(search.name, "search");
        let child_names: Vec<&str> = search.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(child_names, ["choices", "validate"]);
        assert!(search.children.iter().all(|c| c.children.is_empty()));
    }

    #[test]
    fn phase_totals_follow_documented_order() {
        let profile = Profile::from_spans(&sample_trace());
        let totals = profile.phase_totals();
        let order: Vec<&str> = totals.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(
            order,
            [
                "run",
                "detect",
                "search",
                "point_sets",
                "validate",
                "merge",
                "commit"
            ]
        );
        let validate = totals.iter().find(|n| n.name == "validate").unwrap();
        assert_eq!(validate.count, 1);
        assert_eq!(validate.args_u64, vec![("sat_conflicts".to_string(), 7)]);
    }

    #[test]
    fn per_output_rows_come_from_search_spans() {
        let profile = Profile::from_spans(&sample_trace());
        let rows = profile.per_output();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].output, "y0");
        assert_eq!(rows[0].sat_conflicts, 7);
        assert_eq!(rows[0].point_sets, 4);
        assert!(rows[0].proposal);
    }

    #[test]
    fn jsonl_round_trip_preserves_the_profile() {
        let trace = sample_trace();
        let jsonl = export::spans_jsonl(&trace, false);
        let owned = parse_spans_jsonl(&jsonl).unwrap();
        assert_eq!(owned.len(), trace.len());
        let direct = Profile::from_spans(&trace);
        let reparsed = Profile::from_owned(owned);
        assert_eq!(direct.root, reparsed.root);
    }

    #[test]
    fn sampler_returns_a_monotone_series() {
        let t = Telemetry::enabled();
        let shard = t.shard();
        let sampler = CounterSampler::start(&t, Duration::from_millis(1));
        for _ in 0..50 {
            shard.add(Counter::BddApplyHits, 10);
            std::thread::sleep(Duration::from_millis(1));
        }
        let samples = sampler.stop();
        assert!(!samples.is_empty());
        let values: Vec<u64> = samples
            .iter()
            .map(|s| s.counter(Counter::BddApplyHits))
            .collect();
        assert!(values.windows(2).all(|w| w[0] <= w[1]), "monotone totals");
        assert_eq!(*values.last().unwrap() % 10, 0);
        // Disabled telemetry yields nothing.
        let none = CounterSampler::start(&Telemetry::disabled(), Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(none.stop().is_empty());
    }
}
