//! Span records and per-lane trace buffers.

use std::time::Instant;

/// One argument value attached to a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An unsigned counter-like value.
    U64(u64),
    /// A label (output name, degradation reason, …).
    Str(String),
}

/// One completed span: a named, categorised interval on a lane.
///
/// Timestamps are microseconds relative to the owning
/// [`Telemetry`](crate::Telemetry) handle's epoch. Everything except
/// `start_us`/`dur_us` is deterministic for a deterministic run, which is
/// what lets trace exports be compared across worker counts after
/// timestamp normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `"search"`, `"validate"`).
    pub name: &'static str,
    /// Category (e.g. `"rectify"`, `"sat"`); becomes the Chrome trace
    /// `cat` field.
    pub cat: &'static str,
    /// Logical track: 0 = run coordinator, `i + 1` = merge-slot `i`.
    pub lane: u32,
    /// Start, µs since the telemetry epoch.
    pub start_us: u64,
    /// Duration in µs (0 for instant markers).
    pub dur_us: u64,
    /// Deterministic key/value annotations.
    pub args: Vec<(&'static str, ArgValue)>,
}

/// Opaque start mark returned by [`TraceBuffer::start`].
#[derive(Debug, Clone, Copy)]
pub struct SpanToken {
    start_us: u64,
}

/// An append-only span recorder for one lane.
///
/// Buffers are single-threaded by design: each worker owns one and the
/// coordinator concatenates them ([`TraceBuffer::append`]) in merge-slot
/// order, making the merged trace independent of scheduling. The explicit
/// [`start`](TraceBuffer::start)/[`end`](TraceBuffer::end) token API (no
/// RAII guard) allows arbitrary nesting and overlap.
///
/// A buffer from a disabled handle is inert: `start` reads no clock, `end*`
/// records nothing, and the span vector never allocates.
#[derive(Debug)]
pub struct TraceBuffer {
    epoch: Option<Instant>,
    lane: u32,
    spans: Vec<SpanRecord>,
}

impl TraceBuffer {
    pub(crate) fn new(epoch: Option<Instant>, lane: u32) -> Self {
        TraceBuffer {
            epoch,
            lane,
            spans: Vec::new(),
        }
    }

    /// Whether this buffer records anything.
    pub fn is_enabled(&self) -> bool {
        self.epoch.is_some()
    }

    /// The buffer's lane.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    fn now_us(&self) -> u64 {
        match self.epoch {
            Some(epoch) => Instant::now().duration_since(epoch).as_micros() as u64,
            None => 0,
        }
    }

    /// Marks the start of a span. On a disabled buffer this is free (no
    /// clock read).
    pub fn start(&self) -> SpanToken {
        SpanToken {
            start_us: self.now_us(),
        }
    }

    /// Completes a span opened with [`start`](TraceBuffer::start).
    pub fn end(&mut self, token: SpanToken, name: &'static str, cat: &'static str) {
        self.end_with(token, name, cat, Vec::new);
    }

    /// Completes a span with annotations. `args` is only invoked when the
    /// buffer is enabled, so call sites pay nothing when telemetry is off.
    pub fn end_with<F>(&mut self, token: SpanToken, name: &'static str, cat: &'static str, args: F)
    where
        F: FnOnce() -> Vec<(&'static str, ArgValue)>,
    {
        if self.epoch.is_none() {
            return;
        }
        let now = self.now_us();
        self.spans.push(SpanRecord {
            name,
            cat,
            lane: self.lane,
            start_us: token.start_us,
            dur_us: now.saturating_sub(token.start_us),
            args: args(),
        });
    }

    /// Records a zero-duration marker (e.g. a refinement event).
    pub fn instant(&mut self, name: &'static str, cat: &'static str) {
        if self.epoch.is_none() {
            return;
        }
        let now = self.now_us();
        self.spans.push(SpanRecord {
            name,
            cat,
            lane: self.lane,
            start_us: now,
            dur_us: 0,
            args: Vec::new(),
        });
    }

    /// Appends another buffer's spans (used by the coordinator to merge
    /// worker buffers in slot order).
    pub fn append(&mut self, other: TraceBuffer) {
        self.spans.extend(other.spans);
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Consumes the buffer, yielding its spans in record order.
    pub fn into_spans(self) -> Vec<SpanRecord> {
        self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_keep_record_order() {
        let mut buf = TraceBuffer::new(Some(Instant::now()), 2);
        let outer = buf.start();
        let inner = buf.start();
        buf.end(inner, "inner", "t");
        buf.instant("mark", "t");
        buf.end_with(outer, "outer", "t", || vec![("k", ArgValue::U64(1))]);
        let spans = buf.into_spans();
        let names: Vec<_> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["inner", "mark", "outer"]);
        assert!(spans.iter().all(|s| s.lane == 2));
        assert!(spans[2].start_us <= spans[0].start_us);
        assert_eq!(spans[1].dur_us, 0);
    }

    #[test]
    fn append_concatenates() {
        let epoch = Instant::now();
        let mut a = TraceBuffer::new(Some(epoch), 0);
        let t = a.start();
        a.end(t, "a", "t");
        let mut b = TraceBuffer::new(Some(epoch), 1);
        let t = b.start();
        b.end(t, "b", "t");
        a.append(b);
        assert_eq!(a.len(), 2);
        let spans = a.into_spans();
        assert_eq!(spans[0].lane, 0);
        assert_eq!(spans[1].lane, 1);
    }

    #[test]
    fn disabled_buffer_is_empty() {
        let mut buf = TraceBuffer::new(None, 0);
        let t = buf.start();
        assert_eq!(t.start_us, 0);
        buf.end(t, "x", "y");
        assert!(buf.is_empty());
        assert!(!buf.is_enabled());
    }
}
