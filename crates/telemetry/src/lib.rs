//! Telemetry for syseco: structured tracing spans, a sharded metrics
//! registry, and exporters (JSONL, Chrome trace, metrics JSON).
//!
//! The paper's experimental story (§5) is about *where time goes* —
//! prime-cube enumeration, candidate filtering, SAT validation, sampling
//! refinements. This crate is the measurement layer behind that
//! attribution. It is deliberately zero-dependency and designed around one
//! invariant: **a disabled [`Telemetry`] handle costs nothing** — no
//! allocation, no clock reads, no atomics — so it can be threaded through
//! every hot path of the engine unconditionally.
//!
//! # Architecture
//!
//! * [`Telemetry`] is a cheap clonable handle. [`Telemetry::disabled`]
//!   carries no state at all; [`Telemetry::enabled`] owns a shared clock
//!   epoch and a metrics registry.
//! * [`TraceBuffer`] records [`SpanRecord`]s on one *lane* (a logical
//!   track: lane 0 is the run coordinator, lane `i + 1` is the search of
//!   merge-slot `i`). Buffers are thread-local by construction — each
//!   worker fills its own — and the caller concatenates them in slot order,
//!   which keeps the merged trace deterministic for any worker count.
//! * [`MetricsShard`] is one thread's view of the registry: plain relaxed
//!   atomic counters, max-gauges, and log₂-bucketed histograms. Shards are
//!   lock-free on the hot path; [`Telemetry::snapshot`] folds them into a
//!   [`MetricsSnapshot`] at run end.
//! * [`export`] renders spans as JSONL or Chrome `chrome://tracing` JSON
//!   and snapshots as metrics JSON, with a hand-rolled writer (no serde).
//!
//! # Example
//!
//! ```
//! use eco_telemetry::{export, ArgValue, Counter, Telemetry};
//!
//! let telemetry = Telemetry::enabled();
//! let shard = telemetry.shard();
//! let mut buf = telemetry.buffer(0);
//! let span = buf.start();
//! shard.add(Counter::SatConflicts, 17);
//! buf.end_with(span, "detect", "rectify", || {
//!     vec![("outputs", ArgValue::U64(4))]
//! });
//! let spans = buf.into_spans();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(telemetry.snapshot().counter(Counter::SatConflicts), 17);
//! println!("{}", export::chrome_trace(&spans));
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod export;
pub mod json;
mod metrics;
pub mod names;
pub mod profile;
pub mod report;
mod span;

pub use metrics::{Counter, Gauge, Histogram, MetricsShard, MetricsSnapshot};
pub use span::{ArgValue, SpanRecord, SpanToken, TraceBuffer};

use std::sync::Arc;
use std::time::Instant;

/// Run-scoped telemetry handle: a shared clock epoch plus the metrics
/// registry. Cloning shares both.
///
/// The default handle is [disabled](Telemetry::disabled): every operation
/// through it is a no-op that performs no allocation and reads no clock.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

#[derive(Debug)]
struct Inner {
    epoch: Instant,
    registry: metrics::Registry,
}

impl Telemetry {
    /// A no-op handle: buffers record nothing, shards count nothing,
    /// snapshots are empty. Costs no allocation.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// A live handle. The clock epoch (time zero of every span) is taken
    /// now; all shards handed out share one registry.
    pub fn enabled() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                epoch: Instant::now(),
                registry: metrics::Registry::default(),
            })),
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A fresh span buffer on `lane`. Disabled handles return an inert
    /// buffer whose operations are no-ops (its span vector never
    /// allocates).
    pub fn buffer(&self, lane: u32) -> TraceBuffer {
        TraceBuffer::new(self.inner.as_ref().map(|i| i.epoch), lane)
    }

    /// Registers and returns a fresh metrics shard. Intended use: one
    /// shard per worker thread, plus one for the coordinator. Disabled
    /// handles return a no-op shard.
    pub fn shard(&self) -> MetricsShard {
        match &self.inner {
            Some(i) => i.registry.shard(),
            None => MetricsShard::noop(),
        }
    }

    /// Folds every shard registered so far into one snapshot. Disabled
    /// handles return an all-zero snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(i) => i.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert_and_allocation_free() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let shard = t.shard();
        shard.add(Counter::SatConflicts, 5);
        shard.gauge_max(Gauge::BddPeakNodes, 100);
        shard.observe(Histogram::SearchMicros, 1234);
        assert_eq!(t.snapshot(), MetricsSnapshot::default());

        let mut buf = t.buffer(3);
        assert!(!buf.is_enabled());
        let tok = buf.start();
        buf.end(tok, "search", "rectify");
        buf.end_with(tok, "x", "y", || panic!("args must not be built"));
        buf.instant("marker", "rectify");
        let spans = buf.into_spans();
        assert!(spans.is_empty());
        assert_eq!(spans.capacity(), 0, "disabled buffer must never allocate");
    }

    #[test]
    fn enabled_handle_records_spans_and_metrics() {
        let t = Telemetry::enabled();
        assert!(t.is_enabled());
        let shard = t.shard();
        shard.add(Counter::SatConflicts, 2);
        shard.add(Counter::SatConflicts, 3);
        let other = t.shard();
        other.add(Counter::SatConflicts, 5);
        other.gauge_max(Gauge::BddPeakNodes, 7);
        shard.gauge_max(Gauge::BddPeakNodes, 9);
        let snap = t.snapshot();
        assert_eq!(snap.counter(Counter::SatConflicts), 10);
        assert_eq!(snap.gauge(Gauge::BddPeakNodes), 9);

        let mut buf = t.buffer(1);
        let tok = buf.start();
        buf.end_with(tok, "search", "rectify", || {
            vec![("output", ArgValue::Str("y".into()))]
        });
        let spans = buf.into_spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "search");
        assert_eq!(spans[0].lane, 1);
    }

    #[test]
    fn clones_share_the_registry() {
        let t = Telemetry::enabled();
        let c = t.clone();
        c.shard().add(Counter::RectifyValidations, 4);
        assert_eq!(t.snapshot().counter(Counter::RectifyValidations), 4);
    }
}
