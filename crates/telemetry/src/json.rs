//! A minimal JSON reader for the crate's own exports.
//!
//! The exporters in this crate hand-roll their JSON; the consumers —
//! `syseco report` re-reading trace JSONL and metrics JSON, `bench-diff`
//! reading BENCH documents — need the reverse direction. This is a small
//! recursive-descent parser for RFC 8259 JSON, kept zero-dependency like
//! the rest of the crate. Objects preserve key order (they are read back
//! from our own deterministic writers, and reports must stay
//! byte-stable).

use std::fmt;

/// A parsed JSON value. Numbers are kept as `f64`, which is exact for
/// every integer the exporters emit (all well below 2⁵³).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source key order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// This value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// This value's elements, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// This value's entries in key order, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing whitespace is allowed,
/// trailing content is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

/// Parses a JSONL stream: one document per non-empty line.
pub fn parse_lines(input: &str) -> Result<Vec<Value>, ParseError> {
    input
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse)
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, word: &str, message: &'static str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self
                .literal("true", "expected 'true'")
                .map(|_| Value::Bool(true)),
            Some(b'f') => self
                .literal("false", "expected 'false'")
                .map(|_| Value::Bool(false)),
            Some(b'n') => self.literal("null", "expected 'null'").map(|_| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim:
                    // the input is a &str, so byte-wise copying until the
                    // next '"' or '\\' is sound.
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input is valid UTF-8"),
                    );
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        // self.pos is on the 'u'.
        let hex4 = |p: &mut Self| -> Result<u32, ParseError> {
            p.pos += 1;
            let end = p.pos + 4;
            if end > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..end])
                .map_err(|_| p.err("invalid \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.err("invalid \\u escape"))?;
            p.pos = end;
            Ok(v)
        };
        let first = hex4(self)?;
        let code = if (0xD800..0xDC00).contains(&first) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.peek() != Some(b'\\') {
                return Err(self.err("unpaired surrogate"));
            }
            self.pos += 1;
            if self.peek() != Some(b'u') {
                return Err(self.err("unpaired surrogate"));
            }
            let second = hex4(self)?;
            if !(0xDC00..0xE000).contains(&second) {
                return Err(self.err("unpaired surrogate"));
            }
            0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
        } else {
            first
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_crates_own_exports() {
        use crate::{export, ArgValue, Counter, Telemetry};
        let t = Telemetry::enabled();
        let shard = t.shard();
        shard.add(Counter::SatConflicts, 42);
        shard.observe(crate::Histogram::SearchMicros, 77);
        let mut buf = t.buffer(1);
        let tok = buf.start();
        buf.end_with(tok, "search", "rectify", || {
            vec![("output", ArgValue::Str("y\"0\n".into()))]
        });
        let spans = buf.into_spans();

        let doc = parse(&export::metrics_json(&t.snapshot())).unwrap();
        assert_eq!(
            doc.get("counters").unwrap().get("sat.conflicts").unwrap(),
            &Value::Number(42.0)
        );
        let hist = doc.get("histograms").unwrap().get("search.us").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(hist.get("sum").unwrap().as_u64(), Some(77));

        let lines = parse_lines(&export::spans_jsonl(&spans, true)).unwrap();
        assert_eq!(lines.len(), 1);
        assert_eq!(lines[0].get("name").unwrap().as_str(), Some("search"));
        assert_eq!(
            lines[0]
                .get("args")
                .unwrap()
                .get("output")
                .unwrap()
                .as_str(),
            Some("y\"0\n")
        );
    }

    #[test]
    fn parses_scalars_arrays_and_nesting() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Value::Number(-125.0));
        assert_eq!(
            parse("[1, [2, {\"a\": []}]]").unwrap(),
            Value::Array(vec![
                Value::Number(1.0),
                Value::Array(vec![
                    Value::Number(2.0),
                    Value::Object(vec![("a".into(), Value::Array(vec![]))]),
                ]),
            ])
        );
        assert_eq!(parse("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn unescapes_strings_including_surrogate_pairs() {
        assert_eq!(
            parse(r#""a\"b\\c\ndAé""#).unwrap().as_str(),
            Some("a\"b\\c\ndAé")
        );
        assert_eq!(
            parse(r#""😀""#).unwrap().as_str(),
            Some("\u{1F600}"),
            "raw multi-byte UTF-8 passes through"
        );
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}"),
            "surrogate pairs combine"
        );
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"abc", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        let err = parse("[1, ?]").unwrap_err();
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn object_key_order_is_preserved() {
        let doc = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = doc
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
