//! The metric- and span-name registry: every exported name as a constant.
//!
//! Counter, gauge, and histogram names used to be string literals scattered
//! across `sat`, `bdd`, `core`, and the cache/checkpoint layers. They are
//! consolidated here so the exported vocabulary is a closed, documented set:
//! the metric enums ([`Counter`](crate::Counter), [`Gauge`](crate::Gauge),
//! [`Histogram`](crate::Histogram)) take their labels from these
//! constants, exporters render nothing else, and
//! [`ALL_METRIC_NAMES`]/[`SPAN_NAMES`] let tests assert that a run's
//! snapshot or trace stays inside the registry.

// ---------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------

/// SAT conflicts across every solver of the run.
pub const SAT_CONFLICTS: &str = "sat.conflicts";
/// SAT decisions.
pub const SAT_DECISIONS: &str = "sat.decisions";
/// SAT unit propagations.
pub const SAT_PROPAGATIONS: &str = "sat.propagations";
/// SAT Luby restarts.
pub const SAT_RESTARTS: &str = "sat.restarts";
/// SAT learnt clauses (asserting units included).
pub const SAT_LEARNT_CLAUSES: &str = "sat.learnt_clauses";
/// SAT literals across every learnt clause (after minimization).
pub const SAT_LEARNT_LITERALS: &str = "sat.learnt_literals";
/// BDD apply-cache hits.
pub const BDD_APPLY_HITS: &str = "bdd.apply.hits";
/// BDD apply-cache misses.
pub const BDD_APPLY_MISSES: &str = "bdd.apply.misses";
/// BDD ITE-cache hits.
pub const BDD_ITE_HITS: &str = "bdd.ite.hits";
/// BDD ITE-cache misses.
pub const BDD_ITE_MISSES: &str = "bdd.ite.misses";
/// BDD NOT-cache hits.
pub const BDD_NOT_HITS: &str = "bdd.not.hits";
/// BDD NOT-cache misses.
pub const BDD_NOT_MISSES: &str = "bdd.not.misses";
/// BDD quantification-cache hits.
pub const BDD_QUANT_HITS: &str = "bdd.quant.hits";
/// BDD quantification-cache misses.
pub const BDD_QUANT_MISSES: &str = "bdd.quant.misses";
/// BDD unique-table resize (rehash) events.
pub const BDD_UNIQUE_RESIZES: &str = "bdd.unique.resizes";
/// BDD operation-cache entries dropped by explicit cache clears.
pub const BDD_EVICTIONS: &str = "bdd.evictions";
/// BDD mark-and-sweep garbage-collection passes.
pub const BDD_GC_RUNS: &str = "bdd.gc.runs";
/// BDD nodes reclaimed by garbage collection.
pub const BDD_GC_FREED: &str = "bdd.gc.freed";
/// BDD variable-reorder (sifting) passes.
pub const BDD_REORDERS: &str = "bdd.reorders";
/// Sampling-domain refinements (false positives fed back).
pub const RECTIFY_REFINEMENTS: &str = "rectify.refinements";
/// SAT validation calls.
pub const RECTIFY_VALIDATIONS: &str = "rectify.validations";
/// Feasible point-sets examined.
pub const RECTIFY_POINT_SETS: &str = "rectify.point_sets";
/// Rewiring choices examined.
pub const RECTIFY_CHOICES: &str = "rectify.choices";
/// Candidates rejected by the bit-parallel simulation pre-filter.
pub const PREFILTER_SCREENED: &str = "prefilter.screened";
/// Candidates that survived the simulation pre-filter.
pub const PREFILTER_PASSED: &str = "prefilter.passed";
/// Outputs that took the output-rewire fallback.
pub const RECTIFY_FALLBACKS: &str = "rectify.fallbacks";
/// Outputs rectified through non-trivial rewiring.
pub const RECTIFY_REWIRED: &str = "rectify.rewired";
/// Proposals invalidated by an earlier merge.
pub const RECTIFY_MERGE_CONFLICTS: &str = "rectify.merge_conflicts";
/// Degradations recorded (any reason).
pub const RECTIFY_DEGRADATIONS: &str = "rectify.degradations";
/// Persistent-cache lookups that found a reusable record.
pub const CACHE_HIT: &str = "cache.hit";
/// Persistent-cache lookups that missed.
pub const CACHE_MISS: &str = "cache.miss";
/// Cached results rejected by re-verification before reuse.
pub const CACHE_VERIFY_REJECT: &str = "cache.verify_reject";
/// Damaged cache segments skipped on open.
pub const CACHE_CORRUPT_SEGMENT: &str = "cache.corrupt_segment";
/// Transient cache/checkpoint I/O retries performed.
pub const CACHE_RETRY: &str = "cache.retry";
/// Cache/checkpoint operations that failed after all retries.
pub const CACHE_IO_ERROR: &str = "cache.io_error";
/// Per-output searches skipped by a checkpoint resume.
pub const CHECKPOINT_HIT: &str = "checkpoint.hit";
/// Per-output results persisted to the checkpoint directory.
pub const CHECKPOINT_WRITE: &str = "checkpoint.write";
/// Faults fired by an active fault-injection plan.
pub const FAULT_INJECTED: &str = "fault.injected";
/// Jobs submitted to the rectification daemon (admission attempts).
pub const SERVE_SUBMITTED: &str = "serve.submitted";
/// Jobs admitted into a scheduler lane.
pub const SERVE_ADMITTED: &str = "serve.admitted";
/// Jobs rejected at admission (overload, shutdown, or invalid request).
pub const SERVE_REJECTED: &str = "serve.rejected";
/// Jobs that finished with a clean, undegraded patch.
pub const SERVE_COMPLETED: &str = "serve.completed";
/// Jobs that finished with at least one degraded output.
pub const SERVE_DEGRADED: &str = "serve.degraded";
/// Jobs cancelled by a client cancel frame or by daemon drain.
pub const SERVE_CANCELLED: &str = "serve.cancelled";
/// Jobs whose deadline passed before dispatch (never ran the engine).
pub const SERVE_EXPIRED: &str = "serve.expired";
/// Jobs that errored before producing a patch (e.g. unparsable netlists).
pub const SERVE_FAILED: &str = "serve.failed";
/// Dispatches whose budget was shrunk by the overload-shedding ladder.
pub const SERVE_SHED: &str = "serve.shed";

// ---------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------

/// Peak node count over every BDD manager of the run.
pub const BDD_PEAK_NODES: &str = "bdd.peak_nodes";
/// Peak unique-table size over every BDD manager of the run.
pub const BDD_UNIQUE_ENTRIES: &str = "bdd.unique_entries";
/// Peak number of jobs queued across all scheduler lanes.
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
/// Peak number of jobs running concurrently on daemon workers.
pub const SERVE_ACTIVE_JOBS: &str = "serve.active_jobs";

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

/// Per-output search wall-clock, µs.
pub const SEARCH_US: &str = "search.us";
/// Per-validation wall-clock, µs.
pub const VALIDATE_US: &str = "validate.us";
/// SAT conflicts spent per validation call.
pub const SAT_CONFLICTS_PER_CALL: &str = "sat.conflicts_per_call";
/// Queue wait of jobs dispatched from the high-priority lane, µs.
pub const SERVE_WAIT_HIGH_US: &str = "serve.wait.high_us";
/// Queue wait of jobs dispatched from the normal-priority lane, µs.
pub const SERVE_WAIT_NORMAL_US: &str = "serve.wait.normal_us";
/// Queue wait of jobs dispatched from the low-priority lane, µs.
pub const SERVE_WAIT_LOW_US: &str = "serve.wait.low_us";
/// End-to-end service time of one daemon job (dispatch to outcome), µs.
pub const SERVE_JOB_US: &str = "serve.job_us";

/// Every documented metric name — counters, gauges, histograms — in export
/// order. A metrics snapshot can never contain a key outside this set; the
/// registry test in `tests/trace_determinism.rs` pins that contract.
pub const ALL_METRIC_NAMES: &[&str] = &[
    // counters
    SAT_CONFLICTS,
    SAT_DECISIONS,
    SAT_PROPAGATIONS,
    SAT_RESTARTS,
    SAT_LEARNT_CLAUSES,
    SAT_LEARNT_LITERALS,
    BDD_APPLY_HITS,
    BDD_APPLY_MISSES,
    BDD_ITE_HITS,
    BDD_ITE_MISSES,
    BDD_NOT_HITS,
    BDD_NOT_MISSES,
    BDD_QUANT_HITS,
    BDD_QUANT_MISSES,
    BDD_UNIQUE_RESIZES,
    BDD_EVICTIONS,
    BDD_GC_RUNS,
    BDD_GC_FREED,
    BDD_REORDERS,
    RECTIFY_REFINEMENTS,
    RECTIFY_VALIDATIONS,
    RECTIFY_POINT_SETS,
    RECTIFY_CHOICES,
    PREFILTER_SCREENED,
    PREFILTER_PASSED,
    RECTIFY_FALLBACKS,
    RECTIFY_REWIRED,
    RECTIFY_MERGE_CONFLICTS,
    RECTIFY_DEGRADATIONS,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_VERIFY_REJECT,
    CACHE_CORRUPT_SEGMENT,
    CACHE_RETRY,
    CACHE_IO_ERROR,
    CHECKPOINT_HIT,
    CHECKPOINT_WRITE,
    FAULT_INJECTED,
    SERVE_SUBMITTED,
    SERVE_ADMITTED,
    SERVE_REJECTED,
    SERVE_COMPLETED,
    SERVE_DEGRADED,
    SERVE_CANCELLED,
    SERVE_EXPIRED,
    SERVE_FAILED,
    SERVE_SHED,
    // gauges
    BDD_PEAK_NODES,
    BDD_UNIQUE_ENTRIES,
    SERVE_QUEUE_DEPTH,
    SERVE_ACTIVE_JOBS,
    // histograms
    SEARCH_US,
    VALIDATE_US,
    SAT_CONFLICTS_PER_CALL,
    SERVE_WAIT_HIGH_US,
    SERVE_WAIT_NORMAL_US,
    SERVE_WAIT_LOW_US,
    SERVE_JOB_US,
];

// ---------------------------------------------------------------------
// Span names (trace vocabulary, DESIGN.md §10)
// ---------------------------------------------------------------------

/// Whole-run coordinator span (lane 0).
pub const SPAN_RUN: &str = "run";
/// Failing-output detection (lane 0).
pub const SPAN_DETECT: &str = "detect";
/// Sequential merge phase (lane 0).
pub const SPAN_MERGE: &str = "merge";
/// One proposal commit inside the merge (lane 0).
pub const SPAN_COMMIT: &str = "commit";
/// Post-merge verification pass (lane 0).
pub const SPAN_VERIFY: &str = "verify";
/// Patch-input refinement sweep (lane 0).
pub const SPAN_REFINE_PATCH: &str = "refine_patch";
/// One per-output search (lane = merge slot + 1).
pub const SPAN_SEARCH: &str = "search";
/// §5.1 error-sample collection inside a search.
pub const SPAN_SAMPLES: &str = "samples";
/// §4.2 feasible point-set enumeration inside a search.
pub const SPAN_POINT_SETS: &str = "point_sets";
/// §4.4 rewiring-choice computation inside a search.
pub const SPAN_CHOICES: &str = "choices";
/// One SAT validation call inside a search.
pub const SPAN_VALIDATE: &str = "validate";
/// Instant marker: a sampling-domain refinement.
pub const SPAN_REFINE: &str = "refine";

/// The category every engine span carries.
pub const CAT_RECTIFY: &str = "rectify";

/// Every documented span name. Coordinator phases first, then the
/// search-lane phases, in the order the profiler ranks them.
pub const SPAN_NAMES: &[&str] = &[
    SPAN_RUN,
    SPAN_DETECT,
    SPAN_SEARCH,
    SPAN_SAMPLES,
    SPAN_POINT_SETS,
    SPAN_CHOICES,
    SPAN_VALIDATE,
    SPAN_REFINE,
    SPAN_MERGE,
    SPAN_COMMIT,
    SPAN_VERIFY,
    SPAN_REFINE_PATCH,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_duplicate_free_and_dotted() {
        let mut names = ALL_METRIC_NAMES.to_vec();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
        assert!(ALL_METRIC_NAMES.iter().all(|n| n.contains('.')));
        let mut spans = SPAN_NAMES.to_vec();
        spans.sort_unstable();
        spans.dedup();
        assert_eq!(spans.len(), SPAN_NAMES.len());
    }
}
