//! The run-report renderer: trace + metrics → deterministic markdown.
//!
//! `syseco report` (and the in-process `--report-out` flag) feed a
//! [`Profile`] and a [`MetricsDoc`] through [`render`] to produce a
//! human-readable post-mortem of one rectification run: a flamegraph-style
//! hot-path table, a per-output cost ranking, a degradation/recovery
//! narrative, and the folded metrics with quantile estimates.
//!
//! **Determinism contract:** the default report contains no wall-clock
//! data — only span counts, deterministic work annotations, counters,
//! gauges, and the deterministic `sat.conflicts_per_call` histogram — so
//! it is byte-identical across `--jobs` values for the same scenario
//! (pinned by `tests/trace_determinism.rs`). Wall-clock columns and the
//! `.us` timing histograms appear only when
//! [`ReportOptions::wall_clock`] is set.

use crate::json;
use crate::names;
use crate::profile::{Profile, ProfileNode};
use crate::{Histogram, MetricsSnapshot};

/// A metrics document in exporter shape: what `metrics.json` holds, and
/// what a live [`MetricsSnapshot`] converts into.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDoc {
    /// `(name, value)` counters in export order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` gauges in export order.
    pub gauges: Vec<(String, u64)>,
    /// Histograms in export order.
    pub histograms: Vec<HistogramDoc>,
}

/// One histogram of a [`MetricsDoc`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDoc {
    /// Dotted metric name.
    pub name: String,
    /// Observation count.
    pub count: u64,
    /// Exact observation sum.
    pub sum: u64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
    /// `(bucket, count)` over non-empty log₂ buckets.
    pub buckets: Vec<(u32, u64)>,
}

impl MetricsDoc {
    /// The value of one counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// The value of one gauge (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// One histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramDoc> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

impl From<&MetricsSnapshot> for MetricsDoc {
    fn from(snapshot: &MetricsSnapshot) -> Self {
        MetricsDoc {
            counters: snapshot
                .counters()
                .map(|(name, value)| (name.to_string(), value))
                .collect(),
            gauges: snapshot
                .gauges()
                .map(|(name, value)| (name.to_string(), value))
                .collect(),
            histograms: Histogram::ALL
                .iter()
                .map(|&h| {
                    let (p50, p90, p99) = snapshot.histogram_percentiles(h);
                    HistogramDoc {
                        name: h.name().to_string(),
                        count: snapshot.histogram_count(h),
                        sum: snapshot.histogram_sum(h),
                        p50,
                        p90,
                        p99,
                        buckets: snapshot
                            .histogram_buckets(h)
                            .iter()
                            .enumerate()
                            .filter(|&(_, &c)| c != 0)
                            .map(|(b, &c)| (b as u32, c))
                            .collect(),
                    }
                })
                .collect(),
        }
    }
}

/// Parses a `metrics.json` document (as written by
/// [`export::metrics_json`](crate::export::metrics_json)) back into a
/// [`MetricsDoc`].
pub fn parse_metrics_json(input: &str) -> Result<MetricsDoc, String> {
    let doc = json::parse(input).map_err(|e| e.to_string())?;
    let section = |key: &str| {
        doc.get(key)
            .and_then(|v| v.as_object())
            .ok_or_else(|| format!("metrics document missing object {key:?}"))
    };
    let scalars = |key: &str| -> Result<Vec<(String, u64)>, String> {
        section(key)?
            .iter()
            .map(|(name, value)| {
                value
                    .as_u64()
                    .map(|v| (name.clone(), v))
                    .ok_or_else(|| format!("{key}.{name} is not a u64"))
            })
            .collect()
    };
    let mut histograms = Vec::new();
    for (name, value) in section("histograms")? {
        let num = |key: &str| {
            value
                .get(key)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("histogram {name} missing {key}"))
        };
        let buckets = value
            .get("buckets")
            .and_then(|v| v.as_array())
            .ok_or_else(|| format!("histogram {name} missing buckets"))?
            .iter()
            .map(|pair| {
                let pair = pair.as_array().filter(|p| p.len() == 2);
                match pair.and_then(|p| Some((p[0].as_u64()?, p[1].as_u64()?))) {
                    Some((b, c)) => Ok((b as u32, c)),
                    None => Err(format!("histogram {name} has a malformed bucket")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        histograms.push(HistogramDoc {
            name: name.clone(),
            count: num("count")? as u64,
            sum: num("sum")? as u64,
            p50: num("p50")?,
            p90: num("p90")?,
            p99: num("p99")?,
            buckets,
        });
    }
    Ok(MetricsDoc {
        counters: scalars("counters")?,
        gauges: scalars("gauges")?,
        histograms,
    })
}

/// Rendering options for [`render`].
#[derive(Debug, Clone, Default)]
pub struct ReportOptions {
    /// Include wall-clock columns and timing histograms. These are *not*
    /// deterministic across runs or worker counts.
    pub wall_clock: bool,
    /// Title line; defaults to `syseco run report`.
    pub title: Option<String>,
}

/// Whether a histogram holds wall-clock data (suppressed by default).
fn is_timing(name: &str) -> bool {
    name.ends_with(".us")
}

fn format_args(args: &[(String, u64)]) -> String {
    if args.is_empty() {
        return "—".to_string();
    }
    args.iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the markdown run report.
pub fn render(profile: &Profile, metrics: &MetricsDoc, options: &ReportOptions) -> String {
    let mut out = String::new();
    let title = options.title.as_deref().unwrap_or("syseco run report");
    out.push_str(&format!("# {title}\n"));

    // ---- Run summary -------------------------------------------------
    out.push_str("\n## Run summary\n\n| metric | value |\n| --- | ---: |\n");
    let run = profile
        .phase_totals()
        .into_iter()
        .find(|n| n.name == names::SPAN_RUN);
    let run_args = run.map(|n| n.args_u64).unwrap_or_default();
    for key in [
        "outputs_total",
        "outputs_failing",
        "rewired",
        "fallbacks",
        "degradations",
    ] {
        let value = run_args
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(0);
        out.push_str(&format!("| {} | {value} |\n", key.replace('_', " ")));
    }
    out.push_str(&format!(
        "| sat conflicts | {} |\n| bdd peak nodes | {} |\n",
        metrics.counter(names::SAT_CONFLICTS),
        metrics.gauge(names::BDD_PEAK_NODES),
    ));

    // ---- Hot paths ---------------------------------------------------
    out.push_str("\n## Hot paths\n\n");
    if options.wall_clock {
        out.push_str("| span | count | total µs | self µs | work |\n");
        out.push_str("| --- | ---: | ---: | ---: | --- |\n");
    } else {
        out.push_str("| span | count | work |\n| --- | ---: | --- |\n");
    }
    fn hot_rows(node: &ProfileNode, depth: usize, wall_clock: bool, out: &mut String) {
        let indent = "&nbsp;&nbsp;".repeat(depth);
        if wall_clock {
            out.push_str(&format!(
                "| {indent}`{}` | {} | {} | {} | {} |\n",
                node.name,
                node.count,
                node.total_us,
                node.self_us,
                format_args(&node.args_u64),
            ));
        } else {
            out.push_str(&format!(
                "| {indent}`{}` | {} | {} |\n",
                node.name,
                node.count,
                format_args(&node.args_u64),
            ));
        }
        for child in &node.children {
            hot_rows(child, depth + 1, wall_clock, out);
        }
    }
    for lane_root in &profile.root.children {
        hot_rows(lane_root, 0, options.wall_clock, &mut out);
    }

    // ---- Per-output cost ranking ------------------------------------
    out.push_str("\n## Per-output cost ranking\n\n");
    let mut rows = profile.per_output();
    if rows.is_empty() {
        out.push_str("No per-output searches recorded (fully resumed or trivial run).\n");
    } else {
        rows.sort_by(|a, b| {
            b.sat_conflicts
                .cmp(&a.sat_conflicts)
                .then(b.validations.cmp(&a.validations))
                .then(a.output.cmp(&b.output))
        });
        if options.wall_clock {
            out.push_str(
                "| output | sat conflicts | validations | point sets | choices | refinements | proposal | µs |\n\
                 | --- | ---: | ---: | ---: | ---: | ---: | :-: | ---: |\n",
            );
        } else {
            out.push_str(
                "| output | sat conflicts | validations | point sets | choices | refinements | proposal |\n\
                 | --- | ---: | ---: | ---: | ---: | ---: | :-: |\n",
            );
        }
        for row in &rows {
            let proposal = if row.proposal { "yes" } else { "no" };
            if options.wall_clock {
                out.push_str(&format!(
                    "| `{}` | {} | {} | {} | {} | {} | {} | {} |\n",
                    row.output,
                    row.sat_conflicts,
                    row.validations,
                    row.point_sets,
                    row.choices,
                    row.refinements,
                    proposal,
                    row.dur_us,
                ));
            } else {
                out.push_str(&format!(
                    "| `{}` | {} | {} | {} | {} | {} | {} |\n",
                    row.output,
                    row.sat_conflicts,
                    row.validations,
                    row.point_sets,
                    row.choices,
                    row.refinements,
                    proposal,
                ));
            }
        }
    }

    // ---- Degradations and recovery narrative -------------------------
    out.push_str("\n## Degradations and recovery\n\n");
    let mut narrated = false;
    for span in profile.spans() {
        if span.name == names::SPAN_COMMIT && span.arg_u64("degraded") == Some(1) {
            let output = span.arg_str("output").unwrap_or("?");
            let action = span.arg_str("action").unwrap_or("?");
            let reason = span.arg_str("reason").unwrap_or("unspecified");
            out.push_str(&format!(
                "- output `{output}` degraded to `{action}` ({reason})\n"
            ));
            narrated = true;
        }
    }
    let narratives: [(u64, String); 6] = [
        (
            metrics.counter(names::RECTIFY_MERGE_CONFLICTS),
            format!(
                "- {} proposal(s) invalidated by an earlier merge and re-searched\n",
                metrics.counter(names::RECTIFY_MERGE_CONFLICTS)
            ),
        ),
        (
            metrics.counter(names::CHECKPOINT_HIT),
            format!(
                "- resume skipped {} search(es) via checkpoint; {} result(s) checkpointed\n",
                metrics.counter(names::CHECKPOINT_HIT),
                metrics.counter(names::CHECKPOINT_WRITE)
            ),
        ),
        (
            metrics.counter(names::CACHE_HIT) + metrics.counter(names::CACHE_MISS),
            format!(
                "- persistent cache: {} hit(s), {} miss(es), {} verify-reject(s), {} corrupt segment(s)\n",
                metrics.counter(names::CACHE_HIT),
                metrics.counter(names::CACHE_MISS),
                metrics.counter(names::CACHE_VERIFY_REJECT),
                metrics.counter(names::CACHE_CORRUPT_SEGMENT)
            ),
        ),
        (
            metrics.counter(names::CACHE_RETRY) + metrics.counter(names::CACHE_IO_ERROR),
            format!(
                "- I/O: {} transient retry(ies), {} hard error(s)\n",
                metrics.counter(names::CACHE_RETRY),
                metrics.counter(names::CACHE_IO_ERROR)
            ),
        ),
        (
            metrics.counter(names::FAULT_INJECTED),
            format!(
                "- {} fault(s) fired by the active fault-injection plan\n",
                metrics.counter(names::FAULT_INJECTED)
            ),
        ),
        (
            metrics.counter(names::RECTIFY_REFINEMENTS),
            format!(
                "- {} sampling-domain refinement(s) after false-positive validations\n",
                metrics.counter(names::RECTIFY_REFINEMENTS)
            ),
        ),
    ];
    for (trigger, line) in &narratives {
        if *trigger > 0 {
            out.push_str(line);
            narrated = true;
        }
    }
    if !narrated {
        out.push_str("Clean run: no degradations, retries, faults, or resumes.\n");
    }

    // ---- Metrics -----------------------------------------------------
    out.push_str("\n## Metrics\n\n### Counters\n\n| counter | value |\n| --- | ---: |\n");
    for (name, value) in &metrics.counters {
        if *value > 0 {
            out.push_str(&format!("| `{name}` | {value} |\n"));
        }
    }
    out.push_str("\n### Gauges\n\n| gauge | value |\n| --- | ---: |\n");
    for (name, value) in &metrics.gauges {
        out.push_str(&format!("| `{name}` | {value} |\n"));
    }
    out.push_str("\n### Histograms\n\n");
    out.push_str("| histogram | count | sum | p50 | p90 | p99 |\n");
    out.push_str("| --- | ---: | ---: | ---: | ---: | ---: |\n");
    for h in &metrics.histograms {
        if is_timing(&h.name) && !options.wall_clock {
            // Timing data is nondeterministic; only the observation count
            // is stable across worker counts.
            out.push_str(&format!("| `{}` | {} | — | — | — | — |\n", h.name, h.count));
        } else {
            out.push_str(&format!(
                "| `{}` | {} | {} | {:.1} | {:.1} | {:.1} |\n",
                h.name, h.count, h.sum, h.p50, h.p90, h.p99
            ));
        }
    }
    if !options.wall_clock {
        out.push_str(
            "\nWall-clock data omitted for determinism; re-render with `--wall-clock` to include it.\n",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{ArgValue, SpanRecord};
    use crate::{export, Counter, Gauge, Telemetry};

    fn sample_profile() -> Profile {
        let spans = vec![
            SpanRecord {
                name: "detect",
                cat: "rectify",
                lane: 0,
                start_us: 0,
                dur_us: 5,
                args: vec![],
            },
            SpanRecord {
                name: "commit",
                cat: "rectify",
                lane: 0,
                start_us: 62,
                dur_us: 10,
                args: vec![
                    ("output", ArgValue::Str("y1".into())),
                    ("action", ArgValue::Str("output_rewire".into())),
                    ("degraded", ArgValue::U64(1)),
                    ("reason", ArgValue::Str("budget".into())),
                ],
            },
            SpanRecord {
                name: "merge",
                cat: "rectify",
                lane: 0,
                start_us: 60,
                dur_us: 20,
                args: vec![],
            },
            SpanRecord {
                name: "run",
                cat: "rectify",
                lane: 0,
                start_us: 0,
                dur_us: 100,
                args: vec![
                    ("outputs_total", ArgValue::U64(2)),
                    ("outputs_failing", ArgValue::U64(2)),
                    ("rewired", ArgValue::U64(1)),
                    ("fallbacks", ArgValue::U64(1)),
                    ("degradations", ArgValue::U64(1)),
                ],
            },
            SpanRecord {
                name: "search",
                cat: "rectify",
                lane: 1,
                start_us: 5,
                dur_us: 40,
                args: vec![
                    ("output", ArgValue::Str("y0".into())),
                    ("refinements", ArgValue::U64(0)),
                    ("validations", ArgValue::U64(2)),
                    ("point_sets", ArgValue::U64(3)),
                    ("choices", ArgValue::U64(4)),
                    ("sat_conflicts", ArgValue::U64(11)),
                    ("proposal", ArgValue::U64(1)),
                ],
            },
            SpanRecord {
                name: "search",
                cat: "rectify",
                lane: 2,
                start_us: 5,
                dur_us: 50,
                args: vec![
                    ("output", ArgValue::Str("y1".into())),
                    ("refinements", ArgValue::U64(1)),
                    ("validations", ArgValue::U64(3)),
                    ("point_sets", ArgValue::U64(5)),
                    ("choices", ArgValue::U64(6)),
                    ("sat_conflicts", ArgValue::U64(42)),
                    ("proposal", ArgValue::U64(0)),
                ],
            },
        ];
        Profile::from_spans(&spans)
    }

    fn sample_metrics() -> MetricsDoc {
        let t = Telemetry::enabled();
        let shard = t.shard();
        shard.add(Counter::SatConflicts, 53);
        shard.add(Counter::RectifyValidations, 5);
        shard.add(Counter::CacheRetries, 2);
        shard.gauge_max(Gauge::BddPeakNodes, 1234);
        shard.observe(Histogram::SearchMicros, 40);
        shard.observe(Histogram::SearchMicros, 50);
        shard.observe(Histogram::SatConflictsPerCall, 11);
        MetricsDoc::from(&t.snapshot())
    }

    #[test]
    fn report_ranks_outputs_by_sat_conflicts() {
        let report = render(
            &sample_profile(),
            &sample_metrics(),
            &ReportOptions::default(),
        );
        let y1 = report.find("| `y1` | 42 |").expect("y1 row");
        let y0 = report.find("| `y0` | 11 |").expect("y0 row");
        assert!(y1 < y0, "costlier output must rank first");
        assert!(report.contains("## Hot paths"));
        assert!(report.contains("| outputs total | 2 |"));
        assert!(report.contains("| sat conflicts | 53 |"));
    }

    #[test]
    fn report_narrates_degradations_and_retries() {
        let report = render(
            &sample_profile(),
            &sample_metrics(),
            &ReportOptions::default(),
        );
        assert!(report.contains("- output `y1` degraded to `output_rewire` (budget)"));
        assert!(report.contains("- I/O: 2 transient retry(ies), 0 hard error(s)"));
    }

    #[test]
    fn default_report_has_no_wall_clock_data() {
        let report = render(
            &sample_profile(),
            &sample_metrics(),
            &ReportOptions::default(),
        );
        assert!(!report.contains("µs"), "no µs columns by default");
        // Timing histograms show only their deterministic count.
        assert!(report.contains("| `search.us` | 2 | — | — | — | — |"));
        // The deterministic conflicts-per-call histogram keeps its data.
        assert!(report.contains("| `sat.conflicts_per_call` | 1 | 11 |"));
        assert!(report.contains("Wall-clock data omitted"));

        let wall = render(
            &sample_profile(),
            &sample_metrics(),
            &ReportOptions {
                wall_clock: true,
                ..Default::default()
            },
        );
        assert!(wall.contains("total µs"));
        assert!(wall.contains("| `search.us` | 2 | 90 |"));
    }

    #[test]
    fn clean_run_narrative_collapses_to_one_line() {
        let t = Telemetry::enabled();
        let profile = Profile::from_spans(&[]);
        let report = render(
            &profile,
            &MetricsDoc::from(&t.snapshot()),
            &ReportOptions::default(),
        );
        assert!(report.contains("Clean run: no degradations"));
        assert!(report.contains("No per-output searches recorded"));
    }

    #[test]
    fn metrics_doc_round_trips_through_metrics_json() {
        let t = Telemetry::enabled();
        let shard = t.shard();
        shard.add(Counter::BddApplyHits, 17);
        shard.observe(Histogram::ValidateMicros, 99);
        let snap = t.snapshot();
        let direct = MetricsDoc::from(&snap);
        let parsed = parse_metrics_json(&export::metrics_json(&snap)).unwrap();
        assert_eq!(parsed.counters, direct.counters);
        assert_eq!(parsed.gauges, direct.gauges);
        assert_eq!(parsed.histograms.len(), direct.histograms.len());
        for (a, b) in parsed.histograms.iter().zip(&direct.histograms) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.count, b.count);
            assert_eq!(a.sum, b.sum);
            assert_eq!(a.buckets, b.buckets);
            // Quantiles pass through the {:.1} rendering, so compare at
            // that precision.
            assert!((a.p50 - b.p50).abs() < 0.06, "{} p50", a.name);
            assert!((a.p99 - b.p99).abs() < 0.06, "{} p99", a.name);
        }
    }

    #[test]
    fn report_from_parsed_artifacts_matches_report_from_live_data() {
        // The CLI path: spans → JSONL → parse → profile must render the
        // same report as the in-process path.
        let profile = sample_profile();
        let metrics = sample_metrics();
        let live = render(&profile, &metrics, &ReportOptions::default());

        let jsonl: String = profile
            .spans()
            .iter()
            .map(|s| {
                let mut record = format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"lane\":{},\"ts_us\":{},\"dur_us\":{}",
                    s.name, s.cat, s.lane, s.start_us, s.dur_us
                );
                if !s.args_u64.is_empty() || !s.args_str.is_empty() {
                    record.push_str(",\"args\":{");
                    let mut parts: Vec<String> = s
                        .args_str
                        .iter()
                        .map(|(k, v)| format!("\"{k}\":\"{v}\""))
                        .collect();
                    parts.extend(s.args_u64.iter().map(|(k, v)| format!("\"{k}\":{v}")));
                    record.push_str(&parts.join(","));
                    record.push('}');
                }
                record.push('}');
                record.push('\n');
                record
            })
            .collect();
        let reparsed = Profile::from_owned(crate::profile::parse_spans_jsonl(&jsonl).unwrap());
        let from_files = render(&reparsed, &metrics, &ReportOptions::default());
        assert_eq!(live, from_files);
    }
}
