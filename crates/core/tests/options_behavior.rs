//! Behavioural tests of the engine's tuning knobs: every configuration must
//! stay correct; the knobs only trade quality and effort.

use eco_netlist::{Circuit, GateKind};
use syseco::{verify_rectification, EcoOptions, SamplePolicy, Syseco};

/// A multi-sink case: two output words gated by v0/v1 must be re-gated by
/// c/¬c (the Figure-1 shape, 2 bits wide).
fn case() -> (Circuit, Circuit) {
    let build = |revised: bool| {
        let mut c = Circuit::new(if revised { "spec" } else { "impl" });
        let w10 = c.add_input("w10");
        let w11 = c.add_input("w11");
        let w20 = c.add_input("w20");
        let w21 = c.add_input("w21");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let (g0, g1) = if revised {
            let cc = c.add_gate(GateKind::And, &[a, b]).unwrap();
            let nc = c.add_gate(GateKind::Not, &[cc]).unwrap();
            (cc, nc)
        } else {
            (a, b)
        };
        let t10 = c.add_gate(GateKind::And, &[w10, g0]).unwrap();
        let t20 = c.add_gate(GateKind::And, &[w20, g1]).unwrap();
        let o0 = c.add_gate(GateKind::Or, &[t10, t20]).unwrap();
        let t11 = c.add_gate(GateKind::And, &[w11, g0]).unwrap();
        let t21 = c.add_gate(GateKind::And, &[w21, g1]).unwrap();
        let o1 = c.add_gate(GateKind::Or, &[t11, t21]).unwrap();
        c.add_output("o0", o0);
        c.add_output("o1", o1);
        // Protected sibling: depends on b, must not change.
        let d = c.add_gate(GateKind::And, &[w10, b]).unwrap();
        c.add_output("d", d);
        c
    };
    (build(false), build(true))
}

fn rectify_with(options: EcoOptions) -> syseco::EcoResult {
    let (implementation, spec) = case();
    let result = Syseco::new(options)
        .rectify(&implementation, &spec)
        .expect("rectification succeeds");
    assert!(
        verify_rectification(&result.patched, &spec).unwrap(),
        "every configuration must produce a correct patch"
    );
    result
}

#[test]
fn all_sample_policies_are_correct() {
    for policy in [
        SamplePolicy::ErrorDomain,
        SamplePolicy::Random,
        SamplePolicy::Mixed,
    ] {
        let mut options = EcoOptions::with_seed(21);
        options.sample_policy = policy;
        let r = rectify_with(options);
        assert_eq!(r.rectify.outputs_failing, 2, "{policy:?}");
    }
}

#[test]
fn single_point_limit_still_succeeds() {
    let mut options = EcoOptions::with_seed(22);
    options.max_points = 1;
    rectify_with(options);
}

#[test]
fn tiny_validation_budget_degrades_to_fallback_not_failure() {
    let mut options = EcoOptions::with_seed(23);
    options.validation_budget = 1;
    options.max_refinements = 1;
    let r = rectify_with(options);
    // With no budget the engine cannot confirm searches, but the fallback
    // path still rectifies everything: each failing output is resolved by a
    // committed rewire, a fallback, or as a side effect of another commit.
    assert!(r.rectify.fallbacks + r.rectify.rewire_rectified >= 1);
    assert!(
        r.rectify.fallbacks + r.rectify.rewire_rectified <= r.rectify.outputs_failing,
        "{:?}",
        r.rectify
    );
}

#[test]
fn tiny_bdd_budget_degrades_gracefully() {
    let mut options = EcoOptions::with_seed(24);
    options.bdd_node_limit = 256;
    rectify_with(options);
}

#[test]
fn small_domain_needs_no_more_than_max_refinements() {
    let mut options = EcoOptions::with_seed(25);
    options.num_samples = 2;
    options.max_refinements = 3;
    let r = rectify_with(options);
    assert!(r.rectify.refinements <= 3 * r.rectify.outputs_failing + 3);
}

#[test]
fn shared_clones_are_counted_once() {
    // Both revised outputs need the new c = a∧b logic; the patch must not
    // contain two copies of it.
    let r = rectify_with(EcoOptions::with_seed(26));
    // Ideal is 3 gates (c, ¬c, and one reused gate); without clone sharing
    // the two outputs would clone ~10. Allow a small slack for decode-order
    // variance while still catching duplicate clones.
    assert!(
        r.stats.gates <= 6,
        "shared clones must not be duplicated per output: {}",
        r.stats
    );
}

#[test]
fn level_driven_mode_is_correct_and_deterministic() {
    let mut options = EcoOptions::with_seed(27);
    options.level_driven = true;
    let a = rectify_with(options.clone());
    let b = rectify_with(options);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.patch.rewires(), b.patch.rewires());
}

#[test]
fn patch_stats_display_is_readable() {
    let r = rectify_with(EcoOptions::with_seed(28));
    let text = r.stats.to_string();
    assert!(text.contains("gates="));
    assert!(text.contains("outputs="));
}
