//! Property-based tests at the engine level: random word-level designs and
//! random revisions, end to end through the full flow. Every run must
//! produce a verified patch — the engine's central contract.

use eco_synth::lower::synthesize;
use eco_synth::opt::{optimize, OptOptions};
use eco_synth::rtl::{ReduceOp, RtlModule, WordExpr as E};
use eco_workload::RevisionKind;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use syseco::{verify_rectification, EcoOptions, Syseco};

const WIDTH: u32 = 3;

#[derive(Debug, Clone)]
struct DesignRecipe {
    ops: Vec<u8>,
    revision_kind: u8,
    revision_target: u8,
    seed: u64,
}

fn recipe_strategy() -> impl Strategy<Value = DesignRecipe> {
    (
        proptest::collection::vec(any::<u8>(), 4..10),
        any::<u8>(),
        any::<u8>(),
        any::<u64>(),
    )
        .prop_map(|(ops, revision_kind, revision_target, seed)| DesignRecipe {
            ops,
            revision_kind,
            revision_target,
            seed,
        })
}

fn build_design(recipe: &DesignRecipe) -> (RtlModule, RtlModule) {
    let mut m = RtlModule::new("prop");
    m.add_input("x", WIDTH);
    m.add_input("y", WIDTH);
    m.add_input("en", 1);
    let mut names = vec!["x".to_string(), "y".to_string()];
    for (i, op) in recipe.ops.iter().enumerate() {
        let a = E::signal(names[(*op as usize) % names.len()].clone());
        let b = E::signal(names[(*op as usize / 7) % names.len()].clone());
        let expr = match op % 6 {
            0 => E::and(a, b),
            1 => E::or(a, b),
            2 => E::xor(a, b),
            3 => E::add(a, b),
            4 => E::mux(E::input("en"), a, b),
            _ => E::not(a),
        };
        let n = format!("s{i}");
        m.add_signal(&n, expr);
        names.push(n);
    }
    // Outputs: last two signals.
    let o1 = names[names.len() - 1].clone();
    let o2 = names[names.len() - 2].clone();
    m.add_output("o1", E::signal(o1.clone()));
    if o2 != "x" && o2 != "y" {
        m.add_output("o2", E::signal(o2));
    }

    let mut revised = m.clone();
    let kinds = RevisionKind::ALL;
    let kind = kinds[recipe.revision_kind as usize % kinds.len()];
    let target = o1;
    let mut rng = SmallRng::seed_from_u64(recipe.seed);
    let old = revised.signal_expr(&target).expect("defined").clone();
    let helper = E::input("y");
    let gate_bit = E::reduce(ReduceOp::Or, E::input("en"));
    let (new_expr, _) = kind.apply(old, helper, gate_bit, WIDTH, &mut rng);
    revised.replace_signal(&target, new_expr);
    let _ = recipe.revision_target;
    (m, revised)
}

proptest! {
    // Each case runs synthesis + optimization + full rectification; keep
    // the count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_random_revision_is_rectified_and_verified(recipe in recipe_strategy()) {
        let (original, revised) = build_design(&recipe);
        let mut implementation = synthesize(&original).unwrap();
        optimize(&mut implementation, &OptOptions::heavy(recipe.seed)).unwrap();
        let spec = synthesize(&revised).unwrap();
        let engine = Syseco::new(EcoOptions::with_seed(recipe.seed ^ 0xABCD));
        let result = engine.rectify(&implementation, &spec).unwrap();
        prop_assert!(
            verify_rectification(&result.patched, &spec).unwrap(),
            "patched design must match spec (recipe {recipe:?})"
        );
        prop_assert!(result.patched.check_well_formed().is_ok());
        // Patch accounting sanity: no rewires implies no patch gates.
        if result.patch.rewires().is_empty() {
            prop_assert_eq!(result.stats.gates, 0);
        }
    }

    #[test]
    fn aggressive_optimization_is_also_rectifiable(recipe in recipe_strategy()) {
        let (original, revised) = build_design(&recipe);
        let mut implementation = synthesize(&original).unwrap();
        optimize(&mut implementation, &OptOptions::aggressive(recipe.seed)).unwrap();
        let spec = synthesize(&revised).unwrap();
        let engine = Syseco::new(EcoOptions::with_seed(recipe.seed ^ 0x1234));
        let result = engine.rectify(&implementation, &spec).unwrap();
        prop_assert!(verify_rectification(&result.patched, &spec).unwrap());
    }
}
