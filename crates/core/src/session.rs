//! A configured rectification session: options plus the run-scoped state —
//! cancellation token and progress observer — that a bare
//! [`Syseco`](crate::Syseco) call cannot carry.
//!
//! ```
//! use eco_netlist::{Circuit, GateKind};
//! use syseco::{CancelToken, EcoOptions, Session};
//!
//! # fn main() -> Result<(), syseco::EcoError> {
//! let mut c = Circuit::new("impl");
//! let a = c.add_input("a");
//! let b = c.add_input("b");
//! let g = c.add_gate(GateKind::And, &[a, b])?;
//! c.add_output("y", g);
//! let mut s = Circuit::new("spec");
//! let a = s.add_input("a");
//! let b = s.add_input("b");
//! let g = s.add_gate(GateKind::Or, &[a, b])?;
//! s.add_output("y", g);
//!
//! let token = CancelToken::new();
//! let session = Session::new(EcoOptions::builder().jobs(1).build())
//!     .with_cancel(&token)
//!     .on_progress(|event| eprintln!("{event:?}"));
//! let result = session.run(&c, &s)?;
//! assert!(syseco::verify_rectification(&result.patched, &s)?);
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use eco_netlist::Circuit;
use eco_telemetry::{MetricsSnapshot, Telemetry};

use crate::budget::{Budget, CancelToken};
use crate::engine::{EcoResult, Syseco};
use crate::options::EcoOptions;
use crate::progress::{ProgressCallback, ProgressEvent};
use crate::schedule::WorkerPool;
use crate::EcoError;

/// A rectification session handle.
///
/// Construct with [`Session::new`] or [`Syseco::session`], attach a
/// [`CancelToken`] and/or a progress observer, then [`run`](Session::run)
/// one pair or [`run_all`](Session::run_all) a batch. The session is
/// reusable: every run derives a fresh [`Budget`] from the options'
/// timeout, sharing the attached token.
#[derive(Clone)]
pub struct Session {
    engine: Syseco,
    cancel: Option<CancelToken>,
    observer: Option<ProgressCallback>,
    telemetry: Telemetry,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("options", self.engine.options())
            .field("cancel", &self.cancel)
            .field("observer", &self.observer.as_ref().map(|_| "<callback>"))
            .field("telemetry", &self.telemetry.is_enabled())
            .finish()
    }
}

impl Session {
    /// A session over `options`, with no cancellation or observer attached.
    pub fn new(options: EcoOptions) -> Self {
        Session {
            engine: Syseco::new(options),
            cancel: None,
            observer: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// The session's options.
    pub fn options(&self) -> &EcoOptions {
        self.engine.options()
    }

    /// Attaches a cancellation token: cancelling it degrades the run (every
    /// unfinished output takes the fallback) instead of aborting it.
    #[must_use]
    pub fn with_cancel(mut self, token: &CancelToken) -> Self {
        self.cancel = Some(token.clone());
        self
    }

    /// Attaches a progress observer invoked with every
    /// [`ProgressEvent`]. Events arrive from worker threads, so the
    /// callback must be `Send + Sync` and should be cheap.
    #[must_use]
    pub fn on_progress<F>(mut self, callback: F) -> Self
    where
        F: Fn(&ProgressEvent) + Send + Sync + 'static,
    {
        self.observer = Some(Arc::new(callback));
        self
    }

    /// Attaches a [`Telemetry`] hub: runs record structured trace spans
    /// (returned in [`EcoResult::trace`]) and feed the sharded metrics
    /// registry readable via [`Session::metrics_snapshot`]. The handle is
    /// shared — clone-cheap — so the caller can keep one for export while
    /// the session records into it. A disabled hub (the default) costs
    /// nothing: no clock reads, no allocation.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: &Telemetry) -> Self {
        self.telemetry = telemetry.clone();
        self
    }

    /// A point-in-time fold of every metrics shard the attached
    /// [`Telemetry`] has handed out. Empty when telemetry is disabled.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.telemetry.snapshot()
    }

    /// A fresh budget for one run: the options' timeout plus the attached
    /// cancellation token.
    fn budget(&self) -> Budget {
        let mut budget = self.engine.default_budget();
        if let Some(token) = &self.cancel {
            budget = budget.with_cancel(token);
        }
        budget
    }

    /// Rectifies one pair under this session's budget and observer.
    ///
    /// # Errors
    ///
    /// Same as [`Syseco::rectify`].
    pub fn run(&self, implementation: &Circuit, spec: &Circuit) -> Result<EcoResult, EcoError> {
        let budget = self.budget();
        self.run_with_budget(implementation, spec, &budget)
    }

    /// Like [`Session::run`] with an externally owned [`Budget`] (the
    /// attached cancellation token is *not* merged into it).
    ///
    /// # Errors
    ///
    /// Same as [`Syseco::rectify`].
    pub fn run_with_budget(
        &self,
        implementation: &Circuit,
        spec: &Circuit,
        budget: &Budget,
    ) -> Result<EcoResult, EcoError> {
        let pool = WorkerPool::new(self.options().effective_jobs());
        self.engine.rectify_with(
            implementation,
            spec,
            budget,
            self.observer.as_ref(),
            &pool,
            &self.telemetry,
        )
    }

    /// Rectifies a batch of pairs with one shared worker pool.
    ///
    /// Jobs run sequentially in input order; parallelism is applied within
    /// each job, across its failing outputs. Every job gets a fresh
    /// timeout-derived budget sharing the attached cancellation token, so
    /// cancelling the token stops the whole batch (each remaining job
    /// degrades promptly to fallbacks).
    ///
    /// # Errors
    ///
    /// Returns the first job's [`EcoError`], abandoning the rest.
    pub fn run_all(&self, jobs: &[(&Circuit, &Circuit)]) -> Result<Vec<EcoResult>, EcoError> {
        let pool = WorkerPool::new(self.options().effective_jobs());
        jobs.iter()
            .map(|(implementation, spec)| {
                let budget = self.budget();
                self.engine.rectify_with(
                    implementation,
                    spec,
                    &budget,
                    self.observer.as_ref(),
                    &pool,
                    &self.telemetry,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::verify_rectification;
    use eco_netlist::GateKind;
    use std::sync::Mutex;

    fn and_or_pair() -> (Circuit, Circuit) {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sg = s.add_gate(GateKind::Or, &[sa, sb]).unwrap();
        s.add_output("y", sg);
        (c, s)
    }

    #[test]
    fn session_runs_and_reports_progress() {
        let (c, s) = and_or_pair();
        let events: Arc<Mutex<usize>> = Arc::default();
        let sink = Arc::clone(&events);
        let session =
            Session::new(EcoOptions::with_seed(3)).on_progress(move |_| *sink.lock().unwrap() += 1);
        let result = session.run(&c, &s).unwrap();
        assert!(verify_rectification(&result.patched, &s).unwrap());
        assert!(*events.lock().unwrap() >= 2, "RunStarted + RunFinished");
        // Reusable: a second run works and reports again.
        let before = *events.lock().unwrap();
        session.run(&c, &s).unwrap();
        assert!(*events.lock().unwrap() > before);
    }

    #[test]
    fn cancelled_session_degrades_gracefully() {
        let (c, s) = and_or_pair();
        let token = CancelToken::new();
        token.cancel();
        let session = Session::new(EcoOptions::with_seed(3)).with_cancel(&token);
        let result = session.run(&c, &s).unwrap();
        assert!(!result.rectify.degradations.is_empty());
        assert!(verify_rectification(&result.patched, &s).unwrap());
    }

    #[test]
    fn session_telemetry_records_spans_and_metrics() {
        let (c, s) = and_or_pair();
        let telemetry = Telemetry::enabled();
        let session = Session::new(EcoOptions::with_seed(3)).with_telemetry(&telemetry);
        let result = session.run(&c, &s).unwrap();
        assert!(verify_rectification(&result.patched, &s).unwrap());
        assert!(result.trace.iter().any(|sp| sp.name == "run"));
        assert!(result.trace.iter().any(|sp| sp.name == "search"));
        let snap = session.metrics_snapshot();
        assert!(!snap.is_empty());
        assert_eq!(
            snap.counter(eco_telemetry::Counter::RectifyValidations),
            result.rectify.validations as u64
        );
        // Without telemetry the same run records nothing and costs nothing.
        let bare = Session::new(EcoOptions::with_seed(3)).run(&c, &s).unwrap();
        assert!(bare.trace.is_empty());
        assert!(Session::new(EcoOptions::with_seed(3))
            .metrics_snapshot()
            .is_empty());
    }

    #[test]
    fn run_all_lines_up_with_inputs() {
        let (c, s) = and_or_pair();
        let session = Session::new(EcoOptions::with_seed(3));
        let results = session.run_all(&[(&c, &s), (&s, &s)]).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].rectify.outputs_failing, 1);
        assert_eq!(results[1].rectify.outputs_failing, 0);
    }
}
