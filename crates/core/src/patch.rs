//! The ECO patch: rewire operations, cloned logic, and Table-2 accounting.

use std::collections::{HashMap, HashSet};

use eco_netlist::{topo, Circuit, GateKind, NetId, NetlistError, Pin};
use eco_sat::{tseitin, SolveResult, Solver};
use eco_timing::{DelayModel, TimingReport};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One rewire `p/s` of paper §3.3: pin `pin` was disconnected from
/// `old_net` and connected to `new_net`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RewireOp {
    /// The rectified pin.
    pub pin: Pin,
    /// The pin's previous driver.
    pub old_net: NetId,
    /// The pin's new driver (in the patched implementation).
    pub new_net: NetId,
    /// Whether `new_net` is logic cloned from the specification (`C'`)
    /// rather than a pre-existing net of the implementation.
    pub from_spec: bool,
}

/// A complete patch applied to an implementation.
///
/// Tracks the rewire operations and the set of nodes cloned from the
/// specification, and computes the patch attributes reported in the paper's
/// Table 2 via [`Patch::stats`].
#[derive(Debug, Clone, Default)]
pub struct Patch {
    rewires: Vec<RewireOp>,
    cloned: HashSet<NetId>,
    /// Node count of the implementation before any patching; nodes at or
    /// beyond this index were added by the patch.
    baseline_nodes: usize,
}

/// Size attributes of a patch, in the units of the paper's Table 2.
///
/// ```
/// # let stats = syseco::PatchStats::default();
/// println!("{stats}"); // "inputs=0 outputs=0 gates=0 nets=0"
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PatchStats {
    /// Distinct existing-implementation nets consumed by the patch.
    pub inputs: usize,
    /// Distinct nets the patch drives (rewired pins, merged per net).
    pub outputs: usize,
    /// Cloned gates surviving in the patched implementation.
    pub gates: usize,
    /// Nets of the patch: its gates plus its boundary nets.
    pub nets: usize,
}

impl std::fmt::Display for PatchStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "inputs={} outputs={} gates={} nets={}",
            self.inputs, self.outputs, self.gates, self.nets
        )
    }
}

impl Patch {
    /// Starts an empty patch against an implementation that currently has
    /// `baseline_nodes` nodes.
    pub fn new(baseline_nodes: usize) -> Self {
        Patch {
            rewires: Vec::new(),
            cloned: HashSet::new(),
            baseline_nodes,
        }
    }

    /// The recorded rewire operations.
    pub fn rewires(&self) -> &[RewireOp] {
        &self.rewires
    }

    /// Records a rewire operation.
    pub fn record_rewire(&mut self, op: RewireOp) {
        self.rewires.push(op);
    }

    /// Records nets cloned from the specification.
    pub fn record_cloned(&mut self, nets: impl IntoIterator<Item = NetId>) {
        self.cloned.extend(nets);
    }

    /// Whether `net` was added by this patch (cloned or, by index, created
    /// after patching began).
    pub fn is_patch_net(&self, net: NetId) -> bool {
        self.cloned.contains(&net) || net.index() >= self.baseline_nodes
    }

    /// Number of nodes the implementation had before patching.
    pub fn baseline_nodes(&self) -> usize {
        self.baseline_nodes
    }

    /// Computes Table-2 attributes against the patched circuit.
    ///
    /// Only live patch logic counts: cloned nodes swept away (e.g. after the
    /// input-refinement pass) do not inflate the numbers.
    pub fn stats(&self, patched: &Circuit) -> PatchStats {
        let mut patch_gates: HashSet<NetId> = HashSet::new();
        for id in patched.iter_live() {
            let net: NetId = id.into();
            if !self.is_patch_net(net) {
                continue;
            }
            let kind = patched.node(id).kind();
            if kind != GateKind::Input && !kind.is_const() {
                patch_gates.insert(net);
            }
        }
        // Patch inputs: existing nets feeding patch gates, plus existing
        // nets used directly as rewiring targets when they are not
        // themselves part of the original driver cone (a pure reconnection
        // consumes that net as a patch input).
        let mut inputs: HashSet<NetId> = HashSet::new();
        for &g in &patch_gates {
            for &f in patched.node(g.source()).fanins() {
                if !self.is_patch_net(f) {
                    inputs.insert(f);
                }
            }
        }
        let mut outputs: HashSet<NetId> = HashSet::new();
        for op in &self.rewires {
            outputs.insert(op.new_net);
            if !self.is_patch_net(op.new_net) {
                inputs.insert(op.new_net);
            }
        }
        let gates = patch_gates.len();
        let nets = gates + inputs.len();
        PatchStats {
            inputs: inputs.len(),
            outputs: outputs.len(),
            gates,
            nets,
        }
    }
}

/// Renders a human-readable patch report: the rewire operations, the
/// surviving cloned gates, and the Table-2 attribute summary.
///
/// ```
/// # use syseco::{Patch, patch::render_report};
/// # let c = eco_netlist::Circuit::new("d");
/// # let patch = Patch::new(0);
/// let report = render_report(&patch, &c);
/// assert!(report.contains("patch summary"));
/// ```
pub fn render_report(patch: &Patch, patched: &Circuit) -> String {
    use std::fmt::Write;
    let stats = patch.stats(patched);
    let mut out = format!(
        "patch summary: {stats}
"
    );
    if patch.rewires().is_empty() {
        out.push_str(
            "  (no rewires — design was already equivalent)
",
        );
        return out;
    }
    out.push_str(
        "rewire operations (p/s of paper §3.3):
",
    );
    for op in patch.rewires() {
        let _ = writeln!(
            out,
            "  {} : {} -> {}{}",
            op.pin,
            op.old_net,
            op.new_net,
            if op.from_spec {
                "  [cloned from C']"
            } else {
                "  [existing net]"
            }
        );
    }
    let mut clones: Vec<NetId> = patched
        .iter_live()
        .map(NetId::from)
        .filter(|&w| {
            patch.is_patch_net(w) && {
                let k = patched.node(w.source()).kind();
                k != GateKind::Input && !k.is_const()
            }
        })
        .collect();
    clones.sort();
    if clones.is_empty() {
        out.push_str(
            "cloned logic: none (pure rewiring)
",
        );
    } else {
        let _ = writeln!(out, "cloned logic ({} gates):", clones.len());
        for w in clones {
            let node = patched.node(w.source());
            let fanins: Vec<String> = node.fanins().iter().map(|f| f.to_string()).collect();
            let _ = writeln!(out, "  {} = {}({})", w, node.kind(), fanins.join(", "));
        }
    }
    out
}

/// Post-processing sweep of paper §5.2: re-expresses cloned patch logic in
/// terms of functionally equivalent nets that already exist in the
/// implementation, then removes the dead clones.
///
/// Candidate matches come from three 64-pattern simulation signatures and
/// are confirmed by two budgeted SAT queries. Returns the number of cloned
/// nodes eliminated.
///
/// # Errors
///
/// Propagates [`NetlistError`] from analysis passes.
pub fn refine_patch_inputs(
    circuit: &mut Circuit,
    patch: &Patch,
    budget: u64,
    seed: u64,
) -> Result<usize, NetlistError> {
    refine_patch_inputs_timed(circuit, patch, budget, seed, None)
}

/// [`refine_patch_inputs`] with optional timing awareness: when a delay
/// model is given, a merge is skipped if the replacement net arrives later
/// than the cloned logic it replaces — the level-driven mode of §6 extends
/// into post-processing so size refinement never degrades the critical
/// path.
///
/// # Errors
///
/// Propagates [`NetlistError`] from analysis passes.
pub fn refine_patch_inputs_timed(
    circuit: &mut Circuit,
    patch: &Patch,
    budget: u64,
    seed: u64,
    timing: Option<&DelayModel>,
) -> Result<usize, NetlistError> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let order = topo::topo_order(circuit)?;
    let arrivals = match timing {
        Some(model) => {
            // Clock the analysis at the current critical delay: merges may
            // then proceed wherever positive slack absorbs the detour.
            let period = TimingReport::analyze(circuit, model, 0.0)?.critical_delay();
            Some(TimingReport::analyze(circuit, model, period)?)
        }
        None => None,
    };

    let mut signatures: HashMap<NetId, [u64; 3]> = HashMap::new();
    for block in 0..3usize {
        let patterns: Vec<u64> = (0..circuit.num_inputs()).map(|_| rng.gen()).collect();
        let words = eco_netlist::sim::simulate64(circuit, &patterns)?;
        for &id in &order {
            let net: NetId = id.into();
            signatures.entry(net).or_insert([0; 3])[block] = words[net.index()];
        }
    }
    // Index candidate representatives by signature, in topological order:
    // any net may serve, so duplicated clones also merge with each other
    // (the earliest copy becomes the representative).
    let mut existing: HashMap<[u64; 3], Vec<NetId>> = HashMap::new();
    for &id in &order {
        let net: NetId = id.into();
        existing.entry(signatures[&net]).or_default().push(net);
    }

    let mut solver = Solver::new();
    let map = tseitin::encode_circuit(&mut solver, circuit, None)?;
    solver.set_conflict_budget(Some(budget));

    let mut removed = 0;
    for &id in &order {
        let net: NetId = id.into();
        if !patch.is_patch_net(net) {
            continue;
        }
        let kind = circuit.node(id).kind();
        if kind == GateKind::Input || kind.is_const() {
            continue;
        }
        let Some(candidates) = existing.get(&signatures[&net]) else {
            continue;
        };
        // Nets swept between encoding and refinement have no literal; they
        // cannot be merged, only skipped.
        let Some(lit) = map.lit(net) else {
            continue;
        };
        for &cand in candidates {
            if cand == net {
                break; // only earlier-in-topo representatives qualify
            }
            if let Some(report) = &arrivals {
                // Level-driven refinement: a merge is timing-safe when the
                // replacement still meets the net's required time.
                if report.arrival(cand) > report.required(net) {
                    continue;
                }
            }
            let Some(cl) = map.lit(cand) else {
                continue;
            };
            if solver.solve(&[lit, !cl]) != SolveResult::Unsat {
                continue;
            }
            if solver.solve(&[!lit, cl]) != SolveResult::Unsat {
                continue;
            }
            // Equivalent existing net found: take over all sinks.
            let fanouts = circuit.fanouts();
            let mut ok = true;
            for pin in &fanouts[net.index()] {
                if circuit.rewire(*pin, cand).is_err() {
                    ok = false;
                }
            }
            if ok {
                removed += 1;
            }
            break;
        }
    }
    circuit.sweep();
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::{Circuit, GateKind};

    fn base() -> (Circuit, NetId, NetId, NetId) {
        let mut c = Circuit::new("b");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        (c, a, b, g)
    }

    #[test]
    fn pure_rewire_patch_counts_no_gates() {
        let (mut c, a, _b, g) = base();
        let baseline = c.num_nodes();
        let mut patch = Patch::new(baseline);
        // Rewire the AND's first pin to input a's complement? use existing b.
        let pin = Pin::gate(g.source(), 0);
        let old = c.pin_net(pin).unwrap();
        c.rewire(pin, a).unwrap();
        patch.record_rewire(RewireOp {
            pin,
            old_net: old,
            new_net: a,
            from_spec: false,
        });
        let stats = patch.stats(&c);
        assert_eq!(stats.gates, 0);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.inputs, 1); // existing net `a` consumed by the patch
    }

    #[test]
    fn cloned_logic_counts_gates_and_inputs() {
        let (mut c, a, b, g) = base();
        let baseline = c.num_nodes();
        let mut patch = Patch::new(baseline);
        // "Clone" a new gate (simulating spec logic) and rewire the output.
        let nb = c.add_gate(GateKind::Not, &[b]).unwrap();
        let ng = c.add_gate(GateKind::And, &[a, nb]).unwrap();
        patch.record_cloned([nb, ng]);
        let pin = Pin::output(0);
        c.rewire(pin, ng).unwrap();
        patch.record_rewire(RewireOp {
            pin,
            old_net: g,
            new_net: ng,
            from_spec: true,
        });
        c.sweep();
        let stats = patch.stats(&c);
        assert_eq!(stats.gates, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.inputs, 2); // a and b feed the patch
        assert_eq!(stats.nets, 4);
    }

    #[test]
    fn swept_clones_do_not_count() {
        let (mut c, a, b, _g) = base();
        let baseline = c.num_nodes();
        let mut patch = Patch::new(baseline);
        let dead = c.add_gate(GateKind::Or, &[a, b]).unwrap();
        patch.record_cloned([dead]);
        c.sweep(); // dead clone removed
        let stats = patch.stats(&c);
        assert_eq!(stats.gates, 0);
    }

    #[test]
    fn refine_replaces_redundant_clone() {
        // The patch clones logic identical to an existing net; refinement
        // should reuse the existing net and drop the clone.
        let (mut c, a, b, g) = base();
        let baseline = c.num_nodes();
        let mut patch = Patch::new(baseline);
        // Clone: another AND(a, b) — functionally identical to g.
        let clone = c.add_gate(GateKind::And, &[a, b]).unwrap();
        // Wire an extra output through patch logic: y2 = NOT(clone).
        let inv = c.add_gate(GateKind::Not, &[clone]).unwrap();
        patch.record_cloned([clone, inv]);
        let idx = c.add_output("y2", inv);
        patch.record_rewire(RewireOp {
            pin: Pin::output(idx),
            old_net: g,
            new_net: inv,
            from_spec: true,
        });
        let before = patch.stats(&c);
        assert_eq!(before.gates, 2);
        let removed = refine_patch_inputs(&mut c, &patch, 10_000, 1).unwrap();
        assert!(removed >= 1, "the duplicate AND should be eliminated");
        let after = patch.stats(&c);
        assert!(after.gates < before.gates);
        // Function preserved.
        for j in 0..4u8 {
            let assign = [(j & 1) == 1, (j & 2) == 2];
            let out = c.eval(&assign).unwrap();
            assert_eq!(out[1], !(assign[0] && assign[1]));
        }
    }

    #[test]
    fn report_lists_rewires_and_clones() {
        let (mut c, a, b, g) = base();
        let baseline = c.num_nodes();
        let mut patch = Patch::new(baseline);
        let nb = c.add_gate(GateKind::Not, &[b]).unwrap();
        let ng = c.add_gate(GateKind::And, &[a, nb]).unwrap();
        patch.record_cloned([nb, ng]);
        c.rewire(Pin::output(0), ng).unwrap();
        patch.record_rewire(RewireOp {
            pin: Pin::output(0),
            old_net: g,
            new_net: ng,
            from_spec: true,
        });
        c.sweep();
        let report = render_report(&patch, &c);
        assert!(report.contains("patch summary"));
        assert!(report.contains("[cloned from C']"));
        assert!(report.contains("cloned logic (2 gates)"));
        assert!(report.contains("not("));
    }

    #[test]
    fn report_handles_empty_patch() {
        let (c, _, _, _) = base();
        let report = render_report(&Patch::new(c.num_nodes()), &c);
        assert!(report.contains("no rewires"));
    }

    #[test]
    fn is_patch_net_tracks_baseline_index() {
        let (mut c, a, b, _g) = base();
        let patch = Patch::new(c.num_nodes());
        let newer = c.add_gate(GateKind::Or, &[a, b]).unwrap();
        assert!(patch.is_patch_net(newer));
        assert!(!patch.is_patch_net(a));
    }
}
