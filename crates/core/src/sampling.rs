//! The symbolic sampling domain (paper §5.1).
//!
//! A sampling domain is a set of `N` input assignments `{x̂_1, …, x̂_N}`. A
//! block of `⌈log2 N⌉` fresh variables `z` encodes them; the *sampling
//! function* `g = (g_1, …, g_n)` maps codes to assignments and is exactly
//! the matrix product of §5.1: `g_i(z) = ⋁_{k : x̂_k[i] = 1} z^k`. Circuit
//! inputs are overloaded with `g(z)`, casting every Boolean computation of
//! §4 from the exact domain of `x` into the (much smaller) domain of `z`.

use eco_bdd::{Bdd, BddError, BddManager};
use eco_netlist::{topo, Circuit, GateKind, NetId, Pin};
use std::collections::HashMap;

use crate::EcoError;

/// A sampling domain: the sample matrix plus its `z`-variable block.
#[derive(Debug, Clone)]
pub struct SamplingDomain {
    samples: Vec<Vec<bool>>,
    z_base: u32,
}

impl SamplingDomain {
    /// Creates a domain over `samples` (implementation input order), with
    /// `z` variables allocated starting at BDD variable index `z_base`.
    ///
    /// # Errors
    ///
    /// [`EcoError::EmptySamplingDomain`] when `samples` is empty — an empty
    /// domain quantifies over nothing and would make every rectification
    /// vacuously feasible. (Earlier versions panicked here instead; by
    /// construction a domain is never empty, so `len() > 0` always holds.)
    pub fn new(samples: Vec<Vec<bool>>, z_base: u32) -> Result<Self, EcoError> {
        if samples.is_empty() {
            return Err(EcoError::EmptySamplingDomain);
        }
        Ok(SamplingDomain { samples, z_base })
    }

    /// The sampled assignments.
    pub fn samples(&self) -> &[Vec<bool>] {
        &self.samples
    }

    /// Number of samples `N` (always at least 1).
    #[allow(clippy::len_without_is_empty)] // empty domains are unconstructible
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Number of `z` variables: `⌈log2 N⌉`, at least 1.
    pub fn num_z_vars(&self) -> u32 {
        let n = self.samples.len().max(2);
        usize::BITS - (n - 1).leading_zeros()
    }

    /// The `z` variable indices of this domain.
    pub fn z_vars(&self) -> Vec<u32> {
        (self.z_base..self.z_base + self.num_z_vars()).collect()
    }

    /// Adds a counterexample sample (domain refinement, §5.2 step 5).
    pub fn add_sample(&mut self, sample: Vec<bool>) {
        self.samples.push(sample);
    }

    /// The sample selected by code `k`; out-of-range codes alias sample
    /// `k mod N`, keeping the padded code space consistent.
    pub fn sample_for_code(&self, k: usize) -> &[bool] {
        &self.samples[k % self.samples.len()]
    }

    /// The total `z` assignment selecting code `k`: a vector indexed by
    /// BDD variable (false below `z_base`), suitable for
    /// [`BddManager::eval`] of any function over this domain's `z` block.
    pub fn code_assignment(&self, k: usize) -> Vec<bool> {
        let bits = self.num_z_vars();
        let mut assign = vec![false; (self.z_base + bits) as usize];
        for b in 0..bits {
            assign[(self.z_base + b) as usize] = (k >> (bits - 1 - b)) & 1 == 1;
        }
        assign
    }

    /// Builds the minterm `z^k` ("big-endian" bit order as in §4.1).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn minterm(&self, m: &mut BddManager, k: usize) -> Result<Bdd, BddError> {
        let bits = self.num_z_vars();
        let mut cube = m.one();
        for b in 0..bits {
            // Bit 0 of the code maps to the last variable of the block.
            let var = self.z_base + b;
            let bit = (k >> (bits - 1 - b)) & 1 == 1;
            let lit = if bit { m.var(var) } else { m.nvar(var) };
            cube = m.and(cube, lit)?;
        }
        Ok(cube)
    }

    /// Builds the sampling functions `g_1(z), …, g_n(z)` for a circuit with
    /// `num_inputs` primary inputs — the matrix product of §5.1. The padded
    /// code space (codes ≥ N) aliases existing samples so quantification
    /// over `z` ranges exactly over the domain.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn input_functions(
        &self,
        m: &mut BddManager,
        num_inputs: usize,
    ) -> Result<Vec<Bdd>, BddError> {
        let codes = 1usize << self.num_z_vars();
        let mut g = vec![m.zero(); num_inputs];
        for k in 0..codes {
            let sample = self.sample_for_code(k);
            let cube = self.minterm(m, k)?;
            for (i, gi) in g.iter_mut().enumerate() {
                if sample.get(i).copied().unwrap_or(false) {
                    *gi = m.or(*gi, cube)?;
                }
            }
        }
        Ok(g)
    }
}

/// Evaluates every live net of `circuit` as a BDD, with primary input `i`
/// overloaded by `input_fns[i]` (typically the sampling functions `g(z)`).
///
/// Returns one BDD per net, indexed by net.
///
/// # Errors
///
/// [`BddError::NodeLimit`] when the manager budget is exhausted.
///
/// # Panics
///
/// Panics on cyclic circuits (well-formedness is established by the engine
/// before any domain computation).
pub fn eval_all_bdd(
    circuit: &Circuit,
    m: &mut BddManager,
    input_fns: &[Bdd],
) -> Result<Vec<Bdd>, BddError> {
    let order = topo::topo_order(circuit).expect("engine guarantees acyclic circuits");
    let mut values = vec![m.zero(); circuit.num_nodes()];
    for id in order {
        let node = circuit.node(id);
        values[id.index()] = match node.kind() {
            GateKind::Input => {
                let pos = circuit
                    .input_position(id)
                    .expect("input node is registered");
                input_fns[pos]
            }
            kind => {
                let fanins: Vec<Bdd> = node.fanins().iter().map(|f| values[f.index()]).collect();
                apply_gate_bdd(m, kind, &fanins)?
            }
        };
    }
    Ok(values)
}

/// Evaluates the cone of `root` as a BDD with per-pin substitution.
///
/// `pin_subst` maps pins (gate fanin positions within the cone, or the
/// root's producing position via the caller) to *candidate indices*; for a
/// substituted pin, `subst(m, index, original_value)` provides the value
/// seen by the consuming gate. This is the workhorse behind both the
/// MUX-parameterized `h(z, y, t)` of §4.2 and the free-input `h(z, y)` of
/// §4.4.
///
/// # Errors
///
/// [`BddError::NodeLimit`] when the manager budget is exhausted.
///
/// # Panics
///
/// Panics on cyclic circuits.
pub fn eval_cone_bdd(
    circuit: &Circuit,
    m: &mut BddManager,
    input_fns: &[Bdd],
    root: NetId,
    pin_subst: &HashMap<Pin, usize>,
    subst: &mut dyn FnMut(&mut BddManager, usize, Bdd) -> Result<Bdd, BddError>,
) -> Result<Bdd, BddError> {
    let order = topo::topo_order(circuit).expect("engine guarantees acyclic circuits");
    let in_cone = topo::tfi(circuit, &[root.source()]);
    let mut values: Vec<Option<Bdd>> = vec![None; circuit.num_nodes()];
    for id in order {
        if !in_cone[id.index()] {
            continue;
        }
        let node = circuit.node(id);
        let v = match node.kind() {
            GateKind::Input => {
                let pos = circuit
                    .input_position(id)
                    .expect("input node is registered");
                input_fns[pos]
            }
            kind => {
                let mut fanins: Vec<Bdd> = Vec::with_capacity(node.fanins().len());
                for (pos, f) in node.fanins().iter().enumerate() {
                    let orig = values[f.index()].expect("topological order");
                    let pin = Pin::gate(id, pos as u8);
                    let v = match pin_subst.get(&pin) {
                        Some(&idx) => subst(m, idx, orig)?,
                        None => orig,
                    };
                    fanins.push(v);
                }
                apply_gate_bdd(m, kind, &fanins)?
            }
        };
        values[id.index()] = Some(v);
    }
    Ok(values[root.index()].expect("root is in its own cone"))
}

/// Applies one gate's Boolean operation over BDD operands.
///
/// # Errors
///
/// [`BddError::NodeLimit`] when the manager budget is exhausted.
pub fn apply_gate_bdd(m: &mut BddManager, kind: GateKind, fanins: &[Bdd]) -> Result<Bdd, BddError> {
    Ok(match kind {
        GateKind::Input => unreachable!("inputs handled by the evaluator"),
        GateKind::Const0 => m.zero(),
        GateKind::Const1 => m.one(),
        GateKind::Buf => fanins[0],
        GateKind::Not => m.not(fanins[0])?,
        GateKind::And | GateKind::Nand => {
            let mut acc = m.one();
            for &f in fanins {
                acc = m.and(acc, f)?;
            }
            if kind == GateKind::Nand {
                m.not(acc)?
            } else {
                acc
            }
        }
        GateKind::Or | GateKind::Nor => {
            let mut acc = m.zero();
            for &f in fanins {
                acc = m.or(acc, f)?;
            }
            if kind == GateKind::Nor {
                m.not(acc)?
            } else {
                acc
            }
        }
        GateKind::Xor | GateKind::Xnor => {
            let mut acc = m.zero();
            for &f in fanins {
                acc = m.xor(acc, f)?;
            }
            if kind == GateKind::Xnor {
                m.not(acc)?
            } else {
                acc
            }
        }
        GateKind::Mux => m.ite(fanins[0], fanins[2], fanins[1])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::{Circuit, GateKind};

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Mux, &[d, g1, a]).unwrap();
        c.add_output("y", g2);
        c
    }

    /// Decodes: evaluating the net BDD at code k must equal simulating the
    /// circuit on sample k.
    #[test]
    fn overloaded_evaluation_matches_simulation() {
        let c = sample_circuit();
        let samples = vec![
            vec![false, true, false],
            vec![true, true, true],
            vec![true, false, false],
        ];
        let dom = SamplingDomain::new(samples.clone(), 0).unwrap();
        let mut m = BddManager::new();
        let g = dom.input_functions(&mut m, 3).unwrap();
        let vals = eval_all_bdd(&c, &mut m, &g).unwrap();
        let bits = dom.num_z_vars();
        for (k, s) in samples.iter().enumerate() {
            // Assignment to z encoding code k (big-endian block).
            let mut assign = vec![false; (dom.z_vars().last().unwrap() + 1) as usize];
            for b in 0..bits {
                assign[b as usize] = (k >> (bits - 1 - b)) & 1 == 1;
            }
            let expect = c.eval_nets(s).unwrap();
            for id in c.iter_live() {
                let net: NetId = id.into();
                if c.node(id).kind() == GateKind::Input {
                    continue;
                }
                assert_eq!(
                    m.eval(vals[net.index()], &assign),
                    expect[net.index()],
                    "net {net} at code {k}"
                );
            }
        }
    }

    #[test]
    fn padding_aliases_samples() {
        // Three samples in a 4-code space: code 3 aliases sample 0.
        let samples = vec![vec![true], vec![false], vec![true]];
        let dom = SamplingDomain::new(samples, 0).unwrap();
        assert_eq!(dom.num_z_vars(), 2);
        assert_eq!(dom.sample_for_code(3), &[true][..]);
        let mut m = BddManager::new();
        let g = dom.input_functions(&mut m, 1).unwrap();
        // g_0 true at codes 0, 2, 3 (samples true, -, true, alias of 0).
        assert!(m.eval(g[0], &[false, false]));
        assert!(!m.eval(g[0], &[false, true]));
        assert!(m.eval(g[0], &[true, false]));
        assert!(m.eval(g[0], &[true, true]));
    }

    #[test]
    fn add_sample_grows_z_block() {
        let mut dom = SamplingDomain::new(vec![vec![true], vec![false]], 5).unwrap();
        assert_eq!(dom.num_z_vars(), 1);
        dom.add_sample(vec![true]);
        assert_eq!(dom.num_z_vars(), 2);
        assert_eq!(dom.z_vars(), vec![5, 6]);
    }

    #[test]
    fn cone_substitution_replaces_pin_value() {
        // y = AND(a, b); substitute pin (AND, 1) with constant true:
        // cone evaluates to a.
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        let dom = SamplingDomain::new(vec![vec![false, false], vec![true, false]], 0).unwrap();
        let mut m = BddManager::new();
        let gfun = dom.input_functions(&mut m, 2).unwrap();
        let mut subst_map = HashMap::new();
        subst_map.insert(Pin::gate(g.source(), 1), 0usize);
        let one = m.one();
        let h = eval_cone_bdd(&c, &mut m, &gfun, g, &subst_map, &mut |_, _, _| Ok(one)).unwrap();
        // h(z) = g_a(z): false at code 0, true at code 1.
        assert!(!m.eval(h, &[false]));
        assert!(m.eval(h, &[true]));
    }

    #[test]
    fn empty_domain_rejected() {
        assert!(matches!(
            SamplingDomain::new(vec![], 0),
            Err(crate::EcoError::EmptySamplingDomain)
        ));
    }
}
