//! A DeltaSyn-style structural-difference baseline.
//!
//! Following the approach of \[8\] (Krishnaswamy et al., *DeltaSyn: an
//! efficient logic difference optimizer for ECO synthesis*, ICCAD 2009),
//! signals of the implementation and the revised specification are matched
//! **structurally**, forward from the primary inputs: a specification gate
//! corresponds to an implementation gate when their kinds agree and all
//! their fanins are already matched. Each failing output is then patched
//! with the *unmatched region* of its specification cone, stitched at the
//! matched boundary signals.
//!
//! This inherits DeltaSyn's documented weakness (paper §2): when the
//! implementation has been restructured by optimization, little matches
//! beyond the inputs and the patch degenerates toward a full cone copy —
//! exactly the regime where syseco's functional search wins.

use std::collections::HashMap;
use std::time::Instant;

use eco_netlist::{topo, Circuit, GateKind, NetId, Pin};

use crate::correspond::Correspondence;
use crate::engine::{name_spec_inputs, normalize_ports, EcoResult};
use crate::error_domain::{classify_outputs, Equivalence};
use crate::patch::{Patch, RewireOp};
use crate::rectify::RectifyStats;
use crate::EcoError;

/// Computes the forward structural matching from specification nets to
/// implementation nets.
///
/// Inputs match by label, constants by value, and gates by
/// `(kind, matched fanins)` with commutative fanin lists sorted. Returns a
/// map from spec nets to impl nets.
pub fn structural_match(implementation: &Circuit, spec: &Circuit) -> HashMap<NetId, NetId> {
    // Index implementation gates by structural key.
    let mut index: HashMap<(GateKind, Vec<NetId>), NetId> = HashMap::new();
    for id in implementation.iter_live() {
        let node = implementation.node(id);
        let kind = node.kind();
        if kind == GateKind::Input || kind.is_const() {
            continue;
        }
        let mut fanins = node.fanins().to_vec();
        if kind.is_commutative() {
            fanins.sort();
        }
        index.entry((kind, fanins)).or_insert_with(|| id.into());
    }

    let mut matched: HashMap<NetId, NetId> = HashMap::new();
    let order = topo::topo_order(spec).expect("well-formed spec");
    for id in order {
        let node = spec.node(id);
        let snet: NetId = id.into();
        match node.kind() {
            GateKind::Input => {
                let label = node.name().unwrap_or("");
                if let Some(inet) = implementation.input_by_name(label) {
                    matched.insert(snet, inet);
                }
            }
            GateKind::Const0 | GateKind::Const1 => {
                // Constants match a like-valued constant if one exists.
                for iid in implementation.iter_live() {
                    if implementation.node(iid).kind() == node.kind() {
                        matched.insert(snet, iid.into());
                        break;
                    }
                }
            }
            kind => {
                let mapped: Option<Vec<NetId>> = node
                    .fanins()
                    .iter()
                    .map(|f| matched.get(f).copied())
                    .collect();
                if let Some(mut fanins) = mapped {
                    if kind.is_commutative() {
                        fanins.sort();
                    }
                    if let Some(&inet) = index.get(&(kind, fanins)) {
                        matched.insert(snet, inet);
                    }
                }
            }
        }
    }
    matched
}

/// Rectifies `implementation` against `spec` with the DeltaSyn-style flow.
///
/// # Errors
///
/// Same conditions as [`Syseco::rectify`](crate::Syseco::rectify).
pub fn rectify(implementation: &Circuit, spec: &Circuit) -> Result<EcoResult, EcoError> {
    let start = Instant::now();
    implementation.check_well_formed()?;
    spec.check_well_formed()?;
    let named = name_spec_inputs(spec)?;
    let spec = named.as_ref().unwrap_or(spec);
    let mut patched = implementation.clone();
    normalize_ports(&mut patched, spec)?;
    let corr = Correspondence::build(&patched, spec)?;
    let mut patch = Patch::new(patched.num_nodes());
    let mut stats = RectifyStats {
        outputs_total: corr.outputs.len(),
        ..Default::default()
    };

    let mut matched = structural_match(&patched, spec);

    let verdicts = classify_outputs(&patched, spec, &corr, None, None)?;
    for (pair, verdict) in corr.outputs.clone().iter().zip(verdicts) {
        match verdict {
            Equivalence::Equivalent => continue,
            _ => stats.outputs_failing += 1,
        }
        let spec_root = spec.outputs()[pair.spec_index as usize].net();
        // Patch = unmatched region of the spec cone, stitched at matched
        // boundary signals. Cloned regions join the correspondence so
        // overlapping cones of later outputs reuse them.
        let before = patched.num_nodes();
        let map = patched
            .clone_cone(spec, &[spec_root], &matched)
            .map_err(EcoError::from)?;
        matched = map.clone();
        patch.record_cloned((before..patched.num_nodes()).map(NetId::from_index));
        let pin = Pin::output(pair.impl_index);
        let old_net = patched.pin_net(pin).map_err(EcoError::from)?;
        let new_net = matched[&spec_root];
        patched.rewire(pin, new_net).map_err(EcoError::from)?;
        patch.record_rewire(RewireOp {
            pin,
            old_net,
            new_net,
            from_spec: true,
        });
        stats.fallbacks += 1;
    }
    patched.sweep();
    let pstats = patch.stats(&patched);
    Ok(EcoResult {
        stats: pstats,
        rectify: stats,
        runtime: start.elapsed(),
        patched,
        patch,
        trace: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify_rectification;
    use eco_netlist::GateKind;

    fn revision_case() -> (Circuit, Circuit) {
        // impl: y = (a & b) ^ d, z = a & b
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Xor, &[g1, d]).unwrap();
        c.add_output("y", g2);
        c.add_output("z", g1);
        // spec: y = (a & b) ^ NOT d (revision), z unchanged.
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sd = s.add_input("d");
        let h1 = s.add_gate(GateKind::And, &[sa, sb]).unwrap();
        let nd = s.add_gate(GateKind::Not, &[sd]).unwrap();
        let h2 = s.add_gate(GateKind::Xor, &[h1, nd]).unwrap();
        s.add_output("y", h2);
        s.add_output("z", h1);
        (c, s)
    }

    #[test]
    fn structural_match_finds_identical_gates() {
        let (c, s) = revision_case();
        let matched = structural_match(&c, &s);
        // The AND gate is structurally identical in both.
        let spec_and = s.outputs()[1].net();
        let impl_and = c.outputs()[1].net();
        assert_eq!(matched.get(&spec_and), Some(&impl_and));
        // The revised XOR is not matched (its fanin NOT d has no impl twin).
        let spec_xor = s.outputs()[0].net();
        assert_eq!(matched.get(&spec_xor), None);
    }

    #[test]
    fn rectification_is_correct() {
        let (c, s) = revision_case();
        let result = rectify(&c, &s).unwrap();
        assert!(verify_rectification(&result.patched, &s).unwrap());
        // Only the unmatched region is cloned: NOT + XOR = 2 gates.
        assert_eq!(result.stats.gates, 2);
        assert_eq!(result.rectify.outputs_failing, 1);
    }

    #[test]
    fn structural_dissimilarity_inflates_patch() {
        // Restructure the implementation (De Morgan on the AND): matching
        // degrades and the cloned region grows relative to the similar case.
        let (c, s) = revision_case();
        let small = rectify(&c, &s).unwrap().stats;

        let mut rough = Circuit::new("impl");
        let a = rough.add_input("a");
        let b = rough.add_input("b");
        let d = rough.add_input("d");
        let na = rough.add_gate(GateKind::Not, &[a]).unwrap();
        let nb = rough.add_gate(GateKind::Not, &[b]).unwrap();
        let or = rough.add_gate(GateKind::Or, &[na, nb]).unwrap();
        let and = rough.add_gate(GateKind::Not, &[or]).unwrap(); // = a & b
        let x = rough.add_gate(GateKind::Xor, &[and, d]).unwrap();
        rough.add_output("y", x);
        rough.add_output("z", and);
        let big = rectify(&rough, &s).unwrap();
        assert!(verify_rectification(&big.patched, &s).unwrap());
        assert!(
            big.stats.gates > small.gates,
            "dissimilarity should inflate the DeltaSyn patch: {} vs {}",
            big.stats.gates,
            small.gates
        );
    }

    #[test]
    fn equivalent_designs_yield_empty_patch() {
        let (c, _) = revision_case();
        let result = rectify(&c, &c.clone()).unwrap();
        assert_eq!(result.stats, crate::PatchStats::default());
    }
}
