//! The "commercial tool" proxy: whole-cone re-synthesis.
//!
//! For every failing output, the entire fanin cone of the revised
//! specification output is cloned into the implementation, stitched only at
//! the primary inputs, and the output pin is rewired to the clone. This is
//! deliberately structure-oblivious: always correct, fast, and patch-heavy —
//! the qualitative role of the commercial tool's default setting in the
//! paper's Table 2 (columns 3–6).

use std::collections::HashMap;
use std::time::Instant;

use eco_netlist::{NetId, Pin};

use crate::correspond::Correspondence;
use crate::engine::{name_spec_inputs, normalize_ports, EcoResult};
use crate::error_domain::{classify_outputs, Equivalence};
use crate::patch::{Patch, RewireOp};
use crate::rectify::RectifyStats;
use crate::EcoError;
use eco_netlist::Circuit;

/// Rectifies `implementation` against `spec` by full cone replacement.
///
/// # Errors
///
/// Same conditions as [`Syseco::rectify`](crate::Syseco::rectify).
pub fn rectify(implementation: &Circuit, spec: &Circuit) -> Result<EcoResult, EcoError> {
    let start = Instant::now();
    implementation.check_well_formed()?;
    spec.check_well_formed()?;
    let named = name_spec_inputs(spec)?;
    let spec = named.as_ref().unwrap_or(spec);
    let mut patched = implementation.clone();
    normalize_ports(&mut patched, spec)?;
    let corr = Correspondence::build(&patched, spec)?;
    let mut patch = Patch::new(patched.num_nodes());
    let mut stats = RectifyStats {
        outputs_total: corr.outputs.len(),
        ..Default::default()
    };

    // Clones are shared across outputs: one boundary map for the whole run.
    let mut boundary: HashMap<NetId, NetId> = HashMap::new();
    let verdicts = classify_outputs(&patched, spec, &corr, None, None)?;
    for (pair, verdict) in corr.outputs.clone().iter().zip(verdicts) {
        match verdict {
            Equivalence::Equivalent => continue,
            _ => stats.outputs_failing += 1,
        }
        let spec_root = spec.outputs()[pair.spec_index as usize].net();
        let before = patched.num_nodes();
        let map = patched
            .clone_cone(spec, &[spec_root], &boundary)
            .map_err(EcoError::from)?;
        patch.record_cloned((before..patched.num_nodes()).map(NetId::from_index));
        boundary = map;
        let pin = Pin::output(pair.impl_index);
        let old_net = patched.pin_net(pin).map_err(EcoError::from)?;
        let new_net = boundary[&spec_root];
        patched.rewire(pin, new_net).map_err(EcoError::from)?;
        patch.record_rewire(RewireOp {
            pin,
            old_net,
            new_net,
            from_spec: true,
        });
        stats.fallbacks += 1;
    }
    patched.sweep();
    let pstats = patch.stats(&patched);
    Ok(EcoResult {
        stats: pstats,
        rectify: stats,
        runtime: start.elapsed(),
        patched,
        patch,
        trace: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::deltasyn;
    use crate::verify_rectification;
    use eco_netlist::GateKind;

    fn case() -> (Circuit, Circuit) {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Xor, &[g1, d]).unwrap();
        c.add_output("y", g2);
        c.add_output("z", g1);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sd = s.add_input("d");
        let h1 = s.add_gate(GateKind::And, &[sa, sb]).unwrap();
        let nd = s.add_gate(GateKind::Not, &[sd]).unwrap();
        let h2 = s.add_gate(GateKind::Xor, &[h1, nd]).unwrap();
        s.add_output("y", h2);
        s.add_output("z", h1);
        (c, s)
    }

    #[test]
    fn cone_rewrite_is_correct() {
        let (c, s) = case();
        let result = rectify(&c, &s).unwrap();
        assert!(verify_rectification(&result.patched, &s).unwrap());
        // Whole revised cone cloned: AND + NOT + XOR = 3 gates.
        assert_eq!(result.stats.gates, 3);
    }

    #[test]
    fn cone_patch_not_smaller_than_deltasyn() {
        let (c, s) = case();
        let cone = rectify(&c, &s).unwrap().stats;
        let ds = deltasyn::rectify(&c, &s).unwrap().stats;
        assert!(cone.gates >= ds.gates);
    }

    #[test]
    fn equivalent_designs_yield_empty_patch() {
        let (c, _) = case();
        let result = rectify(&c, &c.clone()).unwrap();
        assert_eq!(result.stats, crate::PatchStats::default());
        assert_eq!(result.rectify.outputs_failing, 0);
    }
}
