//! Baseline ECO engines the paper compares against.
//!
//! * [`deltasyn`] — a structural-difference engine in the spirit of
//!   DeltaSyn \[Krishnaswamy et al., ICCAD 2009\] (Table 2, columns 7–11):
//!   it matches implementation and specification structurally from the
//!   inputs and patches each failing output with the unmatched region of
//!   the specification cone.
//! * [`cone`] — the "commercial tool" proxy (Table 2, columns 3–6): a
//!   structure-oblivious engine that re-synthesizes the entire fanin cone
//!   of every failing output from the specification, stitched at primary
//!   inputs.
//!
//! Both reuse the [`Patch`](crate::Patch) accounting so their Table-2
//! attributes are directly comparable with syseco's.

pub mod cone;
pub mod deltasyn;
