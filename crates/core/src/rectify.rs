//! The overall rectification flow `RewireRectification` (paper §5.2).
//!
//! For every non-equivalent output pair, in increasing order of logical
//! complexity:
//!
//! 1. select error samples and build the sampling domain (§5.1),
//! 2. enumerate feasible rectification point-sets via `H(t)` (§4.2),
//! 3. assign candidate rewiring nets per point (§4.3),
//! 4. compute valid rewiring choices via `Ξ(c)` (§4.4),
//! 5. validate choices with resource-constrained SAT; counterexamples
//!    refine the domain, damaged outputs prune the choice, and the choice
//!    correcting the most outputs is favored.
//!
//! The output pin is itself a rectification point, so rewiring the output
//! to a cloned specification cone is an always-applicable fallback — the
//! flow never fails, it only degrades to a bigger patch.
//!
//! # Execution model
//!
//! Per-output searches are independent and run on a worker pool
//! ([`EcoOptions::jobs`]); each search is *pure* — it reads the
//! post-normalization base circuit and returns a rewiring **proposal**
//! without mutating anything. A sequential merge phase then applies the
//! proposals in a deterministic order (increasing cone size), re-validating
//! any proposal applied after the circuit changed; a proposal invalidated by
//! an earlier merge degrades to the output-rewire fallback with
//! [`DegradeReason::MergeConflict`]. Because every search derives its RNG
//! stream from the run seed and the output index, and the merge order is
//! independent of completion order, results are bit-identical for every
//! worker count (see DESIGN.md "Parallel execution model").

use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use eco_bdd::{Bdd, BddCounters, BddError, BddManager};
use eco_netlist::{topo, Circuit, NetId, Pin};
use eco_sat::SolverStats;
use eco_telemetry::{
    ArgValue, Counter, Gauge, Histogram, MetricsShard, SpanRecord, Telemetry, TraceBuffer,
};
use eco_timing::{DelayModel, TimingReport};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::budget::{Budget, Degradation, DegradeAction, DegradeReason};
use crate::checkpoint::{CheckpointSession, CheckpointVerdict};
use crate::choices::find_choices;
use crate::correspond::{Correspondence, OutputPair};
use crate::error_domain::{
    check_output_pair_with_stats, classify_outputs_with_stats, collect_samples_with_stats,
    Equivalence,
};
use crate::fault::SpanPoint;
use crate::memo::{CacheSession, OutputEntry, WarmStart};
use crate::options::EcoOptions;
use crate::patch::Patch;
use crate::points::{candidate_pins, feasible_point_sets, Selection};
use crate::prefilter;
use crate::progress::{emit, OutputAction, ProgressCallback, ProgressEvent};
use crate::rewire_nets::{candidates_for_pin, RewireCandidate, RewireNetContext};
use crate::sampling::{eval_all_bdd, SamplingDomain};
use crate::schedule::{per_output_seed, WorkerPool};
use crate::validate::{apply_rewires, validate_rewires_with_stats, CandidateRewire, Validation};
use crate::EcoError;

/// BDD variable layout: choice block, selection block, rectification
/// inputs, sampling block — the `c < t < y < z` order of DESIGN.md.
const C_BASE: u32 = 0;
const T_BASE: u32 = 64;
const Y_BASE: u32 = 128;
const Z_BASE: u32 = 140;

/// How one output was handled, with its search wall-clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputTiming {
    /// Output label.
    pub output: String,
    /// Wall-clock time of the per-output search (zero for outputs only
    /// touched by the post-merge verification pass).
    pub search: Duration,
    /// How the output ended up rectified.
    pub action: OutputAction,
}

/// Counters describing a rectification run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RectifyStats {
    /// Matched output pairs.
    pub outputs_total: usize,
    /// Pairs initially non-equivalent.
    pub outputs_failing: usize,
    /// Outputs rectified through non-trivial rewiring search.
    pub rewire_rectified: usize,
    /// Outputs that needed the output-rewire fallback.
    pub fallbacks: usize,
    /// Sampling-domain refinements (false positives encountered) — the
    /// metric behind ablations A and B.
    pub refinements: usize,
    /// SAT validation calls.
    pub validations: usize,
    /// Feasible point-sets examined.
    pub point_sets_tried: usize,
    /// Rewiring choices examined.
    pub choices_tried: usize,
    /// Candidates the bit-parallel simulation pre-filter proved invalid
    /// before they could consume a SAT-validation slot.
    pub prefilter_screened: usize,
    /// Candidates that survived the pre-filter and went on to SAT
    /// validation.
    pub prefilter_passed: usize,
    /// Outputs whose search was cut short (budget exhaustion, resource
    /// limits, panics), with the recovery taken for each. Empty on a clean
    /// run; every listed output is still rectified, just less thoroughly
    /// searched.
    pub degradations: Vec<Degradation>,
    /// One entry per rectified output, in merge order: search wall-clock
    /// and the action taken.
    pub per_output: Vec<OutputTiming>,
    /// SAT conflicts across detection, search, validation, and rechecks.
    ///
    /// Like every counter here, deterministic for a given seed and input —
    /// independent of `jobs` — because each solver instance sees a
    /// deterministic query sequence and sums commute.
    pub sat_conflicts: u64,
    /// SAT decisions (same scope as [`sat_conflicts`](Self::sat_conflicts)).
    pub sat_decisions: u64,
    /// SAT propagations (same scope).
    pub sat_propagations: u64,
    /// SAT Luby restarts (same scope).
    pub sat_restarts: u64,
    /// SAT learnt clauses (same scope).
    pub sat_learnt_clauses: u64,
    /// SAT learnt literals across every learnt clause (same scope).
    pub sat_learnt_literals: u64,
    /// BDD operation-cache hits/misses summed over every per-output manager.
    pub bdd: BddCounters,
    /// Largest node count any single BDD manager reached.
    pub bdd_peak_nodes: usize,
    /// Persistent-cache records reused after passing re-verification: a
    /// whole-run replay counts one, each reused per-output proposal counts
    /// one (DESIGN.md §11). Zero when no cache directory is configured.
    pub cache_hits: u64,
    /// Persistent-cache lookups that found nothing usable.
    pub cache_misses: u64,
    /// Persistent-cache records found but discarded because re-verification
    /// (SAT validation or the replay equivalence check) rejected them —
    /// stale entries cost time, never correctness.
    pub cache_verify_rejects: u64,
    /// Damaged cache segments skipped when the store was opened (cache and
    /// checkpoint stores combined). Checksum damage is *permanent*: the
    /// segment is discarded, unlike the transient failures counted by
    /// [`cache_io_errors`](Self::cache_io_errors).
    pub cache_corrupt_segments: u64,
    /// Cache/checkpoint I/O operations that kept failing after every
    /// bounded retry and were given up on (DESIGN.md §13). Distinct from
    /// corruption: the bytes on disk may be fine, the I/O just failed.
    pub cache_io_errors: u64,
    /// Transient cache/checkpoint I/O failures absorbed by retry-with-
    /// backoff — the operation eventually succeeded or was abandoned; each
    /// retry attempt counts once.
    pub cache_retries: u64,
    /// Per-output search results resumed from the checkpoint directory
    /// instead of searched (always re-verified downstream). Zero without
    /// [`EcoOptions::checkpoint_dir`].
    pub checkpoint_hits: u64,
    /// Per-output search results durably persisted to the checkpoint
    /// directory as their searches completed.
    pub checkpoint_writes: u64,
}

impl RectifyStats {
    /// A copy with every wall-clock field zeroed, so runs that differ only
    /// in timing (e.g. different `jobs` values) compare equal.
    pub fn normalized(&self) -> RectifyStats {
        let mut s = self.clone();
        for t in &mut s.per_output {
            t.search = Duration::ZERO;
        }
        s
    }
}

/// Emits a trace line when `SYSECO_TRACE` is set in the environment.
macro_rules! trace {
    ($($arg:tt)*) => {
        if std::env::var_os("SYSECO_TRACE").is_some() {
            eprintln!("[syseco] {}", format!($($arg)*));
        }
    };
}

/// Worker-local counters folded into [`RectifyStats`] in merge order.
#[derive(Debug, Default)]
struct SearchStats {
    refinements: usize,
    validations: usize,
    point_sets_tried: usize,
    choices_tried: usize,
    prefilter_screened: usize,
    prefilter_passed: usize,
    sat: SolverStats,
    bdd: BddCounters,
    bdd_peak_nodes: usize,
    bdd_unique_entries: usize,
    /// Memoized proposals that re-validated and were returned directly.
    cache_hits: u64,
    /// Memoized proposals that failed re-validation against this spec.
    cache_verify_rejects: u64,
}

/// What one per-output search concluded, without mutating anything.
enum SearchVerdict {
    /// No distinguishing assignment exists: the pair is equivalent after
    /// all (detection was conservative).
    Equivalent,
    /// A SAT-validated rewiring against the base circuit.
    Proposal {
        rewires: Vec<CandidateRewire>,
        /// Budget reason when the search stopped early but could still
        /// return its best validated option.
        cut: Option<DegradeReason>,
    },
    /// The search found nothing usable; take the guaranteed output-rewire
    /// fallback. `reason` is set when the search was cut short rather than
    /// exhausted cleanly.
    Fallback { reason: Option<DegradeReason> },
    /// The fault plan simulated a hard crash inside this search. Never
    /// merged: the coordinator aborts the whole run as soon as any slot
    /// reports it, modeling a process killed mid-fan-out.
    #[cfg(any(test, feature = "fault-injection"))]
    Aborted,
}

/// The persistable form of a verdict: `Some` only for *clean* outcomes.
/// Degraded or aborted searches return `None` and are searched again on
/// resume rather than resumed into a worse-than-necessary patch.
fn clean_checkpoint_verdict(v: &SearchVerdict) -> Option<CheckpointVerdict> {
    match v {
        SearchVerdict::Equivalent => Some(CheckpointVerdict::Equivalent),
        SearchVerdict::Proposal { rewires, cut: None } => {
            Some(CheckpointVerdict::Proposal(rewires.clone()))
        }
        SearchVerdict::Fallback { reason: None } => Some(CheckpointVerdict::CleanFallback),
        _ => None,
    }
}

/// Reconstitutes the verdict a checkpointed search concluded with. Exact
/// inverse of [`clean_checkpoint_verdict`] on the clean subset, so the merge
/// phase cannot tell a resumed slot from a freshly searched one.
fn resume_verdict(v: CheckpointVerdict) -> SearchVerdict {
    match v {
        CheckpointVerdict::Equivalent => SearchVerdict::Equivalent,
        CheckpointVerdict::Proposal(rewires) => SearchVerdict::Proposal { rewires, cut: None },
        CheckpointVerdict::CleanFallback => SearchVerdict::Fallback { reason: None },
    }
}

/// Result of [`rewire_rectify_with`]: the patch, run statistics, the merged
/// trace, and the committed rewire groups in commit order (the raw material
/// of a whole-run cache replay record).
pub(crate) type CommittedRectification = (
    Patch,
    RectifyStats,
    Vec<SpanRecord>,
    Vec<Vec<CandidateRewire>>,
);

/// One search outcome plus its local counters, trace, and wall-clock.
struct SearchResult {
    verdict: SearchVerdict,
    stats: SearchStats,
    search: Duration,
    trace: TraceBuffer,
    /// Refinement counterexamples hit during the search, recorded so a
    /// later run can warm-start its sampling domain past them.
    refined: Vec<Vec<bool>>,
}

enum Attempt {
    /// Found a validated rewiring; `cut` carries the budget reason when the
    /// search stopped early but could still return its best option.
    Found {
        rewires: Vec<CandidateRewire>,
        cut: Option<DegradeReason>,
    },
    /// The domain produced a false positive; refine with this assignment.
    Refine(Vec<bool>),
    /// BDD budget exceeded; retry with fewer candidate pins.
    NodeLimit,
    /// SAT validation ran out of budget on every remaining choice.
    SatExhausted,
    /// No valid choice found in this domain.
    Exhausted,
    /// The run budget (deadline/cancellation) expired mid-attempt with
    /// nothing validated yet.
    BudgetOut(DegradeReason),
}

/// Runs the full rectification flow, mutating `implementation` in place.
///
/// Returns the accumulated [`Patch`] and run statistics. The caller (the
/// [`Syseco`](crate::Syseco) engine) is responsible for pre-normalizing
/// ports and for the post-processing patch sweep.
///
/// With `budget: None`, a budget is built from `options.timeout` (unlimited
/// when unset). Pass `Some(budget)` to share an externally owned
/// [`Budget`] — e.g. one carrying a cancellation token.
///
/// # Errors
///
/// [`EcoError`] on malformed inputs; resource exhaustion inside the search
/// degrades to the fallback instead of erroring.
pub fn rewire_rectify(
    implementation: &mut Circuit,
    spec: &Circuit,
    options: &EcoOptions,
    budget: Option<&Budget>,
) -> Result<(Patch, RectifyStats), EcoError> {
    let pool = WorkerPool::new(options.effective_jobs());
    let owned;
    let budget = match budget {
        Some(b) => b,
        None => {
            owned = match options.timeout {
                Some(t) => Budget::with_deadline(t),
                None => Budget::unlimited(),
            };
            &owned
        }
    };
    rewire_rectify_with(
        implementation,
        spec,
        options,
        budget,
        None,
        &pool,
        &Telemetry::disabled(),
        None,
        None,
    )
    .map(|(patch, stats, _trace, _committed)| (patch, stats))
}

/// Extracts a human-readable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Folds one coordinator-side SAT effort reading into the run stats and the
/// metrics shard.
fn note_sat(stats: &mut RectifyStats, shard: &MetricsShard, s: SolverStats) {
    stats.sat_conflicts += s.conflicts;
    stats.sat_decisions += s.decisions;
    stats.sat_propagations += s.propagations;
    stats.sat_restarts += s.restarts;
    stats.sat_learnt_clauses += s.learnt_clauses;
    stats.sat_learnt_literals += s.learnt_literals;
    if shard.is_enabled() {
        shard.add(Counter::SatConflicts, s.conflicts);
        shard.add(Counter::SatDecisions, s.decisions);
        shard.add(Counter::SatPropagations, s.propagations);
        shard.add(Counter::SatRestarts, s.restarts);
        shard.add(Counter::SatLearntClauses, s.learnt_clauses);
        shard.add(Counter::SatLearntLiterals, s.learnt_literals);
    }
}

/// Flushes one finished search's local counters into a worker shard: a
/// handful of relaxed atomic adds at search end, nothing on the hot path.
fn flush_search_metrics(shard: &MetricsShard, s: &SearchStats, search: Duration) {
    if !shard.is_enabled() {
        return;
    }
    shard.add(Counter::SatConflicts, s.sat.conflicts);
    shard.add(Counter::SatDecisions, s.sat.decisions);
    shard.add(Counter::SatPropagations, s.sat.propagations);
    shard.add(Counter::SatRestarts, s.sat.restarts);
    shard.add(Counter::SatLearntClauses, s.sat.learnt_clauses);
    shard.add(Counter::SatLearntLiterals, s.sat.learnt_literals);
    shard.add(Counter::BddApplyHits, s.bdd.apply_hits);
    shard.add(Counter::BddApplyMisses, s.bdd.apply_misses);
    shard.add(Counter::BddIteHits, s.bdd.ite_hits);
    shard.add(Counter::BddIteMisses, s.bdd.ite_misses);
    shard.add(Counter::BddNotHits, s.bdd.not_hits);
    shard.add(Counter::BddNotMisses, s.bdd.not_misses);
    shard.add(Counter::BddQuantHits, s.bdd.quant_hits);
    shard.add(Counter::BddQuantMisses, s.bdd.quant_misses);
    shard.add(Counter::BddUniqueResizes, s.bdd.unique_resizes);
    shard.add(Counter::BddEvictions, s.bdd.evictions);
    shard.add(Counter::BddGcRuns, s.bdd.gc_runs);
    shard.add(Counter::BddGcFreed, s.bdd.gc_freed_nodes);
    shard.add(Counter::BddReorders, s.bdd.reorders);
    shard.add(Counter::RectifyRefinements, s.refinements as u64);
    shard.add(Counter::RectifyValidations, s.validations as u64);
    shard.add(Counter::RectifyPointSets, s.point_sets_tried as u64);
    shard.add(Counter::RectifyChoices, s.choices_tried as u64);
    shard.add(Counter::PrefilterScreened, s.prefilter_screened as u64);
    shard.add(Counter::PrefilterPassed, s.prefilter_passed as u64);
    shard.add(Counter::CacheHits, s.cache_hits);
    shard.add(Counter::CacheVerifyRejects, s.cache_verify_rejects);
    shard.gauge_max(Gauge::BddPeakNodes, s.bdd_peak_nodes as u64);
    shard.gauge_max(Gauge::BddUniqueEntries, s.bdd_unique_entries as u64);
    shard.observe(Histogram::SearchMicros, search.as_micros() as u64);
}

/// [`rewire_rectify`] with an explicit observer, worker pool, and telemetry
/// handle — the internal entry used by [`Session`](crate::Session) and the
/// batch API.
///
/// Per-output searches are isolated: a budget expiry, an error, or a panic
/// inside one output's search degrades only that output to the
/// always-applicable output-rewire fallback and records a [`Degradation`] —
/// the run as a whole still succeeds with every output rectified.
///
/// The third tuple element is the merged trace: coordinator spans (lane 0)
/// first, then each search's spans in merge-slot order (lane `i + 1`) —
/// independent of worker scheduling. Empty when `telemetry` is disabled.
///
/// With a [`CacheSession`], per-output records warm-start searches (stored
/// sampling minterms plus the previously validated proposal, which is
/// SAT-re-validated before reuse) and finished searches are recorded back.
/// The fourth tuple element is the committed rewire groups in commit order
/// — everything `apply_rewires` executed and kept — from which the caller
/// can build a whole-run replay record (DESIGN.md §11).
#[allow(clippy::too_many_arguments)]
pub(crate) fn rewire_rectify_with(
    implementation: &mut Circuit,
    spec: &Circuit,
    options: &EcoOptions,
    budget: &Budget,
    observer: Option<&ProgressCallback>,
    pool: &WorkerPool,
    telemetry: &Telemetry,
    mut cache: Option<&mut CacheSession>,
    checkpoint: Option<&CheckpointSession>,
) -> Result<CommittedRectification, EcoError> {
    let t_run = Instant::now();
    let mut tb = telemetry.buffer(0);
    let shard = telemetry.shard();
    let span_run = tb.start();
    budget.fault_span(SpanPoint::Run)?;
    let corr = Correspondence::build(implementation, spec)?;
    let mut patch = Patch::new(implementation.num_nodes());
    let mut stats = RectifyStats {
        outputs_total: corr.outputs.len(),
        ..Default::default()
    };
    // The base circuit is immutable during the search phase, so arrival
    // times are computed once (level-driven selection only).
    let timing = if options.level_driven {
        let model = DelayModel::default();
        let probe = TimingReport::analyze(implementation, &model, 0.0)?;
        Some(TimingReport::analyze(
            implementation,
            &model,
            probe.critical_delay() * 1.1,
        )?)
    } else {
        None
    };

    // ------------------------------------------------------------------
    // Detect failing outputs: one miter encoding, per-pair assumptions.
    // ------------------------------------------------------------------
    let mut failing: HashSet<u32> = HashSet::new();
    let mut seeds: HashMap<u32, Vec<bool>> = HashMap::new();
    let span_detect = tb.start();
    budget.fault_span(SpanPoint::Detect)?;
    let (verdicts, detect_sat) = classify_outputs_with_stats(
        implementation,
        spec,
        &corr,
        Some(options.validation_budget.saturating_mul(10)),
        Some(budget),
    )?;
    note_sat(&mut stats, &shard, detect_sat);
    for (pair, verdict) in corr.outputs.iter().zip(verdicts) {
        match verdict {
            Equivalence::Equivalent => {}
            Equivalence::Counterexample(x) => {
                failing.insert(pair.impl_index);
                seeds.insert(pair.impl_index, x);
            }
            Equivalence::Unknown => {
                // Conservatively treat as failing; sample collection will
                // show whether anything is actually wrong.
                failing.insert(pair.impl_index);
            }
        }
    }
    stats.outputs_failing = failing.len();
    tb.end_with(span_detect, "detect", "rectify", || {
        vec![
            ("outputs_total", ArgValue::U64(corr.outputs.len() as u64)),
            ("outputs_failing", ArgValue::U64(failing.len() as u64)),
            ("sat_conflicts", ArgValue::U64(detect_sat.conflicts)),
        ]
    });
    // Detection counterexamples seed every worker's local sample bank, in
    // output order so the bank is identical across runs and worker counts.
    let initial_bank: Vec<Vec<bool>> = corr
        .outputs
        .iter()
        .filter_map(|p| seeds.get(&p.impl_index).cloned())
        .collect();

    // Merge order: increasing logical complexity (cone size), stable on
    // ties — fixed before the fan-out, independent of completion order.
    let mut order: Vec<&OutputPair> = corr
        .outputs
        .iter()
        .filter(|p| failing.contains(&p.impl_index))
        .collect();
    order.sort_by_key(|p| {
        topo::cone_size(spec, spec.outputs()[p.spec_index as usize].net())
            + topo::cone_size(
                implementation,
                implementation.outputs()[p.impl_index as usize].net(),
            )
    });
    let order: Vec<OutputPair> = order.into_iter().cloned().collect();

    // Per-output cache slots are resolved by the coordinator *before* the
    // fan-out: every merge slot sees fixed warm data, so cache lookups
    // cannot perturb jobs-determinism. A failed walk (cannot happen on the
    // well-formed circuits that reach this point) just runs the fan-out
    // cold.
    let output_entries: Vec<OutputEntry> = match cache.as_deref_mut() {
        Some(session) => session.output_entries(spec, &order).unwrap_or_default(),
        None => Vec::new(),
    };

    // Checkpoint slots are likewise resolved up front: a resumed slot
    // substitutes its stored clean verdict for the search, everything
    // downstream (merge rechecks, the verification pass) runs unchanged.
    let checkpoint_slots: Vec<_> = match checkpoint {
        Some(ck) => order
            .iter()
            .map(|p| {
                let key = ck.slot_key(&p.name);
                let record = ck.load(key);
                (key, record)
            })
            .collect(),
        None => Vec::new(),
    };
    let resumed_count = checkpoint_slots.iter().filter(|(_, r)| r.is_some()).count();

    emit(
        observer,
        ProgressEvent::RunStarted {
            outputs_total: corr.outputs.len(),
            outputs_failing: order.len(),
            jobs: pool.workers(),
        },
    );

    // ------------------------------------------------------------------
    // Search phase: pure per-output searches on the worker pool.
    // ------------------------------------------------------------------
    let base: &Circuit = implementation;
    // One metrics shard per worker lane: counters are relaxed atomics, so
    // the search hot path never takes a lock; the registry folds the shards
    // at snapshot time.
    let worker_shards: Vec<MetricsShard> = (0..pool.workers()).map(|_| telemetry.shard()).collect();
    let results: Vec<SearchResult> = pool.run(order.len(), |w, i| {
        let pair = &order[i];
        emit(
            observer,
            ProgressEvent::OutputStarted {
                output: pair.name.clone(),
                position: i,
                failing_total: order.len(),
            },
        );
        let t_search = Instant::now();
        let mut local = SearchStats::default();
        let mut refined: Vec<Vec<bool>> = Vec::new();
        // Trace lane i+1 belongs to merge slot i regardless of which worker
        // ran it, so the merged trace is independent of scheduling.
        let mut trace = telemetry.buffer(i as u32 + 1);
        let span_search = trace.start();
        let slot = checkpoint_slots.get(i);
        let resumed = slot.and_then(|(_, record)| record.clone());
        let verdict = match resumed {
            // Resumed from the checkpoint: skip the search entirely. The
            // stored refinement minterms are carried over so the cache
            // write-back matches an uninterrupted run's.
            Some(record) => {
                refined = record.refined;
                resume_verdict(record.verdict)
            }
            None => {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    budget.fault_span(SpanPoint::Search)?;
                    budget.inject_search_panic();
                    search_one_output(
                        base,
                        spec,
                        &corr,
                        pair,
                        seeds.get(&pair.impl_index).map(Vec::as_slice),
                        &failing,
                        &initial_bank,
                        options,
                        timing.as_ref(),
                        &mut local,
                        budget,
                        &mut trace,
                        &worker_shards[w],
                        output_entries.get(i).and_then(|e| e.warm.as_ref()),
                        &mut refined,
                    )
                }));
                let verdict = match outcome {
                    Ok(Ok(v)) => v,
                    #[cfg(any(test, feature = "fault-injection"))]
                    Ok(Err(EcoError::InjectedAbort)) => SearchVerdict::Aborted,
                    Ok(Err(e)) => SearchVerdict::Fallback {
                        reason: Some(DegradeReason::SearchError(e.to_string())),
                    },
                    Err(payload) => SearchVerdict::Fallback {
                        reason: Some(DegradeReason::SearchPanicked(panic_message(payload))),
                    },
                };
                // Persist clean verdicts the moment the search finishes:
                // after `record` returns, a kill at any later instant
                // leaves this output resumable.
                if let (Some(ck), Some((key, _))) = (checkpoint, slot) {
                    if let Some(cv) = clean_checkpoint_verdict(&verdict) {
                        ck.record(*key, &cv, &refined);
                    }
                }
                verdict
            }
        };
        let search = t_search.elapsed();
        trace!("output {}: search done in {search:?}", pair.name);
        trace.end_with(span_search, "search", "rectify", || {
            vec![
                ("output", ArgValue::Str(pair.name.clone())),
                ("refinements", ArgValue::U64(local.refinements as u64)),
                ("validations", ArgValue::U64(local.validations as u64)),
                ("point_sets", ArgValue::U64(local.point_sets_tried as u64)),
                ("choices", ArgValue::U64(local.choices_tried as u64)),
                ("screened", ArgValue::U64(local.prefilter_screened as u64)),
                ("sat_conflicts", ArgValue::U64(local.sat.conflicts)),
                (
                    "proposal",
                    ArgValue::U64(u64::from(matches!(verdict, SearchVerdict::Proposal { .. }))),
                ),
            ]
        });
        flush_search_metrics(&worker_shards[w], &local, search);
        emit(
            observer,
            ProgressEvent::OutputSearched {
                output: pair.name.clone(),
                position: i,
                search,
                proposal: matches!(verdict, SearchVerdict::Proposal { .. }),
            },
        );
        SearchResult {
            verdict,
            stats: local,
            search,
            trace,
            refined,
        }
    });
    for r in &results {
        stats.refinements += r.stats.refinements;
        stats.validations += r.stats.validations;
        stats.point_sets_tried += r.stats.point_sets_tried;
        stats.choices_tried += r.stats.choices_tried;
        stats.prefilter_screened += r.stats.prefilter_screened;
        stats.prefilter_passed += r.stats.prefilter_passed;
        stats.sat_conflicts += r.stats.sat.conflicts;
        stats.sat_decisions += r.stats.sat.decisions;
        stats.sat_propagations += r.stats.sat.propagations;
        stats.sat_restarts += r.stats.sat.restarts;
        stats.sat_learnt_clauses += r.stats.sat.learnt_clauses;
        stats.sat_learnt_literals += r.stats.sat.learnt_literals;
        stats.bdd += r.stats.bdd;
        stats.bdd_peak_nodes = stats.bdd_peak_nodes.max(r.stats.bdd_peak_nodes);
        stats.cache_hits += r.stats.cache_hits;
        stats.cache_verify_rejects += r.stats.cache_verify_rejects;
    }
    // A simulated crash in any search slot kills the whole run *now*,
    // before the merge phase writes anything — exactly what a SIGKILL
    // mid-fan-out leaves behind: durable checkpoints, no partial patch.
    #[cfg(any(test, feature = "fault-injection"))]
    if results
        .iter()
        .any(|r| matches!(r.verdict, SearchVerdict::Aborted))
    {
        return Err(EcoError::InjectedAbort);
    }

    // ------------------------------------------------------------------
    // Merge phase: apply proposals sequentially in the fixed order.
    // ------------------------------------------------------------------
    let recheck_budget = Some(options.validation_budget.saturating_mul(10));
    // Spec logic already instantiated by earlier merges, shared so
    // overlapping revisions are cloned once (one patch, many sinks).
    let mut shared_clones: HashMap<NetId, NetId> = HashMap::new();
    let mut proposals_applied = 0usize;
    let mut search_traces: Vec<TraceBuffer> = Vec::new();
    // Rewire groups that were applied *and kept*, in commit order. Because
    // `apply_rewires` is the only circuit mutation in the merge phase and a
    // rolled-back group restores the pre-apply snapshot, replaying exactly
    // these groups through a fresh clone map reproduces the final circuit
    // and patch byte for byte — the whole-run cache record.
    let mut committed: Vec<Vec<CandidateRewire>> = Vec::new();
    // For each merge slot, the index into `committed` of the proposal that
    // stuck (fallback groups are never memoized per output: recording them
    // would let a warm run skip the search that might beat them).
    let mut output_proposals: Vec<Option<usize>> = vec![None; order.len()];
    let mut refined_per_output: Vec<Vec<Vec<bool>>> = Vec::with_capacity(order.len());
    let span_merge = tb.start();
    budget.fault_span(SpanPoint::Merge)?;
    let recheck = |implementation: &Circuit,
                   pair: &OutputPair,
                   stats: &mut RectifyStats|
     -> Result<Equivalence, EcoError> {
        let (verdict, s) =
            check_output_pair_with_stats(implementation, spec, pair, recheck_budget, Some(budget))?;
        note_sat(stats, &shard, s);
        Ok(verdict)
    };
    for (position, (pair, result)) in order.iter().zip(results).enumerate() {
        let SearchResult {
            verdict,
            search,
            trace,
            refined,
            ..
        } = result;
        search_traces.push(trace);
        refined_per_output.push(refined);
        let span_commit = tb.start();
        budget.fault_span(SpanPoint::Commit)?;
        let (action, degraded) = match verdict {
            SearchVerdict::Equivalent => (OutputAction::AlreadyEquivalent, false),
            #[cfg(any(test, feature = "fault-injection"))]
            SearchVerdict::Aborted => unreachable!("aborted runs never reach the merge phase"),
            SearchVerdict::Fallback { reason } => {
                let reason = reason.or_else(|| budget.degrade_reason());
                // An earlier merged proposal may have fixed this output as a
                // side effect; only worth a query when the circuit actually
                // changed and the budget still allows it.
                let already_fixed = reason.is_none()
                    && proposals_applied > 0
                    && matches!(
                        recheck(implementation, pair, &mut stats)?,
                        Equivalence::Equivalent
                    );
                if already_fixed {
                    (OutputAction::AlreadyEquivalent, false)
                } else {
                    fallback_rectify(
                        implementation,
                        spec,
                        pair,
                        &mut shared_clones,
                        &mut patch,
                        &mut stats,
                        &mut committed,
                    )?;
                    match reason {
                        Some(reason) => {
                            trace!("output {}: fallback ({reason})", pair.name);
                            stats.degradations.push(Degradation {
                                output: pair.name.clone(),
                                reason,
                                action: DegradeAction::OutputRewireFallback,
                            });
                            (OutputAction::Fallback, true)
                        }
                        None => (OutputAction::Fallback, false),
                    }
                }
            }
            SearchVerdict::Proposal { rewires, cut } => {
                if let Some(reason) = budget.degrade_reason() {
                    // The proposal was validated against the pristine base
                    // circuit; re-validating against the merged state is no
                    // longer affordable, so take the guaranteed fallback
                    // instead of trusting it blindly.
                    fallback_rectify(
                        implementation,
                        spec,
                        pair,
                        &mut shared_clones,
                        &mut patch,
                        &mut stats,
                        &mut committed,
                    )?;
                    stats.degradations.push(Degradation {
                        output: pair.name.clone(),
                        reason,
                        action: DegradeAction::OutputRewireFallback,
                    });
                    (OutputAction::Fallback, true)
                } else if proposals_applied > 0
                    && matches!(
                        recheck(implementation, pair, &mut stats)?,
                        Equivalence::Equivalent
                    )
                {
                    (OutputAction::AlreadyEquivalent, false)
                } else {
                    // Snapshot so a conflicting proposal cannot leave a
                    // half-applied rewire behind.
                    let snapshot = (implementation.clone(), patch.clone(), shared_clones.clone());
                    let mut conflict: Option<DegradeReason> = None;
                    match apply_rewires(implementation, spec, &rewires, &mut shared_clones) {
                        Ok((ops, cloned)) => {
                            patch.record_cloned(cloned);
                            for op in ops {
                                patch.record_rewire(op);
                            }
                            // Proposals after the first were validated
                            // against a circuit that has since changed:
                            // re-confirm before keeping them.
                            if proposals_applied > 0
                                && !matches!(
                                    recheck(implementation, pair, &mut stats)?,
                                    Equivalence::Equivalent
                                )
                            {
                                conflict = Some(
                                    budget
                                        .degrade_reason()
                                        .unwrap_or(DegradeReason::MergeConflict),
                                );
                            }
                        }
                        Err(_) => conflict = Some(DegradeReason::MergeConflict),
                    }
                    match conflict {
                        None => {
                            stats.rewire_rectified += 1;
                            proposals_applied += 1;
                            output_proposals[position] = Some(committed.len());
                            committed.push(rewires);
                            match cut {
                                Some(reason) => {
                                    stats.degradations.push(Degradation {
                                        output: pair.name.clone(),
                                        reason,
                                        action: DegradeAction::CommittedBest,
                                    });
                                    (OutputAction::Rewired, true)
                                }
                                None => (OutputAction::Rewired, false),
                            }
                        }
                        Some(reason) => {
                            trace!("output {}: merge conflict, fallback", pair.name);
                            (*implementation, patch, shared_clones) = snapshot;
                            fallback_rectify(
                                implementation,
                                spec,
                                pair,
                                &mut shared_clones,
                                &mut patch,
                                &mut stats,
                                &mut committed,
                            )?;
                            stats.degradations.push(Degradation {
                                output: pair.name.clone(),
                                reason,
                                action: DegradeAction::OutputRewireFallback,
                            });
                            (OutputAction::Fallback, true)
                        }
                    }
                }
            }
        };
        stats.per_output.push(OutputTiming {
            output: pair.name.clone(),
            search,
            action,
        });
        tb.end_with(span_commit, "commit", "rectify", || {
            let mut args = vec![
                ("output", ArgValue::Str(pair.name.clone())),
                ("action", ArgValue::Str(action.to_string())),
                ("degraded", ArgValue::U64(u64::from(degraded))),
            ];
            if degraded {
                // The degradation for this output was just pushed; its
                // reason feeds the run report's narrative.
                if let Some(d) = stats
                    .degradations
                    .iter()
                    .rev()
                    .find(|d| d.output == pair.name)
                {
                    args.push(("reason", ArgValue::Str(d.reason.to_string())));
                }
            }
            args
        });
        emit(
            observer,
            ProgressEvent::OutputRectified {
                output: pair.name.clone(),
                position,
                action,
                degraded,
            },
        );
    }
    tb.end_with(span_merge, "merge", "rectify", || {
        vec![
            ("proposals_applied", ArgValue::U64(proposals_applied as u64)),
            ("fallbacks", ArgValue::U64(stats.fallbacks as u64)),
        ]
    });

    // ------------------------------------------------------------------
    // Verification pass: with two or more merged proposals, a later one can
    // damage an earlier one's output (each was re-checked only for its own
    // pair). Re-classify everything and repair damage with the fallback.
    // ------------------------------------------------------------------
    // A resumed run with any merged proposal also verifies: resumed slots
    // skipped their searches, so the end-to-end re-classification is what
    // discharges the "always re-verified" resume guarantee.
    if proposals_applied >= 2 || (resumed_count > 0 && proposals_applied >= 1) {
        let span_verify = tb.start();
        budget.fault_span(SpanPoint::Verify)?;
        let (verdicts, verify_sat) =
            classify_outputs_with_stats(implementation, spec, &corr, recheck_budget, Some(budget))?;
        note_sat(&mut stats, &shard, verify_sat);
        let mut repaired = 0u64;
        for (pair, verdict) in corr.outputs.iter().zip(verdicts) {
            if matches!(verdict, Equivalence::Equivalent) {
                continue;
            }
            repaired += 1;
            trace!("output {}: damaged by a later merge, fallback", pair.name);
            fallback_rectify(
                implementation,
                spec,
                pair,
                &mut shared_clones,
                &mut patch,
                &mut stats,
                &mut committed,
            )?;
            let reason = budget
                .degrade_reason()
                .unwrap_or(DegradeReason::MergeConflict);
            // At most one degradation per output: replace any earlier entry.
            match stats
                .degradations
                .iter_mut()
                .find(|d| d.output == pair.name)
            {
                Some(d) => {
                    d.reason = reason;
                    d.action = DegradeAction::OutputRewireFallback;
                }
                None => stats.degradations.push(Degradation {
                    output: pair.name.clone(),
                    reason,
                    action: DegradeAction::OutputRewireFallback,
                }),
            }
            match stats.per_output.iter_mut().find(|t| t.output == pair.name) {
                Some(t) => t.action = OutputAction::Fallback,
                None => stats.per_output.push(OutputTiming {
                    output: pair.name.clone(),
                    search: Duration::ZERO,
                    action: OutputAction::Fallback,
                }),
            }
        }
        tb.end_with(span_verify, "verify", "rectify", || {
            vec![("repaired", ArgValue::U64(repaired))]
        });
    }

    // Record per-output outcomes for future warm starts. A proposal is
    // stored only when it survived both the merge rechecks and the
    // verification pass (`per_output` actions are final by now);
    // refinement counterexamples are stored for every searched output, with
    // previously stored minterms carried forward so repeated runs do not
    // erode the warm-start data.
    if let Some(session) = cache {
        let minterm_cap = options.num_samples.max(1);
        for (i, (pair, entry)) in order.iter().zip(&output_entries).enumerate() {
            let proposal = (stats.per_output[i].action == OutputAction::Rewired)
                .then(|| output_proposals[i].map(|slot| committed[slot].as_slice()))
                .flatten();
            let mut minterms: Vec<Vec<bool>> = entry
                .warm
                .as_ref()
                .map(|w| w.minterms.clone())
                .unwrap_or_default();
            for x in &refined_per_output[i] {
                if minterms.len() >= minterm_cap {
                    break;
                }
                if !minterms.contains(x) {
                    minterms.push(x.clone());
                }
            }
            minterms.truncate(minterm_cap);
            let spec_root = spec.outputs()[pair.spec_index as usize].net();
            session.record_output(entry, spec, spec_root, proposal, &minterms);
        }
    }

    if let Some(ck) = checkpoint {
        stats.checkpoint_hits = resumed_count as u64;
        stats.checkpoint_writes = ck.writes();
        stats.cache_corrupt_segments += ck.corrupt_segments();
        let (io_errors, retries) = ck.io_counters();
        stats.cache_io_errors += io_errors;
        stats.cache_retries += retries;
        if shard.is_enabled() {
            shard.add(Counter::CheckpointHits, stats.checkpoint_hits);
            shard.add(Counter::CheckpointWrites, stats.checkpoint_writes);
        }
    }

    implementation.sweep();
    if shard.is_enabled() {
        shard.add(Counter::RectifyRewired, stats.rewire_rectified as u64);
        shard.add(Counter::RectifyFallbacks, stats.fallbacks as u64);
        shard.add(
            Counter::RectifyDegradations,
            stats.degradations.len() as u64,
        );
        let merge_conflicts = stats
            .degradations
            .iter()
            .filter(|d| matches!(d.reason, DegradeReason::MergeConflict))
            .count();
        shard.add(Counter::RectifyMergeConflicts, merge_conflicts as u64);
    }
    emit(
        observer,
        ProgressEvent::RunFinished {
            duration: t_run.elapsed(),
            degradations: stats.degradations.len(),
        },
    );
    tb.end_with(span_run, "run", "rectify", || {
        vec![
            ("outputs_total", ArgValue::U64(stats.outputs_total as u64)),
            (
                "outputs_failing",
                ArgValue::U64(stats.outputs_failing as u64),
            ),
            ("rewired", ArgValue::U64(stats.rewire_rectified as u64)),
            ("fallbacks", ArgValue::U64(stats.fallbacks as u64)),
            (
                "degradations",
                ArgValue::U64(stats.degradations.len() as u64),
            ),
        ]
    });
    // Coordinator spans first, then each search's spans in merge-slot
    // order: deterministic for any worker count.
    for t in search_traces {
        tb.append(t);
    }
    Ok((patch, stats, tb.into_spans(), committed))
}

/// Applies the §3.3 output-rewire fallback for `pair`: rewire the output pin
/// to a clone of the corresponding specification cone. Always applicable on
/// a well-formed design.
fn fallback_rectify(
    implementation: &mut Circuit,
    spec: &Circuit,
    pair: &OutputPair,
    shared_clones: &mut HashMap<NetId, NetId>,
    patch: &mut Patch,
    stats: &mut RectifyStats,
    committed: &mut Vec<Vec<CandidateRewire>>,
) -> Result<(), EcoError> {
    let spec_root = spec.outputs()[pair.spec_index as usize].net();
    let fallback = vec![CandidateRewire {
        pin: Pin::output(pair.impl_index),
        candidate: RewireCandidate {
            net: spec_root,
            from_spec: true,
            utility: 1.0,
            arrival: 0.0,
        },
    }];
    let (ops, cloned) =
        apply_rewires(implementation, spec, &fallback, shared_clones).map_err(|_| {
            EcoError::RectificationFailed {
                output: pair.name.clone(),
            }
        })?;
    patch.record_cloned(cloned);
    for op in ops {
        patch.record_rewire(op);
    }
    stats.fallbacks += 1;
    committed.push(fallback);
    Ok(())
}

/// Searches one output pair against the immutable base circuit.
///
/// Pure: mutates nothing outside its local counters; the returned
/// [`SearchVerdict`] is applied (or discarded) by the merge phase. The RNG
/// stream is derived from the run seed and the output index so the verdict
/// is independent of worker count and scheduling.
#[allow(clippy::too_many_arguments)]
fn search_one_output(
    base: &Circuit,
    spec: &Circuit,
    corr: &Correspondence,
    pair: &OutputPair,
    seed: Option<&[bool]>,
    failing: &HashSet<u32>,
    initial_bank: &[Vec<bool>],
    options: &EcoOptions,
    timing: Option<&TimingReport>,
    stats: &mut SearchStats,
    budget: &Budget,
    buf: &mut TraceBuffer,
    shard: &MetricsShard,
    warm: Option<&WarmStart>,
    refined: &mut Vec<Vec<bool>>,
) -> Result<SearchVerdict, EcoError> {
    let mut rng = SmallRng::seed_from_u64(per_output_seed(options.seed, pair.impl_index));
    let span_samples = buf.start();
    budget.fault_span(SpanPoint::Samples)?;
    let (mut samples, sample_sat) = collect_samples_with_stats(
        base,
        spec,
        corr,
        pair,
        options.num_samples,
        options.sample_policy,
        seed,
        &mut rng,
        Some(budget),
    )?;
    stats.sat += sample_sat;
    buf.end_with(span_samples, "samples", "rectify", || {
        vec![
            ("collected", ArgValue::U64(samples.len() as u64)),
            ("sat_conflicts", ArgValue::U64(sample_sat.conflicts)),
        ]
    });
    if samples.is_empty() {
        return Ok(match budget.degrade_reason() {
            // The sampler gave up before finding a distinguishing input, so
            // we cannot claim equivalence: take the guaranteed fallback.
            Some(reason) => SearchVerdict::Fallback {
                reason: Some(reason),
            },
            // No error exists: the pair is equivalent after all.
            None => SearchVerdict::Equivalent,
        });
    }
    let mut sample_bank: Vec<Vec<bool>> = initial_bank.to_vec();
    for s in &samples {
        if !sample_bank.contains(s) {
            sample_bank.push(s.clone());
        }
    }

    // Warm start (DESIGN.md §11). Previously recorded refinement
    // counterexamples extend the sampling domain so it begins past the
    // false-positive phase a cold run pays refinements for, and a
    // previously validated proposal is SAT-re-validated up front — a hit
    // skips the search entirely. Both sit *behind* the empty-sample early
    // return above, so stale warm data can never mask true equivalence.
    if let Some(warm) = warm {
        let cap = options.num_samples.max(1).saturating_mul(2);
        for x in &warm.minterms {
            if samples.len() >= cap {
                break;
            }
            if x.len() == base.num_inputs() && !samples.contains(x) {
                samples.push(x.clone());
                if !sample_bank.contains(x) {
                    sample_bank.push(x.clone());
                }
            }
        }
        if let Some(proposal) = &warm.proposal {
            let no_clones: HashMap<NetId, NetId> = HashMap::new();
            stats.validations += 1;
            let t_val = Instant::now();
            let span_val = buf.start();
            budget.fault_span(SpanPoint::Validate)?;
            let result = validate_rewires_with_stats(
                base,
                spec,
                corr,
                proposal,
                pair,
                failing,
                &sample_bank,
                &no_clones,
                options.validation_budget,
                Some(budget),
            );
            let val_sat = result
                .as_ref()
                .map(|(_, s)| *s)
                .unwrap_or_else(|_| SolverStats::default());
            stats.sat += val_sat;
            buf.end_with(span_val, "validate", "rectify", || {
                vec![
                    ("rewires", ArgValue::U64(proposal.len() as u64)),
                    ("sat_conflicts", ArgValue::U64(val_sat.conflicts)),
                    ("memoized", ArgValue::U64(1)),
                ]
            });
            if shard.is_enabled() {
                shard.observe(
                    Histogram::ValidateMicros,
                    t_val.elapsed().as_micros() as u64,
                );
                shard.observe(Histogram::SatConflictsPerCall, val_sat.conflicts);
            }
            match result {
                Ok((Validation::Valid { .. }, _)) => {
                    stats.cache_hits += 1;
                    return Ok(SearchVerdict::Proposal {
                        rewires: proposal.clone(),
                        cut: None,
                    });
                }
                Ok((Validation::CounterExample(x), _)) => {
                    // The rejection's counterexample is fresh signal: feed
                    // it into the domain before starting the cold search.
                    stats.cache_verify_rejects += 1;
                    if x.len() == base.num_inputs() && !samples.contains(&x) {
                        if !sample_bank.contains(&x) {
                            sample_bank.push(x.clone());
                        }
                        refined.push(x.clone());
                        samples.push(x);
                    }
                }
                // Damaged, infeasible, SAT-unknown, or a record so stale
                // it no longer applies cleanly: discard and search cold.
                _ => stats.cache_verify_rejects += 1,
            }
        }
    }

    let mut pin_cap = options.max_candidate_pins.max(2);
    let mut refinements_left = options.max_refinements;
    let mut ended: Option<DegradeReason> = None;
    loop {
        if let Some(reason) = budget.degrade_reason() {
            ended = Some(reason);
            break;
        }
        match attempt_with_domain(
            base,
            spec,
            corr,
            pair,
            &samples,
            pin_cap,
            failing,
            &sample_bank,
            options,
            timing,
            stats,
            budget,
            buf,
            shard,
        )? {
            Attempt::Found { rewires, cut } => {
                return Ok(SearchVerdict::Proposal { rewires, cut });
            }
            Attempt::Refine(x) => {
                if refinements_left == 0 {
                    break;
                }
                refinements_left -= 1;
                stats.refinements += 1;
                buf.instant("refine", "rectify");
                if !sample_bank.contains(&x) {
                    sample_bank.push(x.clone());
                }
                refined.push(x.clone());
                samples.push(x);
            }
            Attempt::NodeLimit => {
                if pin_cap <= 4 {
                    ended = Some(DegradeReason::BddNodeLimit);
                    break;
                }
                pin_cap /= 2;
            }
            Attempt::SatExhausted => {
                ended = Some(DegradeReason::SatBudgetExhausted);
                break;
            }
            Attempt::BudgetOut(reason) => {
                ended = Some(reason);
                break;
            }
            Attempt::Exhausted => break,
        }
    }

    // Fallback: the output pin is a rectification point whose rectification
    // function is f' itself, realized by the corresponding output of C'
    // (§3.3 completeness argument). The merge phase applies it.
    Ok(SearchVerdict::Fallback { reason: ended })
}

/// Maps a BDD failure inside an attempt to the matching [`Attempt`] outcome:
/// node-limit hits shrink the domain, budget cuts bubble up as degradations,
/// anything else is a hard error.
fn bdd_cut(e: BddError) -> Result<Attempt, EcoError> {
    match e {
        BddError::NodeLimit { .. } => Ok(Attempt::NodeLimit),
        BddError::DeadlineExceeded => Ok(Attempt::BudgetOut(DegradeReason::DeadlineExceeded)),
        BddError::Cancelled => Ok(Attempt::BudgetOut(DegradeReason::Cancelled)),
        // An armed bdd-gc/bdd-reorder fault point vetoed the pass through
        // the event hook: simulate a hard crash, exactly like an abort:
        // span fault — the run must be resumable from its checkpoints.
        #[cfg(any(test, feature = "fault-injection"))]
        BddError::Aborted => Err(EcoError::InjectedAbort),
        other => Err(EcoError::from(other)),
    }
}

/// One search attempt over a fixed sampling domain. Read-only with respect
/// to the circuit: a validated choice is returned as [`Attempt::Found`], not
/// applied.
///
/// Owns the attempt's [`BddManager`] so its cache counters and peak node
/// count can be folded into `stats` on **every** exit path of the inner
/// search, early cuts included.
#[allow(clippy::too_many_arguments)]
fn attempt_with_domain(
    base: &Circuit,
    spec: &Circuit,
    corr: &Correspondence,
    pair: &OutputPair,
    samples: &[Vec<bool>],
    pin_cap: usize,
    failing: &HashSet<u32>,
    sample_bank: &[Vec<bool>],
    options: &EcoOptions,
    timing: Option<&TimingReport>,
    stats: &mut SearchStats,
    budget: &Budget,
    buf: &mut TraceBuffer,
    shard: &MetricsShard,
) -> Result<Attempt, EcoError> {
    let node_limit = if budget.inject_bdd_node_limit() {
        1 // fault injection: force an immediate NodeLimit on the first op
    } else {
        options.bdd_node_limit
    };
    let mut m = BddManager::with_node_limit(node_limit);
    // Automatic triggers for collection and sifting, checked at point-set
    // boundaries. Fault arming may lower these to force the machinery
    // under test.
    m.set_gc_threshold(options.bdd_gc_threshold);
    m.set_reorder_threshold(options.bdd_reorder_threshold);
    budget.arm_bdd(&mut m);
    let result = attempt_in_manager(
        &mut m,
        base,
        spec,
        corr,
        pair,
        samples,
        pin_cap,
        failing,
        sample_bank,
        options,
        timing,
        stats,
        budget,
        buf,
        shard,
    );
    stats.bdd += m.counters();
    stats.bdd_peak_nodes = stats.bdd_peak_nodes.max(m.peak_num_nodes());
    stats.bdd_unique_entries = stats.bdd_unique_entries.max(m.unique_table_len());
    result
}

/// The body of [`attempt_with_domain`], running inside the supplied manager.
#[allow(clippy::too_many_arguments)]
fn attempt_in_manager(
    m: &mut BddManager,
    base: &Circuit,
    spec: &Circuit,
    corr: &Correspondence,
    pair: &OutputPair,
    samples: &[Vec<bool>],
    pin_cap: usize,
    failing: &HashSet<u32>,
    sample_bank: &[Vec<bool>],
    options: &EcoOptions,
    timing: Option<&TimingReport>,
    stats: &mut SearchStats,
    budget: &Budget,
    buf: &mut TraceBuffer,
    shard: &MetricsShard,
) -> Result<Attempt, EcoError> {
    let root = base.outputs()[pair.impl_index as usize].net();
    let spec_root = spec.outputs()[pair.spec_index as usize].net();
    let domain = SamplingDomain::new(samples.to_vec(), Z_BASE)?;

    let g_impl = match domain.input_functions(m, base.num_inputs()) {
        Ok(v) => v,
        Err(e) => return bdd_cut(e),
    };
    let mut g_spec = vec![m.zero(); spec.num_inputs()];
    for (pos, sp) in corr.spec_input_pos.iter().enumerate() {
        if let Some(sp) = sp {
            g_spec[*sp] = g_impl[pos];
        }
    }
    let impl_vals = match eval_all_bdd(base, m, &g_impl) {
        Ok(v) => v,
        Err(e) => return bdd_cut(e),
    };
    let spec_vals = match eval_all_bdd(spec, m, &g_spec) {
        Ok(v) => v,
        Err(e) => return bdd_cut(e),
    };
    let fprime = spec_vals[spec_root.index()];
    // The revised output value per sample — the constants the sample-wise
    // H(t) construction compares each restricted cone against.
    let fprime_bits: Vec<bool> = (0..domain.len())
        .map(|k| m.eval(fprime, &domain.code_assignment(k)))
        .collect();

    let pins = candidate_pins(base, root, pair.impl_index, pin_cap);
    let ctx = RewireNetContext::build(base, spec, corr, spec_root, samples)?;
    // Reference bits for the candidate screen, over the full sample bank
    // (a strict superset of this attempt's sampling domain): one spec
    // simulation per attempt, reused by every screen below.
    let pf_bank = prefilter::PrefilterBank::build(spec, corr, pair, sample_bank)?;
    // Handles the search must keep across GC/reorder boundaries: the
    // per-input domain functions and every evaluated net of both circuits
    // (`fprime` and `g_spec` entries are aliases into these).
    let mut search_roots: Vec<Bdd> =
        Vec::with_capacity(g_impl.len() + impl_vals.len() + spec_vals.len());
    search_roots.extend_from_slice(&g_impl);
    search_roots.extend_from_slice(&impl_vals);
    search_roots.extend_from_slice(&spec_vals);
    // Searches run against the pristine base circuit, so candidate cost is
    // estimated without cross-output clone sharing; the merge phase dedups
    // actual clones via its shared map.
    let no_clones: HashMap<NetId, NetId> = HashMap::new();

    let mut first_counterexample: Option<Vec<bool>> = None;
    // All validated candidates across every m, scored by patch cost: cloned
    // spec gates (estimated by cone size), then fewer rewires, then more
    // outputs fixed. A near-zero-cost candidate (pure or almost pure reuse
    // of existing implementation logic) commits immediately; otherwise
    // larger m may still find a cheaper multi-point rewiring (the Figure-1
    // effect), so the search continues before committing the global best.
    struct ValidOption {
        cost: usize,
        rewires_len: usize,
        arrival: f64,
        fixed: Vec<u32>,
        rewires: Vec<CandidateRewire>,
    }
    const EARLY_COMMIT_COST: usize = 1;
    let clone_cost = |rewires: &[CandidateRewire]| -> usize {
        rewires
            .iter()
            .filter(|r| r.candidate.from_spec)
            .map(|r| topo::cone_size(spec, r.candidate.net).max(1))
            .sum()
    };
    let mut valid: Vec<ValidOption> = Vec::new();
    let mut validations_left = options.max_validations_per_output;
    let mut unknowns = 0usize;
    let mut cut: Option<DegradeReason> = None;
    'outer: for m_points in 1..=options.max_points.clamp(1, 8) {
        if let Some(reason) = budget.degrade_reason() {
            if valid.is_empty() {
                return Ok(Attempt::BudgetOut(reason));
            }
            cut = Some(reason);
            break;
        }
        // Escalating m is for finding *cheaper* multi-point rewirings; once
        // a good-enough option exists, stop growing the search.
        if valid.iter().any(|v| v.cost <= options.good_enough_cost) {
            break;
        }
        let selection = Selection::new(T_BASE, m_points, pins.len());
        if selection.t_base + selection.num_t_vars() > Y_BASE {
            break; // encoding exceeds the reserved t block
        }
        let t_sets = Instant::now();
        let span_sets = buf.start();
        budget.fault_span(SpanPoint::PointSets)?;
        let sets = match feasible_point_sets(
            base,
            m,
            samples,
            &fprime_bits,
            root,
            pair.impl_index,
            &pins,
            &selection,
            Y_BASE,
            options.max_point_sets,
            options.max_decodes_per_prime,
        ) {
            Ok(s) => s,
            Err(e) => {
                trace!("  m={m_points} H(t) cut ({e}) after {:?}", t_sets.elapsed());
                return bdd_cut(e);
            }
        };
        buf.end_with(span_sets, "point_sets", "rectify", || {
            vec![
                ("m", ArgValue::U64(m_points as u64)),
                ("sets", ArgValue::U64(sets.len() as u64)),
            ]
        });
        trace!(
            "  m={m_points} H(t): {} point-sets in {:?}",
            sets.len(),
            t_sets.elapsed()
        );
        for point_set in sets {
            if let Some(reason) = budget.degrade_reason() {
                if valid.is_empty() {
                    return Ok(Attempt::BudgetOut(reason));
                }
                cut = Some(reason);
                break 'outer;
            }
            stats.point_sets_tried += 1;
            // Point-set boundary: the previous iteration's H(t) and choice
            // intermediates are garbage now. Give the manager a chance to
            // collect and re-sift against the handles still needed; both
            // are no-ops until their automatic thresholds trip.
            let boundary = m
                .maybe_gc(&search_roots)
                .and_then(|_| m.maybe_reorder(&search_roots));
            if let Err(e) = boundary {
                return bdd_cut(e);
            }
            trace!(
                "  m={m_points} point-set: {:?}",
                point_set.iter().map(|p| p.to_string()).collect::<Vec<_>>()
            );
            let mut cand_lists: Vec<Vec<RewireCandidate>> = Vec::with_capacity(point_set.len());
            for &p in &point_set {
                cand_lists.push(candidates_for_pin(
                    base,
                    &ctx,
                    p,
                    options.max_rewire_candidates,
                    timing,
                )?);
            }
            let span_choices = buf.start();
            budget.fault_span(SpanPoint::Choices)?;
            let choices = match find_choices(
                base,
                m,
                &g_impl,
                &impl_vals,
                &spec_vals,
                fprime,
                root,
                pair.impl_index,
                &point_set,
                &cand_lists,
                Y_BASE,
                C_BASE,
                &domain.z_vars(),
                options.max_choices,
            ) {
                Ok(c) => c,
                Err(e) => return bdd_cut(e),
            };
            buf.end_with(span_choices, "choices", "rectify", || {
                vec![
                    ("m", ArgValue::U64(m_points as u64)),
                    ("choices", ArgValue::U64(choices.len() as u64)),
                ]
            });

            // Rank choices: fewer non-trivial rewires first, then higher
            // total utility; under level-driven selection, earlier arrival
            // breaks remaining ties (the Table-3 lever).
            let mut ranked: Vec<Vec<usize>> = choices;
            ranked.sort_by(|a, b| {
                let nt = |ch: &Vec<usize>| ch.iter().filter(|&&j| j != 0).count();
                let util = |ch: &Vec<usize>| -> f64 {
                    ch.iter()
                        .enumerate()
                        .map(|(i, &j)| cand_lists[i][j].utility)
                        .sum()
                };
                let arr = |ch: &Vec<usize>| -> f64 {
                    ch.iter()
                        .enumerate()
                        .map(|(i, &j)| cand_lists[i][j].arrival)
                        .sum()
                };
                nt(a)
                    .cmp(&nt(b))
                    .then_with(|| {
                        util(b)
                            .partial_cmp(&util(a))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .then_with(|| {
                        arr(a)
                            .partial_cmp(&arr(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
            });

            // Validate every decoded choice of this point-set.
            for choice in ranked {
                stats.choices_tried += 1;
                let mut rewires: Vec<CandidateRewire> = Vec::new();
                for (i, (&pin, &j)) in point_set.iter().zip(choice.iter()).enumerate() {
                    if j == 0 {
                        continue; // trivial: the point keeps its driver
                    }
                    rewires.push(CandidateRewire {
                        pin,
                        candidate: cand_lists[i][j].clone(),
                    });
                }
                if rewires.is_empty() {
                    continue; // all-trivial: no actual change
                }
                if validations_left == 0 {
                    break 'outer;
                }
                if let Some(reason) = budget.degrade_reason() {
                    if valid.is_empty() {
                        return Ok(Attempt::BudgetOut(reason));
                    }
                    cut = Some(reason);
                    break 'outer;
                }
                // Bit-parallel simulation screen (sound: any banked
                // mismatch proves the candidate invalid) — provably dead
                // candidates never consume a validation slot; every passed
                // candidate goes straight to SAT validation.
                match pf_bank.screen(base, spec, &rewires, pair)? {
                    prefilter::Screen::Screened => {
                        stats.prefilter_screened += 1;
                        continue;
                    }
                    prefilter::Screen::Pass => stats.prefilter_passed += 1,
                }
                validations_left -= 1;
                stats.validations += 1;
                let t_val = Instant::now();
                let span_val = buf.start();
                budget.fault_span(SpanPoint::Validate)?;
                let (validation, val_sat) = validate_rewires_with_stats(
                    base,
                    spec,
                    corr,
                    &rewires,
                    pair,
                    failing,
                    sample_bank,
                    &no_clones,
                    options.validation_budget,
                    Some(budget),
                )?;
                stats.sat += val_sat;
                buf.end_with(span_val, "validate", "rectify", || {
                    vec![
                        ("rewires", ArgValue::U64(rewires.len() as u64)),
                        ("sat_conflicts", ArgValue::U64(val_sat.conflicts)),
                    ]
                });
                if shard.is_enabled() {
                    shard.observe(
                        Histogram::ValidateMicros,
                        t_val.elapsed().as_micros() as u64,
                    );
                    shard.observe(Histogram::SatConflictsPerCall, val_sat.conflicts);
                }
                match validation {
                    Validation::Valid { fixed } => {
                        trace!(
                            "  m={m_points} validation ok in {:?} ({} rewires, cost {})",
                            t_val.elapsed(),
                            rewires.len(),
                            clone_cost(&rewires)
                        );
                        let cost = clone_cost(&rewires);
                        let arrival = rewires
                            .iter()
                            .map(|r| r.candidate.arrival)
                            .fold(0.0, f64::max);
                        valid.push(ValidOption {
                            cost,
                            rewires_len: rewires.len(),
                            arrival,
                            fixed,
                            rewires,
                        });
                        if cost <= EARLY_COMMIT_COST {
                            break 'outer; // (near-)pure reuse: unbeatable
                        }
                    }
                    Validation::CounterExample(x) => {
                        trace!("  m={m_points} false positive in {:?}", t_val.elapsed());
                        if first_counterexample.is_none() {
                            first_counterexample = Some(x);
                        }
                        // The domain endorsed a wrong choice; its siblings
                        // were endorsed by the same deficient domain, so
                        // refine immediately unless a valid option is
                        // already in hand.
                        if valid.is_empty() {
                            break 'outer;
                        }
                    }
                    Validation::Damaged | Validation::Infeasible => {
                        trace!("  m={m_points} pruned in {:?}", t_val.elapsed());
                    }
                    Validation::Unknown => {
                        // SAT ran out of resources before reaching a verdict.
                        unknowns += 1;
                        trace!("  m={m_points} sat-unknown in {:?}", t_val.elapsed());
                    }
                }
            }
        }
    }
    // Return the best validated option: smallest clone cost, then fewest
    // rewires, then most outputs fixed (§5.2's favoring).
    if !valid.is_empty() {
        valid.sort_by(|a, b| {
            a.cost
                .cmp(&b.cost)
                .then_with(|| a.rewires_len.cmp(&b.rewires_len))
                .then_with(|| b.fixed.len().cmp(&a.fixed.len()))
                // Level-driven selection (§6): among otherwise equal
                // options, prefer the one fed by earlier-arriving nets.
                .then_with(|| {
                    a.arrival
                        .partial_cmp(&b.arrival)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
        });
        if let Some(best) = valid.into_iter().next() {
            trace!(
                "  found: cost {} with {} rewires at {:?}",
                best.cost,
                best.rewires.len(),
                best.rewires
                    .iter()
                    .map(|r| r.pin.to_string())
                    .collect::<Vec<_>>()
            );
            return Ok(Attempt::Found {
                rewires: best.rewires,
                cut,
            });
        }
    }
    Ok(match first_counterexample {
        Some(x) => Attempt::Refine(x),
        None if unknowns > 0 => Attempt::SatExhausted,
        None => Attempt::Exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_domain::check_output_pair;
    use eco_netlist::GateKind;
    use std::sync::{Arc, Mutex};

    /// impl: y = a & b (wrong), d = a & b reused elsewhere must survive;
    /// spec: y = a | b, d unchanged.
    fn and_or_case() -> (Circuit, Circuit) {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let d = c.add_gate(GateKind::Not, &[g]).unwrap();
        c.add_output("y", g);
        c.add_output("d", d);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sg = s.add_gate(GateKind::Or, &[sa, sb]).unwrap();
        let sand = s.add_gate(GateKind::And, &[sa, sb]).unwrap();
        let sd = s.add_gate(GateKind::Not, &[sand]).unwrap();
        s.add_output("y", sg);
        s.add_output("d", sd);
        (c, s)
    }

    fn check_equiv(c: &Circuit, s: &Circuit) {
        let corr = Correspondence::build(c, s).unwrap();
        for pair in &corr.outputs {
            assert_eq!(
                check_output_pair(c, s, pair, None, None).unwrap(),
                Equivalence::Equivalent,
                "output {} must be rectified",
                pair.name
            );
        }
    }

    #[test]
    fn rectifies_and_to_or_preserving_sibling() {
        let (mut c, s) = and_or_case();
        let options = EcoOptions::with_seed(3);
        let (patch, stats) = rewire_rectify(&mut c, &s, &options, None).unwrap();
        check_equiv(&c, &s);
        assert_eq!(stats.outputs_failing, 1, "only y fails");
        assert!(!patch.rewires().is_empty());
        // The protected output d (= nand) must still be driven by the
        // original AND cone: rewiring the output pin of y, not the AND's
        // internals, is the only non-damaging single rewire here.
        c.check_well_formed().unwrap();
    }

    #[test]
    fn equivalent_designs_need_no_patch() {
        let (c0, _) = and_or_case();
        let mut c = c0.clone();
        let s = c0;
        let options = EcoOptions::with_seed(1);
        let (patch, stats) = rewire_rectify(&mut c, &s, &options, None).unwrap();
        assert_eq!(stats.outputs_failing, 0);
        assert!(patch.rewires().is_empty());
        assert_eq!(patch.stats(&c), crate::PatchStats::default());
    }

    /// The Figure-1 scenario reduced: an existing net (NOT s1) in the
    /// implementation realizes the revised behaviour — the engine should
    /// rewire to it instead of cloning spec logic.
    #[test]
    fn reuses_existing_logic_when_available() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s0 = c.add_input("s0");
        let s1 = c.add_input("s1");
        let ns1 = c.add_gate(GateKind::Not, &[s1]).unwrap();
        let t1 = c.add_gate(GateKind::And, &[a, s0]).unwrap();
        let t2 = c.add_gate(GateKind::And, &[b, s1]).unwrap();
        let y = c.add_gate(GateKind::Or, &[t1, t2]).unwrap();
        c.add_output("y", y);
        c.add_output("aux", ns1);

        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let _ss0 = s.add_input("s0");
        let ss1 = s.add_input("s1");
        let sns1 = s.add_gate(GateKind::Not, &[ss1]).unwrap();
        let st1 = s.add_gate(GateKind::And, &[sa, sns1]).unwrap();
        let st2 = s.add_gate(GateKind::And, &[sb, ss1]).unwrap();
        let sy = s.add_gate(GateKind::Or, &[st1, st2]).unwrap();
        s.add_output("y", sy);
        s.add_output("aux", sns1);

        let options = EcoOptions::with_seed(11);
        let (patch, stats) = rewire_rectify(&mut c, &s, &options, None).unwrap();
        check_equiv(&c, &s);
        let pstats = patch.stats(&c);
        assert_eq!(
            pstats.gates, 0,
            "existing NOT gate should be reused, not cloned: {pstats:?} ({stats:?})"
        );
    }

    #[test]
    fn multi_output_design_fully_rectified() {
        // Three outputs, two of them revised.
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Xor, &[g1, d]).unwrap();
        let g3 = c.add_gate(GateKind::Or, &[a, d]).unwrap();
        c.add_output("u", g1);
        c.add_output("v", g2);
        c.add_output("w", g3);

        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sd = s.add_input("d");
        let h1 = s.add_gate(GateKind::Nand, &[sa, sb]).unwrap(); // changed
        let h2 = s.add_gate(GateKind::Xor, &[h1, sd]).unwrap(); // changed: ¬(a∧b)⊕d
        let h3 = s.add_gate(GateKind::Or, &[sa, sd]).unwrap(); // same
        s.add_output("u", h1);
        s.add_output("v", h2);
        s.add_output("w", h3);

        let options = EcoOptions::with_seed(5);
        let (_patch, stats) = rewire_rectify(&mut c, &s, &options, None).unwrap();
        check_equiv(&c, &s);
        assert_eq!(stats.outputs_failing, 2);
        c.check_well_formed().unwrap();
    }

    #[test]
    fn per_output_stats_and_progress_events_are_reported() {
        let (mut c, s) = and_or_case();
        let options = EcoOptions::builder().seed(3).jobs(1).build();
        let events: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = Arc::clone(&events);
        let observer: ProgressCallback = Arc::new(move |e: &ProgressEvent| {
            let tag = match e {
                ProgressEvent::RunStarted { .. } => "start",
                ProgressEvent::OutputStarted { .. } => "out-start",
                ProgressEvent::OutputSearched { .. } => "out-search",
                ProgressEvent::OutputRectified { .. } => "out-done",
                ProgressEvent::RunFinished { .. } => "finish",
            };
            sink.lock().unwrap().push(tag.to_string());
        });
        let budget = Budget::unlimited();
        let pool = WorkerPool::new(1);
        let telemetry = Telemetry::enabled();
        let (_patch, stats, trace, _committed) = rewire_rectify_with(
            &mut c,
            &s,
            &options,
            &budget,
            Some(&observer),
            &pool,
            &telemetry,
            None,
            None,
        )
        .unwrap();
        // The run span closes the coordinator lane; the per-output search
        // span sits on lane 1. Counters made it into both the stats and the
        // metrics registry.
        assert!(trace.iter().any(|sp| sp.name == "run" && sp.lane == 0));
        assert!(trace.iter().any(|sp| sp.name == "search" && sp.lane == 1));
        assert!(stats.validations > 0);
        assert!(stats.sat_propagations > 0, "{stats:?}");
        assert!(stats.bdd.total_misses() > 0, "{stats:?}");
        assert!(stats.bdd_peak_nodes >= 2);
        let snapshot = telemetry.snapshot();
        assert_eq!(
            snapshot.counter(Counter::RectifyValidations),
            stats.validations as u64
        );
        assert_eq!(snapshot.counter(Counter::SatConflicts), stats.sat_conflicts);
        assert_eq!(
            snapshot.gauge(Gauge::BddPeakNodes),
            stats.bdd_peak_nodes as u64
        );
        assert_eq!(stats.per_output.len(), 1);
        assert_eq!(stats.per_output[0].output, "y");
        assert_ne!(stats.per_output[0].action, OutputAction::AlreadyEquivalent);
        assert_eq!(stats.normalized().per_output[0].search, Duration::ZERO);
        let events = events.lock().unwrap();
        assert_eq!(events.first().map(String::as_str), Some("start"));
        assert_eq!(events.last().map(String::as_str), Some("finish"));
        assert_eq!(
            events.iter().filter(|t| t.as_str() == "out-done").count(),
            1
        );
    }

    // --- resource-governance and fault-injection paths ---

    use crate::fault::FaultPolicy;

    fn rectify_with_faults(faults: FaultPolicy) -> (Circuit, Circuit, RectifyStats) {
        let (mut c, s) = and_or_case();
        let budget = Budget::unlimited().with_faults(faults);
        let options = EcoOptions::with_seed(3);
        let (_patch, stats) = rewire_rectify(&mut c, &s, &options, Some(&budget)).unwrap();
        (c, s, stats)
    }

    #[test]
    fn injected_bdd_node_limit_falls_back_to_output_rewire() {
        let (c, s, stats) = rectify_with_faults(FaultPolicy {
            bdd_node_limit_from: Some(1),
            ..FaultPolicy::default()
        });
        // Every BDD attempt hits the forced node limit, the pin cap shrinks
        // to its floor, and the output takes the guaranteed fallback.
        assert_eq!(stats.degradations.len(), 1);
        let d = &stats.degradations[0];
        assert_eq!(d.output, "y");
        assert_eq!(d.reason, DegradeReason::BddNodeLimit);
        assert!(matches!(d.action, DegradeAction::OutputRewireFallback));
        assert!(stats.fallbacks >= 1);
        check_equiv(&c, &s);
        c.check_well_formed().unwrap();
    }

    #[test]
    fn injected_sat_exhaustion_falls_back_to_output_rewire() {
        let (c, s, stats) = rectify_with_faults(FaultPolicy {
            sat_exhaust_from: Some(1),
            ..FaultPolicy::default()
        });
        // Every candidate validation comes back Unknown, so the search ends
        // with nothing provable and degrades to the fallback.
        assert_eq!(stats.degradations.len(), 1);
        let d = &stats.degradations[0];
        assert_eq!(d.output, "y");
        assert_eq!(d.reason, DegradeReason::SatBudgetExhausted);
        assert!(matches!(d.action, DegradeAction::OutputRewireFallback));
        check_equiv(&c, &s);
        c.check_well_formed().unwrap();
    }

    #[test]
    fn injected_panic_is_isolated_and_falls_back() {
        let (c, s, stats) = rectify_with_faults(FaultPolicy {
            panic_at: Some(1),
            ..FaultPolicy::default()
        });
        assert_eq!(stats.degradations.len(), 1);
        let d = &stats.degradations[0];
        assert_eq!(d.output, "y");
        let DegradeReason::SearchPanicked(msg) = &d.reason else {
            panic!("expected SearchPanicked, got {:?}", d.reason);
        };
        assert!(msg.contains("synthetic fault"), "got {msg:?}");
        assert!(matches!(d.action, DegradeAction::OutputRewireFallback));
        // The search is pure, so a panic inside it cannot corrupt the
        // circuit; the merge phase applies the fallback.
        check_equiv(&c, &s);
        c.check_well_formed().unwrap();
    }

    #[test]
    fn expired_deadline_degrades_every_failing_output() {
        let (mut c, s) = and_or_case();
        let budget = Budget::with_deadline(std::time::Duration::ZERO);
        let options = EcoOptions::with_seed(3);
        let (_patch, stats) = rewire_rectify(&mut c, &s, &options, Some(&budget)).unwrap();
        assert_eq!(stats.degradations.len(), stats.outputs_failing);
        for d in &stats.degradations {
            assert_eq!(d.reason, DegradeReason::DeadlineExceeded);
            assert!(matches!(d.action, DegradeAction::OutputRewireFallback));
        }
        check_equiv(&c, &s);
        c.check_well_formed().unwrap();
    }

    #[test]
    fn cancelled_token_degrades_instead_of_aborting() {
        let (mut c, s) = and_or_case();
        let token = crate::CancelToken::new();
        token.cancel();
        let budget = Budget::unlimited().with_cancel(&token);
        let options = EcoOptions::with_seed(3);
        let (_patch, stats) = rewire_rectify(&mut c, &s, &options, Some(&budget)).unwrap();
        assert!(!stats.degradations.is_empty());
        for d in &stats.degradations {
            assert_eq!(d.reason, DegradeReason::Cancelled);
        }
        check_equiv(&c, &s);
    }

    #[test]
    fn clean_run_reports_no_degradations() {
        let (mut c, s) = and_or_case();
        let options = EcoOptions::with_seed(3);
        let (_patch, stats) = rewire_rectify(&mut c, &s, &options, None).unwrap();
        assert!(stats.degradations.is_empty());
    }

    #[test]
    fn jobs_do_not_change_the_patch() {
        // The multi-output case exercises search + merge; the patch and the
        // normalized stats must be identical for every worker count.
        let build = |jobs: usize| {
            let mut c = Circuit::new("impl");
            let a = c.add_input("a");
            let b = c.add_input("b");
            let d = c.add_input("d");
            let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
            let g2 = c.add_gate(GateKind::Xor, &[g1, d]).unwrap();
            c.add_output("u", g1);
            c.add_output("v", g2);
            let mut s = Circuit::new("spec");
            let sa = s.add_input("a");
            let sb = s.add_input("b");
            let sd = s.add_input("d");
            let h1 = s.add_gate(GateKind::Nand, &[sa, sb]).unwrap();
            let h2 = s.add_gate(GateKind::Xor, &[h1, sd]).unwrap();
            s.add_output("u", h1);
            s.add_output("v", h2);
            let options = EcoOptions::builder().seed(7).jobs(jobs).build();
            let (patch, stats) = rewire_rectify(&mut c, &s, &options, None).unwrap();
            (format!("{:?}", patch.rewires()), stats.normalized())
        };
        let (p1, s1) = build(1);
        let (p4, s4) = build(4);
        assert_eq!(p1, p4);
        assert_eq!(s1, s4);
    }
}
