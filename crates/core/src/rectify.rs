//! The overall rectification flow `RewireRectification` (paper §5.2).
//!
//! For every non-equivalent output pair, in increasing order of logical
//! complexity:
//!
//! 1. select error samples and build the sampling domain (§5.1),
//! 2. enumerate feasible rectification point-sets via `H(t)` (§4.2),
//! 3. assign candidate rewiring nets per point (§4.3),
//! 4. compute valid rewiring choices via `Ξ(c)` (§4.4),
//! 5. validate choices with resource-constrained SAT; counterexamples
//!    refine the domain, damaged outputs prune the choice, and the choice
//!    correcting the most outputs is favored.
//!
//! The output pin is itself a rectification point, so rewiring the output
//! to a cloned specification cone is an always-applicable fallback — the
//! flow never fails, it only degrades to a bigger patch.

use std::collections::{HashMap, HashSet};

use eco_bdd::{BddError, BddManager};
use eco_netlist::{topo, Circuit, Pin};
use eco_timing::{DelayModel, TimingReport};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::choices::find_choices;
use crate::correspond::{Correspondence, OutputPair};
use crate::error_domain::{check_output_pair, classify_outputs, collect_samples, Equivalence};
use crate::options::EcoOptions;
use crate::patch::Patch;
use crate::points::{candidate_pins, feasible_point_sets, Selection};
use crate::rewire_nets::{candidates_for_pin, RewireCandidate, RewireNetContext};
use crate::sampling::{eval_all_bdd, SamplingDomain};
use crate::validate::{apply_rewires, validate_rewires, CandidateRewire, Validation};
use crate::EcoError;

/// BDD variable layout: choice block, selection block, rectification
/// inputs, sampling block — the `c < t < y < z` order of DESIGN.md.
const C_BASE: u32 = 0;
const T_BASE: u32 = 64;
const Y_BASE: u32 = 128;
const Z_BASE: u32 = 140;

/// Counters describing a rectification run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RectifyStats {
    /// Matched output pairs.
    pub outputs_total: usize,
    /// Pairs initially non-equivalent.
    pub outputs_failing: usize,
    /// Outputs rectified through non-trivial rewiring search.
    pub rewire_rectified: usize,
    /// Outputs that needed the output-rewire fallback.
    pub fallbacks: usize,
    /// Sampling-domain refinements (false positives encountered) — the
    /// metric behind ablations A and B.
    pub refinements: usize,
    /// SAT validation calls.
    pub validations: usize,
    /// Feasible point-sets examined.
    pub point_sets_tried: usize,
    /// Rewiring choices examined.
    pub choices_tried: usize,
}

/// Emits a trace line when `SYSECO_TRACE` is set in the environment.
macro_rules! trace {
    ($($arg:tt)*) => {
        if std::env::var_os("SYSECO_TRACE").is_some() {
            eprintln!("[syseco] {}", format!($($arg)*));
        }
    };
}

enum Attempt {
    /// Committed a rewire; these output indices are now equivalent.
    Committed(Vec<u32>),
    /// The domain produced a false positive; refine with this assignment.
    Refine(Vec<bool>),
    /// BDD budget exceeded; retry with fewer candidate pins.
    NodeLimit,
    /// No valid choice found in this domain.
    Exhausted,
}

/// Runs the full rectification flow, mutating `implementation` in place.
///
/// Returns the accumulated [`Patch`] and run statistics. The caller (the
/// [`Syseco`](crate::Syseco) engine) is responsible for pre-normalizing
/// ports and for the post-processing patch sweep.
///
/// # Errors
///
/// [`EcoError`] on malformed inputs; resource exhaustion inside the search
/// degrades to the fallback instead of erroring.
pub fn rewire_rectification(
    implementation: &mut Circuit,
    spec: &Circuit,
    options: &EcoOptions,
) -> Result<(Patch, RectifyStats), EcoError> {
    let corr = Correspondence::build(implementation, spec)?;
    let mut rng = SmallRng::seed_from_u64(options.seed);
    let mut patch = Patch::new(implementation.num_nodes());
    let mut stats = RectifyStats {
        outputs_total: corr.outputs.len(),
        ..Default::default()
    };
    let timing_model = DelayModel::default();
    let timing_period = if options.level_driven {
        let probe = TimingReport::analyze(implementation, &timing_model, 0.0)?;
        Some(probe.critical_delay() * 1.1)
    } else {
        None
    };

    // ------------------------------------------------------------------
    // Detect failing outputs: one miter encoding, per-pair assumptions.
    // ------------------------------------------------------------------
    let mut failing: HashSet<u32> = HashSet::new();
    let mut seeds: HashMap<u32, Vec<bool>> = HashMap::new();
    let verdicts = classify_outputs(
        implementation,
        spec,
        &corr,
        Some(options.validation_budget.saturating_mul(10)),
    )?;
    for (pair, verdict) in corr.outputs.iter().zip(verdicts) {
        match verdict {
            Equivalence::Equivalent => {}
            Equivalence::Counterexample(x) => {
                failing.insert(pair.impl_index);
                seeds.insert(pair.impl_index, x);
            }
            Equivalence::Unknown => {
                // Conservatively treat as failing; sample collection will
                // show whether anything is actually wrong.
                failing.insert(pair.impl_index);
            }
        }
    }
    stats.outputs_failing = failing.len();
    let mut sample_bank: Vec<Vec<bool>> = seeds.values().cloned().collect();
    // Spec logic already instantiated by earlier commits, shared so
    // overlapping revisions are cloned once (one patch, many sinks).
    let mut shared_clones: HashMap<eco_netlist::NetId, eco_netlist::NetId> = HashMap::new();

    // Order failing outputs by logical complexity (cone size).
    let mut order: Vec<&OutputPair> = corr
        .outputs
        .iter()
        .filter(|p| failing.contains(&p.impl_index))
        .collect();
    order.sort_by_key(|p| {
        topo::cone_size(spec, spec.outputs()[p.spec_index as usize].net())
            + topo::cone_size(
                implementation,
                implementation.outputs()[p.impl_index as usize].net(),
            )
    });
    let order: Vec<OutputPair> = order.into_iter().cloned().collect();

    // ------------------------------------------------------------------
    // Per-output rectification.
    // ------------------------------------------------------------------
    for pair in &order {
        if !failing.contains(&pair.impl_index) {
            continue; // fixed as a side effect of an earlier rewire
        }
        // Re-confirm: the circuit has changed since detection.
        let seed = match check_output_pair(
            implementation,
            spec,
            pair,
            Some(options.validation_budget.saturating_mul(10)),
        )? {
            Equivalence::Equivalent => {
                failing.remove(&pair.impl_index);
                continue;
            }
            Equivalence::Counterexample(x) => Some(x),
            Equivalence::Unknown => seeds.get(&pair.impl_index).cloned(),
        };
        trace!(
            "output {} ({} remaining): starting rectification",
            pair.name,
            failing.len()
        );
        let t_out = std::time::Instant::now();
        // Refresh arrival times: earlier commits added patch logic.
        let timing = match timing_period {
            Some(period) => Some(TimingReport::analyze(
                implementation,
                &timing_model,
                period,
            )?),
            None => None,
        };
        let fixed = rectify_one_output(
            implementation,
            spec,
            &corr,
            pair,
            seed.as_deref(),
            &failing,
            &mut sample_bank,
            &mut shared_clones,
            options,
            timing.as_ref(),
            &mut patch,
            &mut stats,
            &mut rng,
        )?;
        trace!(
            "output {}: done in {:?} (stats {:?})",
            pair.name,
            t_out.elapsed(),
            stats
        );
        for f in fixed {
            failing.remove(&f);
        }
    }
    implementation.sweep();
    Ok((patch, stats))
}

/// Rectifies one output pair; returns the output indices made equivalent.
#[allow(clippy::too_many_arguments)]
fn rectify_one_output(
    implementation: &mut Circuit,
    spec: &Circuit,
    corr: &Correspondence,
    pair: &OutputPair,
    seed: Option<&[bool]>,
    failing: &HashSet<u32>,
    sample_bank: &mut Vec<Vec<bool>>,
    shared_clones: &mut HashMap<eco_netlist::NetId, eco_netlist::NetId>,
    options: &EcoOptions,
    timing: Option<&TimingReport>,
    patch: &mut Patch,
    stats: &mut RectifyStats,
    rng: &mut SmallRng,
) -> Result<Vec<u32>, EcoError> {
    let mut samples = collect_samples(
        implementation,
        spec,
        corr,
        pair,
        options.num_samples,
        options.sample_policy,
        seed,
        rng,
    )?;
    if samples.is_empty() {
        // No error exists: the pair is equivalent after all.
        return Ok(vec![pair.impl_index]);
    }
    for s in &samples {
        if !sample_bank.contains(s) {
            sample_bank.push(s.clone());
        }
    }

    let mut pin_cap = options.max_candidate_pins.max(2);
    let mut refinements_left = options.max_refinements;
    loop {
        match attempt_with_domain(
            implementation,
            spec,
            corr,
            pair,
            &samples,
            pin_cap,
            failing,
            sample_bank,
            shared_clones,
            options,
            timing,
            patch,
            stats,
        )? {
            Attempt::Committed(fixed) => {
                stats.rewire_rectified += 1;
                return Ok(fixed);
            }
            Attempt::Refine(x) => {
                if refinements_left == 0 {
                    break;
                }
                refinements_left -= 1;
                stats.refinements += 1;
                if !sample_bank.contains(&x) {
                    sample_bank.push(x.clone());
                }
                samples.push(x);
            }
            Attempt::NodeLimit => {
                if pin_cap <= 4 {
                    break;
                }
                pin_cap /= 2;
            }
            Attempt::Exhausted => break,
        }
    }

    // Fallback: the output pin is a rectification point whose rectification
    // function is f' itself, realized by the corresponding output of C'
    // (§3.3 completeness argument).
    let spec_root = spec.outputs()[pair.spec_index as usize].net();
    let fallback = vec![CandidateRewire {
        pin: Pin::output(pair.impl_index),
        candidate: RewireCandidate {
            net: spec_root,
            from_spec: true,
            utility: 1.0,
            arrival: 0.0,
        },
    }];
    let (ops, cloned) = apply_rewires(implementation, spec, &fallback, shared_clones)?;
    patch.record_cloned(cloned);
    for op in ops {
        patch.record_rewire(op);
    }
    stats.fallbacks += 1;
    Ok(vec![pair.impl_index])
}

/// One search attempt over a fixed sampling domain.
#[allow(clippy::too_many_arguments)]
fn attempt_with_domain(
    implementation: &mut Circuit,
    spec: &Circuit,
    corr: &Correspondence,
    pair: &OutputPair,
    samples: &[Vec<bool>],
    pin_cap: usize,
    failing: &HashSet<u32>,
    sample_bank: &[Vec<bool>],
    shared_clones: &mut HashMap<eco_netlist::NetId, eco_netlist::NetId>,
    options: &EcoOptions,
    timing: Option<&TimingReport>,
    patch: &mut Patch,
    stats: &mut RectifyStats,
) -> Result<Attempt, EcoError> {
    let root = implementation.outputs()[pair.impl_index as usize].net();
    let spec_root = spec.outputs()[pair.spec_index as usize].net();

    let mut m = BddManager::with_node_limit(options.bdd_node_limit);
    let domain = SamplingDomain::new(samples.to_vec(), Z_BASE);
    let budget = |r: Result<_, BddError>| match r {
        Ok(v) => Ok(Some(v)),
        Err(BddError::NodeLimit { .. }) => Ok(None),
        Err(e) => Err(EcoError::from(e)),
    };

    let Some(g_impl) = budget(domain.input_functions(&mut m, implementation.num_inputs()))?
    else {
        return Ok(Attempt::NodeLimit);
    };
    let mut g_spec = vec![m.zero(); spec.num_inputs()];
    for (pos, sp) in corr.spec_input_pos.iter().enumerate() {
        if let Some(sp) = sp {
            g_spec[*sp] = g_impl[pos];
        }
    }
    let Some(impl_vals) = budget(eval_all_bdd(implementation, &mut m, &g_impl))? else {
        return Ok(Attempt::NodeLimit);
    };
    let Some(spec_vals) = budget(eval_all_bdd(spec, &mut m, &g_spec))? else {
        return Ok(Attempt::NodeLimit);
    };
    let fprime = spec_vals[spec_root.index()];

    let pins = candidate_pins(implementation, root, pair.impl_index, pin_cap);
    let ctx = RewireNetContext::build(implementation, spec, corr, spec_root, samples)?;

    let mut first_counterexample: Option<Vec<bool>> = None;
    // All validated candidates across every m, scored by patch cost: cloned
    // spec gates (estimated by cone size), then fewer rewires, then more
    // outputs fixed. A near-zero-cost candidate (pure or almost pure reuse
    // of existing implementation logic) commits immediately; otherwise
    // larger m may still find a cheaper multi-point rewiring (the Figure-1
    // effect), so the search continues before committing the global best.
    struct ValidOption {
        cost: usize,
        rewires_len: usize,
        arrival: f64,
        fixed: Vec<u32>,
        rewires: Vec<CandidateRewire>,
    }
    const EARLY_COMMIT_COST: usize = 1;
    let clone_cost = |rewires: &[CandidateRewire]| -> usize {
        rewires
            .iter()
            .filter(|r| r.candidate.from_spec)
            .map(|r| {
                if shared_clones.contains_key(&r.candidate.net) {
                    0 // already instantiated by an earlier commit
                } else {
                    topo::cone_size(spec, r.candidate.net).max(1)
                }
            })
            .sum()
    };
    let mut valid: Vec<ValidOption> = Vec::new();
    let mut validations_left = options.max_validations_per_output;
    'outer: for m_points in 1..=options.max_points.clamp(1, 8) {
        // Escalating m is for finding *cheaper* multi-point rewirings; once
        // a good-enough option exists, stop growing the search.
        if valid
            .iter()
            .any(|v| v.cost <= options.good_enough_cost)
        {
            break;
        }
        let selection = Selection::new(T_BASE, m_points, pins.len());
        if selection.t_base + selection.num_t_vars() > Y_BASE {
            break; // encoding exceeds the reserved t block
        }
        let t_sets = std::time::Instant::now();
        let sets = match feasible_point_sets(
            implementation,
            &mut m,
            &g_impl,
            fprime,
            root,
            pair.impl_index,
            &pins,
            &selection,
            Y_BASE,
            options.max_point_sets,
            options.max_decodes_per_prime,
        ) {
            Ok(s) => s,
            Err(BddError::NodeLimit { .. }) => {
                trace!("  m={m_points} H(t) node limit after {:?}", t_sets.elapsed());
                return Ok(Attempt::NodeLimit);
            }
            Err(e) => return Err(e.into()),
        };
        trace!(
            "  m={m_points} H(t): {} point-sets in {:?}",
            sets.len(),
            t_sets.elapsed()
        );
        for point_set in sets {
            stats.point_sets_tried += 1;
            trace!(
                "  m={m_points} point-set: {:?}",
                point_set.iter().map(|p| p.to_string()).collect::<Vec<_>>()
            );
            let mut cand_lists: Vec<Vec<RewireCandidate>> =
                Vec::with_capacity(point_set.len());
            for &p in &point_set {
                cand_lists.push(candidates_for_pin(
                    implementation,
                    &ctx,
                    p,
                    options.max_rewire_candidates,
                    timing,
                )?);
            }
            let choices = match find_choices(
                implementation,
                &mut m,
                &g_impl,
                &impl_vals,
                &spec_vals,
                fprime,
                root,
                pair.impl_index,
                &point_set,
                &cand_lists,
                Y_BASE,
                C_BASE,
                &domain.z_vars(),
                options.max_choices,
            ) {
                Ok(c) => c,
                Err(BddError::NodeLimit { .. }) => return Ok(Attempt::NodeLimit),
                Err(e) => return Err(e.into()),
            };

            // Rank choices: fewer non-trivial rewires first, then higher
            // total utility; under level-driven selection, earlier arrival
            // breaks remaining ties (the Table-3 lever).
            let mut ranked: Vec<Vec<usize>> = choices;
            ranked.sort_by(|a, b| {
                let nt = |ch: &Vec<usize>| ch.iter().filter(|&&j| j != 0).count();
                let util = |ch: &Vec<usize>| -> f64 {
                    ch.iter()
                        .enumerate()
                        .map(|(i, &j)| cand_lists[i][j].utility)
                        .sum()
                };
                let arr = |ch: &Vec<usize>| -> f64 {
                    ch.iter()
                        .enumerate()
                        .map(|(i, &j)| cand_lists[i][j].arrival)
                        .sum()
                };
                nt(a)
                    .cmp(&nt(b))
                    .then_with(|| {
                        util(b)
                            .partial_cmp(&util(a))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .then_with(|| {
                        arr(a)
                            .partial_cmp(&arr(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
            });

            // Validate every decoded choice of this point-set.
            for choice in ranked {
                stats.choices_tried += 1;
                let mut rewires: Vec<CandidateRewire> = Vec::new();
                for (i, (&pin, &j)) in point_set.iter().zip(choice.iter()).enumerate() {
                    if j == 0 {
                        continue; // trivial: the point keeps its driver
                    }
                    rewires.push(CandidateRewire {
                        pin,
                        candidate: cand_lists[i][j].clone(),
                    });
                }
                if rewires.is_empty() {
                    continue; // all-trivial: no actual change
                }
                if validations_left == 0 {
                    break 'outer;
                }
                validations_left -= 1;
                stats.validations += 1;
                let t_val = std::time::Instant::now();
                match validate_rewires(
                    implementation,
                    spec,
                    corr,
                    &rewires,
                    pair,
                    failing,
                    sample_bank,
                    shared_clones,
                    options.validation_budget,
                )? {
                    Validation::Valid { fixed } => {
                        trace!(
                            "  m={m_points} validation ok in {:?} ({} rewires, cost {})",
                            t_val.elapsed(),
                            rewires.len(),
                            clone_cost(&rewires)
                        );
                        let cost = clone_cost(&rewires);
                        let arrival = rewires
                            .iter()
                            .map(|r| r.candidate.arrival)
                            .fold(0.0, f64::max);
                        valid.push(ValidOption {
                            cost,
                            rewires_len: rewires.len(),
                            arrival,
                            fixed,
                            rewires,
                        });
                        if cost <= EARLY_COMMIT_COST {
                            break 'outer; // (near-)pure reuse: unbeatable
                        }
                    }
                    Validation::CounterExample(x) => {
                        trace!("  m={m_points} false positive in {:?}", t_val.elapsed());
                        if first_counterexample.is_none() {
                            first_counterexample = Some(x);
                        }
                        // The domain endorsed a wrong choice; its siblings
                        // were endorsed by the same deficient domain, so
                        // refine immediately unless a valid option is
                        // already in hand.
                        if valid.is_empty() {
                            break 'outer;
                        }
                    }
                    Validation::Damaged | Validation::Unknown => {
                        trace!("  m={m_points} pruned in {:?}", t_val.elapsed());
                    }
                }
            }
        }
    }
    // Commit the best validated option: smallest clone cost, then fewest
    // rewires, then most outputs fixed (§5.2's favoring).
    if !valid.is_empty() {
        valid.sort_by(|a, b| {
            a.cost
                .cmp(&b.cost)
                .then_with(|| a.rewires_len.cmp(&b.rewires_len))
                .then_with(|| b.fixed.len().cmp(&a.fixed.len()))
                // Level-driven selection (§6): among otherwise equal
                // options, prefer the one fed by earlier-arriving nets.
                .then_with(|| {
                    a.arrival
                        .partial_cmp(&b.arrival)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
        });
        let best = valid.into_iter().next().expect("nonempty");
        trace!(
            "  commit: cost {} with {} rewires at {:?}",
            best.cost,
            best.rewires.len(),
            best.rewires.iter().map(|r| r.pin.to_string()).collect::<Vec<_>>()
        );
        let (ops, cloned) = apply_rewires(implementation, spec, &best.rewires, shared_clones)
            .map_err(EcoError::from)?;
        patch.record_cloned(cloned);
        for op in ops {
            patch.record_rewire(op);
        }
        let mut all_fixed = vec![pair.impl_index];
        all_fixed.extend(best.fixed);
        return Ok(Attempt::Committed(all_fixed));
    }
    Ok(match first_counterexample {
        Some(x) => Attempt::Refine(x),
        None => Attempt::Exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::GateKind;

    /// impl: y = a & b (wrong), d = a & b reused elsewhere must survive;
    /// spec: y = a | b, d unchanged.
    fn and_or_case() -> (Circuit, Circuit) {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let d = c.add_gate(GateKind::Not, &[g]).unwrap();
        c.add_output("y", g);
        c.add_output("d", d);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sg = s.add_gate(GateKind::Or, &[sa, sb]).unwrap();
        let sand = s.add_gate(GateKind::And, &[sa, sb]).unwrap();
        let sd = s.add_gate(GateKind::Not, &[sand]).unwrap();
        s.add_output("y", sg);
        s.add_output("d", sd);
        (c, s)
    }

    fn check_equiv(c: &Circuit, s: &Circuit) {
        let corr = Correspondence::build(c, s).unwrap();
        for pair in &corr.outputs {
            assert_eq!(
                check_output_pair(c, s, pair, None).unwrap(),
                Equivalence::Equivalent,
                "output {} must be rectified",
                pair.name
            );
        }
    }

    #[test]
    fn rectifies_and_to_or_preserving_sibling() {
        let (mut c, s) = and_or_case();
        let options = EcoOptions::with_seed(3);
        let (patch, stats) = rewire_rectification(&mut c, &s, &options).unwrap();
        check_equiv(&c, &s);
        assert_eq!(stats.outputs_failing, 1, "only y fails");
        assert!(!patch.rewires().is_empty());
        // The protected output d (= nand) must still be driven by the
        // original AND cone: rewiring the output pin of y, not the AND's
        // internals, is the only non-damaging single rewire here.
        c.check_well_formed().unwrap();
    }

    #[test]
    fn equivalent_designs_need_no_patch() {
        let (c0, _) = and_or_case();
        let mut c = c0.clone();
        let s = c0;
        let options = EcoOptions::with_seed(1);
        let (patch, stats) = rewire_rectification(&mut c, &s, &options).unwrap();
        assert_eq!(stats.outputs_failing, 0);
        assert!(patch.rewires().is_empty());
        assert_eq!(patch.stats(&c), crate::PatchStats::default());
    }

    /// The Figure-1 scenario reduced: an existing net (NOT s1) in the
    /// implementation realizes the revised behaviour — the engine should
    /// rewire to it instead of cloning spec logic.
    #[test]
    fn reuses_existing_logic_when_available() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s0 = c.add_input("s0");
        let s1 = c.add_input("s1");
        let ns1 = c.add_gate(GateKind::Not, &[s1]).unwrap();
        let t1 = c.add_gate(GateKind::And, &[a, s0]).unwrap();
        let t2 = c.add_gate(GateKind::And, &[b, s1]).unwrap();
        let y = c.add_gate(GateKind::Or, &[t1, t2]).unwrap();
        c.add_output("y", y);
        c.add_output("aux", ns1);

        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let _ss0 = s.add_input("s0");
        let ss1 = s.add_input("s1");
        let sns1 = s.add_gate(GateKind::Not, &[ss1]).unwrap();
        let st1 = s.add_gate(GateKind::And, &[sa, sns1]).unwrap();
        let st2 = s.add_gate(GateKind::And, &[sb, ss1]).unwrap();
        let sy = s.add_gate(GateKind::Or, &[st1, st2]).unwrap();
        s.add_output("y", sy);
        s.add_output("aux", sns1);

        let options = EcoOptions::with_seed(11);
        let (patch, stats) = rewire_rectification(&mut c, &s, &options).unwrap();
        check_equiv(&c, &s);
        let pstats = patch.stats(&c);
        assert_eq!(
            pstats.gates, 0,
            "existing NOT gate should be reused, not cloned: {pstats:?} ({stats:?})"
        );
    }

    #[test]
    fn multi_output_design_fully_rectified() {
        // Three outputs, two of them revised.
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let d = c.add_input("d");
        let g1 = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = c.add_gate(GateKind::Xor, &[g1, d]).unwrap();
        let g3 = c.add_gate(GateKind::Or, &[a, d]).unwrap();
        c.add_output("u", g1);
        c.add_output("v", g2);
        c.add_output("w", g3);

        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sd = s.add_input("d");
        let h1 = s.add_gate(GateKind::Nand, &[sa, sb]).unwrap(); // changed
        let h2 = s.add_gate(GateKind::Xor, &[h1, sd]).unwrap(); // changed: ¬(a∧b)⊕d
        let h3 = s.add_gate(GateKind::Or, &[sa, sd]).unwrap(); // same
        s.add_output("u", h1);
        s.add_output("v", h2);
        s.add_output("w", h3);

        let options = EcoOptions::with_seed(5);
        let (_patch, stats) = rewire_rectification(&mut c, &s, &options).unwrap();
        check_equiv(&c, &s);
        assert_eq!(stats.outputs_failing, 2);
        c.check_well_formed().unwrap();
    }
}
