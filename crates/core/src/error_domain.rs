//! Error-domain computation: finding the minterms `𝔼 = {x | f(x) ≠ f'(x)}`.
//!
//! Samples from `𝔼` seed the symbolic sampling domain (paper §5.1: "the
//! computation yields fewer false positives when sampled assignments are
//! from the error domain"). Collection is two-staged: fast 64-way random
//! simulation first, then SAT enumeration on a single-output miter to top up
//! (and to prove an output pair equivalent when no error exists).

use std::collections::HashSet;

use eco_netlist::{sim, Circuit, NetlistError};
use eco_sat::cec::{assist_equivalences, CecOptions};
use eco_sat::{tseitin, Lit, SolveResult, Solver, SolverStats};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::budget::Budget;
use crate::correspond::{Correspondence, OutputPair};
use crate::options::SamplePolicy;

/// Verdict of an equivalence query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// The output pair computes the same function.
    Equivalent,
    /// A distinguishing input assignment (implementation input order).
    Counterexample(Vec<bool>),
    /// The SAT budget was exhausted.
    Unknown,
}

/// Checks one output pair for equivalence with a conflict budget.
///
/// # Errors
///
/// Propagates [`NetlistError`] from encoding.
pub fn check_output_pair(
    implementation: &Circuit,
    spec: &Circuit,
    pair: &OutputPair,
    budget: Option<u64>,
    governor: Option<&Budget>,
) -> Result<Equivalence, NetlistError> {
    check_output_pair_with_stats(implementation, spec, pair, budget, governor).map(|(e, _)| e)
}

/// [`check_output_pair`] plus the SAT effort the query consumed.
///
/// # Errors
///
/// Propagates [`NetlistError`] from encoding.
pub fn check_output_pair_with_stats(
    implementation: &Circuit,
    spec: &Circuit,
    pair: &OutputPair,
    budget: Option<u64>,
    governor: Option<&Budget>,
) -> Result<(Equivalence, SolverStats), NetlistError> {
    let mut solver = Solver::new();
    let lnet = implementation.outputs()[pair.impl_index as usize].net();
    let rnet = spec.outputs()[pair.spec_index as usize].net();
    let miter = tseitin::encode_pairs(&mut solver, implementation, spec, &[(lnet, rnet)])?;
    assist_equivalences(
        &mut solver,
        implementation,
        spec,
        &miter.left,
        &miter.right,
        &CecOptions::default(),
    )?;
    solver.add_clause(&miter.diff_lits);
    solver.set_conflict_budget(budget);
    if let Some(g) = governor {
        g.arm_solver(&mut solver);
    }
    let verdict = match solver.solve(&[]) {
        SolveResult::Unsat => Equivalence::Equivalent,
        SolveResult::Sat => {
            Equivalence::Counterexample(tseitin::model_inputs(&solver, &miter, implementation))
        }
        SolveResult::Unknown => Equivalence::Unknown,
    };
    Ok((verdict, solver.stats()))
}

/// Classifies every matched output pair with **one** miter encoding.
///
/// Returns, per pair index (into `corr.outputs`), the equivalence verdict.
/// Budgeted per query; [`Equivalence::Unknown`] entries should be treated
/// conservatively by callers.
///
/// # Errors
///
/// Propagates [`NetlistError`] from encoding.
pub fn classify_outputs(
    implementation: &Circuit,
    spec: &Circuit,
    corr: &Correspondence,
    budget: Option<u64>,
    governor: Option<&Budget>,
) -> Result<Vec<Equivalence>, NetlistError> {
    classify_outputs_with_stats(implementation, spec, corr, budget, governor).map(|(v, _)| v)
}

/// [`classify_outputs`] plus the SAT effort the classification consumed.
///
/// # Errors
///
/// Propagates [`NetlistError`] from encoding.
pub fn classify_outputs_with_stats(
    implementation: &Circuit,
    spec: &Circuit,
    corr: &Correspondence,
    budget: Option<u64>,
    governor: Option<&Budget>,
) -> Result<(Vec<Equivalence>, SolverStats), NetlistError> {
    let pairs: Vec<_> = corr
        .outputs
        .iter()
        .map(|p| {
            (
                implementation.outputs()[p.impl_index as usize].net(),
                spec.outputs()[p.spec_index as usize].net(),
            )
        })
        .collect();
    let mut solver = Solver::new();
    let miter = tseitin::encode_pairs(&mut solver, implementation, spec, &pairs)?;
    // Internal-equivalence assistance: the implementation is structurally
    // dissimilar from the specification by construction, so monolithic
    // queries are hard; proven internal ties make them local.
    assist_equivalences(
        &mut solver,
        implementation,
        spec,
        &miter.left,
        &miter.right,
        &CecOptions::default(),
    )?;
    solver.set_conflict_budget(budget);
    if let Some(g) = governor {
        g.arm_solver(&mut solver);
    }
    let mut out = Vec::with_capacity(pairs.len());
    for &d in &miter.diff_lits {
        out.push(match solver.solve(&[d]) {
            SolveResult::Unsat => Equivalence::Equivalent,
            SolveResult::Sat => {
                Equivalence::Counterexample(tseitin::model_inputs(&solver, &miter, implementation))
            }
            SolveResult::Unknown => Equivalence::Unknown,
        });
    }
    let stats = solver.stats();
    Ok((out, stats))
}

/// Collects up to `want` samples for the sampling domain of one output pair.
///
/// With `error_domain` set, samples are drawn from `𝔼`: random simulation
/// finds cheap error patterns, SAT enumeration (with blocking clauses) tops
/// up, and the collection stops early when `𝔼` is exhausted. Without it,
/// uniformly random assignments are used (the ablation-B configuration) —
/// except that one known error sample, when provided via `seed_sample`, is
/// always included so the domain distinguishes `f` from `f'` at all.
///
/// Returned samples are in implementation input order and deduplicated.
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulation or encoding.
#[allow(clippy::too_many_arguments)]
pub fn collect_samples(
    implementation: &Circuit,
    spec: &Circuit,
    corr: &Correspondence,
    pair: &OutputPair,
    want: usize,
    policy: SamplePolicy,
    seed_sample: Option<&[bool]>,
    rng: &mut SmallRng,
    governor: Option<&Budget>,
) -> Result<Vec<Vec<bool>>, NetlistError> {
    collect_samples_with_stats(
        implementation,
        spec,
        corr,
        pair,
        want,
        policy,
        seed_sample,
        rng,
        governor,
    )
    .map(|(s, _)| s)
}

/// [`collect_samples`] plus the SAT effort of the enumeration stage.
///
/// The returned [`SolverStats`] is zero when random simulation alone filled
/// the request (stage 2 never built a solver).
///
/// # Errors
///
/// Propagates [`NetlistError`] from simulation or encoding.
#[allow(clippy::too_many_arguments)]
pub fn collect_samples_with_stats(
    implementation: &Circuit,
    spec: &Circuit,
    corr: &Correspondence,
    pair: &OutputPair,
    want: usize,
    policy: SamplePolicy,
    seed_sample: Option<&[bool]>,
    rng: &mut SmallRng,
    governor: Option<&Budget>,
) -> Result<(Vec<Vec<bool>>, SolverStats), NetlistError> {
    let mut sat_stats = SolverStats::default();
    let mut samples: Vec<Vec<bool>> = Vec::new();
    let mut seen: HashSet<Vec<bool>> = HashSet::new();
    let mut push = |s: Vec<bool>, samples: &mut Vec<Vec<bool>>| {
        if seen.insert(s.clone()) {
            samples.push(s);
        }
    };
    if let Some(s) = seed_sample {
        push(s.to_vec(), &mut samples);
    }

    let fill_random = |want: usize,
                       samples: &mut Vec<Vec<bool>>,
                       seen: &mut HashSet<Vec<bool>>,
                       rng: &mut SmallRng| {
        // The distinct-assignment space may be smaller than `want` (few
        // inputs); bound the attempts so exhaustion terminates.
        let space = 1usize
            .checked_shl(implementation.num_inputs().min(30) as u32)
            .unwrap_or(usize::MAX);
        let want = want.min(space);
        let mut attempts = 0usize;
        while samples.len() < want && attempts < want.saturating_mul(64) {
            attempts += 1;
            let s: Vec<bool> = (0..implementation.num_inputs())
                .map(|_| rng.gen())
                .collect();
            if seen.insert(s.clone()) {
                samples.push(s);
            }
        }
    };

    if policy == SamplePolicy::Random {
        fill_random(want, &mut samples, &mut seen, rng);
        return Ok((samples, sat_stats));
    }
    // Error-domain collection targets the full budget for ErrorDomain and
    // half of it for Mixed (the rest is random preservation samples).
    let want_full = want;
    let want = match policy {
        SamplePolicy::Mixed => (want / 2).max(1),
        _ => want,
    };

    // Stage 1: random simulation, a few 64-pattern blocks.
    let impl_out = implementation.outputs()[pair.impl_index as usize].net();
    let spec_out = spec.outputs()[pair.spec_index as usize].net();
    let blocks = (want / 16).clamp(4, 32);
    for _ in 0..blocks {
        if samples.len() >= want {
            break;
        }
        if governor.is_some_and(Budget::is_exhausted) {
            break;
        }
        let impl_patterns: Vec<u64> = (0..implementation.num_inputs())
            .map(|_| rng.gen())
            .collect();
        // Translate to spec input order bit-plane-wise.
        let mut spec_patterns = vec![0u64; spec.num_inputs()];
        for (pos, &word) in impl_patterns.iter().enumerate() {
            if let Some(sp) = corr.spec_input_pos[pos] {
                spec_patterns[sp] = word;
            }
        }
        let impl_words = sim::simulate64(implementation, &impl_patterns)?;
        let spec_words = sim::simulate64(spec, &spec_patterns)?;
        let diff = impl_words[impl_out.index()] ^ spec_words[spec_out.index()];
        if diff == 0 {
            continue;
        }
        for bit in 0..64 {
            if (diff >> bit) & 1 == 0 {
                continue;
            }
            let s: Vec<bool> = impl_patterns.iter().map(|w| (w >> bit) & 1 == 1).collect();
            push(s, &mut samples);
            if samples.len() >= want {
                break;
            }
        }
    }

    // Stage 2: SAT enumeration to top up (also proves exhaustion).
    if samples.len() < want {
        let mut solver = Solver::new();
        let miter =
            tseitin::encode_pairs(&mut solver, implementation, spec, &[(impl_out, spec_out)])?;
        assist_equivalences(
            &mut solver,
            implementation,
            spec,
            &miter.left,
            &miter.right,
            &CecOptions::default(),
        )?;
        solver.add_clause(&miter.diff_lits);
        // Block already-found samples.
        let input_lit = |solver: &Solver, miter: &tseitin::Miter, pos: usize, v: bool| {
            let label = implementation
                .node(implementation.inputs()[pos])
                .name()
                .unwrap_or("")
                .to_string();
            let var = miter.inputs[&label];
            let _ = solver;
            Lit::with_phase(var, v)
        };
        for s in &samples {
            let block: Vec<Lit> = s
                .iter()
                .enumerate()
                .map(|(pos, &v)| input_lit(&solver, &miter, pos, !v))
                .collect();
            solver.add_clause(&block);
        }
        solver.set_conflict_budget(Some(200_000));
        if let Some(g) = governor {
            g.arm_solver(&mut solver);
        }
        while samples.len() < want {
            match solver.solve(&[]) {
                SolveResult::Sat => {
                    let s = tseitin::model_inputs(&solver, &miter, implementation);
                    let block: Vec<Lit> = s
                        .iter()
                        .enumerate()
                        .map(|(pos, &v)| input_lit(&solver, &miter, pos, !v))
                        .collect();
                    push(s, &mut samples);
                    solver.add_clause(&block);
                }
                _ => break, // exhausted or budget hit
            }
        }
        sat_stats = solver.stats();
    }
    if policy == SamplePolicy::Mixed {
        // Preservation samples: random assignments constrain the search to
        // keep already-correct behaviour, cutting false positives.
        fill_random(want_full, &mut samples, &mut seen, rng);
    }
    Ok((samples, sat_stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::GateKind;
    use rand::SeedableRng;

    /// impl: y = a & b; spec: y = a | b. Error domain = {a != b}.
    fn and_vs_or() -> (Circuit, Circuit) {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        let mut s = Circuit::new("spec");
        let a = s.add_input("a");
        let b = s.add_input("b");
        let g = s.add_gate(GateKind::Or, &[a, b]).unwrap();
        s.add_output("y", g);
        (c, s)
    }

    fn pair0(c: &Circuit, s: &Circuit) -> (Correspondence, OutputPair) {
        let corr = Correspondence::build(c, s).unwrap();
        let p = corr.outputs[0].clone();
        (corr, p)
    }

    #[test]
    fn equivalent_pair_reports_equivalent() {
        let (c, _) = and_vs_or();
        let s = c.clone();
        let (_, p) = pair0(&c, &s);
        assert_eq!(
            check_output_pair(&c, &s, &p, None, None).unwrap(),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn different_pair_yields_counterexample() {
        let (c, s) = and_vs_or();
        let (_, p) = pair0(&c, &s);
        match check_output_pair(&c, &s, &p, None, None).unwrap() {
            Equivalence::Counterexample(x) => {
                assert_ne!(c.eval(&x).unwrap()[0], s.eval(&x).unwrap()[0]);
            }
            other => panic!("expected counterexample, got {other:?}"),
        }
    }

    #[test]
    fn error_samples_are_all_errors_and_exhaustive() {
        let (c, s) = and_vs_or();
        let (corr, p) = pair0(&c, &s);
        let mut rng = SmallRng::seed_from_u64(7);
        let samples = collect_samples(
            &c,
            &s,
            &corr,
            &p,
            16,
            SamplePolicy::ErrorDomain,
            None,
            &mut rng,
            None,
        )
        .unwrap();
        // The error domain has exactly two elements: 01 and 10.
        assert_eq!(samples.len(), 2);
        for x in &samples {
            assert_ne!(c.eval(x).unwrap()[0], s.eval(x).unwrap()[0]);
        }
    }

    #[test]
    fn random_mode_includes_seed_sample() {
        let (c, s) = and_vs_or();
        let (corr, p) = pair0(&c, &s);
        let mut rng = SmallRng::seed_from_u64(7);
        let seed = vec![true, false];
        let samples = collect_samples(
            &c,
            &s,
            &corr,
            &p,
            8,
            SamplePolicy::Random,
            Some(&seed),
            &mut rng,
            None,
        )
        .unwrap();
        assert!(samples.contains(&seed));
        // The 2-input space has only 4 distinct assignments.
        assert_eq!(samples.len(), 4);
    }

    #[test]
    fn samples_are_unique() {
        let (c, s) = and_vs_or();
        let (corr, p) = pair0(&c, &s);
        let mut rng = SmallRng::seed_from_u64(9);
        let samples = collect_samples(
            &c,
            &s,
            &corr,
            &p,
            64,
            SamplePolicy::Random,
            None,
            &mut rng,
            None,
        )
        .unwrap();
        let set: HashSet<_> = samples.iter().cloned().collect();
        assert_eq!(set.len(), samples.len());
    }
}
