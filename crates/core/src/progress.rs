//! Live progress reporting for rectification runs.
//!
//! A [`Session`](crate::Session) (or the engine internals) can carry a
//! [`ProgressCallback`]; the scheduler invokes it with a [`ProgressEvent`]
//! at every per-cone milestone. Events are emitted from worker threads, so
//! the callback must be `Send + Sync`; the `syseco` CLI uses one to print a
//! live per-cone status line.
//!
//! Event order within one output is always `OutputStarted` →
//! `OutputSearched` → `OutputRectified`, but events of *different* outputs
//! interleave freely under `jobs > 1`: the search phase runs on a worker
//! pool while the merge phase (which emits `OutputRectified`) is
//! deterministic and sequential.

use std::sync::Arc;
use std::time::Duration;

/// How one output ended up rectified (also recorded per output in
/// [`RectifyStats::per_output`](crate::RectifyStats::per_output)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OutputAction {
    /// A validated rewiring (possibly with cloned spec logic) was merged.
    Rewired,
    /// The §3.3 output-rewire fallback was applied.
    Fallback,
    /// The output needed no patch when its merge turn came — either it was
    /// equivalent all along (conservative detection) or an earlier merged
    /// rewire fixed it as a side effect.
    AlreadyEquivalent,
}

impl std::fmt::Display for OutputAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutputAction::Rewired => write!(f, "rewired"),
            OutputAction::Fallback => write!(f, "fallback"),
            OutputAction::AlreadyEquivalent => write!(f, "already equivalent"),
        }
    }
}

/// One milestone of a rectification run.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ProgressEvent {
    /// Detection finished; the per-output searches are about to start.
    RunStarted {
        /// Matched output pairs.
        outputs_total: usize,
        /// Pairs initially non-equivalent (the work items).
        outputs_failing: usize,
        /// Worker threads the scheduler will use.
        jobs: usize,
    },
    /// A worker picked up one failing output's search.
    OutputStarted {
        /// Output label.
        output: String,
        /// Position in the deterministic merge order (0-based).
        position: usize,
        /// Number of failing outputs in this run.
        failing_total: usize,
    },
    /// A worker finished one failing output's search.
    OutputSearched {
        /// Output label.
        output: String,
        /// Position in the deterministic merge order (0-based).
        position: usize,
        /// Wall-clock time of the search.
        search: Duration,
        /// Whether the search produced a validated rewiring proposal (as
        /// opposed to needing the output-rewire fallback).
        proposal: bool,
    },
    /// The merge phase committed one output.
    OutputRectified {
        /// Output label.
        output: String,
        /// Position in the deterministic merge order (0-based).
        position: usize,
        /// How the output was rectified.
        action: OutputAction,
        /// Whether a [`Degradation`](crate::Degradation) was recorded.
        degraded: bool,
    },
    /// The run finished (merge complete, circuit swept).
    RunFinished {
        /// Total wall-clock time of detection + search + merge.
        duration: Duration,
        /// Number of degradations recorded.
        degradations: usize,
    },
}

impl ProgressEvent {
    /// Renders this event as one JSON object on a single line (no trailing
    /// newline) — the `--log-format json` form of the CLI's progress
    /// stream. Every object carries an `event` tag naming the variant in
    /// snake case; durations are emitted in microseconds as `*_us`.
    pub fn to_json(&self) -> String {
        use eco_telemetry::export::json_string;
        match self {
            ProgressEvent::RunStarted {
                outputs_total,
                outputs_failing,
                jobs,
            } => format!(
                "{{\"event\":\"run_started\",\"outputs_total\":{outputs_total},\
                 \"outputs_failing\":{outputs_failing},\"jobs\":{jobs}}}"
            ),
            ProgressEvent::OutputStarted {
                output,
                position,
                failing_total,
            } => format!(
                "{{\"event\":\"output_started\",\"output\":{},\"position\":{position},\
                 \"failing_total\":{failing_total}}}",
                json_string(output)
            ),
            ProgressEvent::OutputSearched {
                output,
                position,
                search,
                proposal,
            } => format!(
                "{{\"event\":\"output_searched\",\"output\":{},\"position\":{position},\
                 \"search_us\":{},\"proposal\":{proposal}}}",
                json_string(output),
                search.as_micros()
            ),
            ProgressEvent::OutputRectified {
                output,
                position,
                action,
                degraded,
            } => format!(
                "{{\"event\":\"output_rectified\",\"output\":{},\"position\":{position},\
                 \"action\":{},\"degraded\":{degraded}}}",
                json_string(output),
                json_string(&action.to_string())
            ),
            ProgressEvent::RunFinished {
                duration,
                degradations,
            } => format!(
                "{{\"event\":\"run_finished\",\"duration_us\":{},\
                 \"degradations\":{degradations}}}",
                duration.as_micros()
            ),
        }
    }
}

/// Shared observer invoked with every [`ProgressEvent`].
///
/// Events arrive from worker threads; the callback must therefore be
/// `Send + Sync`, and should be cheap — it runs inline with the search.
pub type ProgressCallback = Arc<dyn Fn(&ProgressEvent) + Send + Sync>;

/// Invokes `observer` with `event` when an observer is installed.
pub(crate) fn emit(observer: Option<&ProgressCallback>, event: ProgressEvent) {
    if let Some(cb) = observer {
        cb(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn emit_reaches_observer_and_none_is_noop() {
        let seen: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = Arc::clone(&seen);
        let cb: ProgressCallback = Arc::new(move |e: &ProgressEvent| {
            sink.lock().unwrap().push(format!("{e:?}"));
        });
        emit(
            Some(&cb),
            ProgressEvent::RunStarted {
                outputs_total: 2,
                outputs_failing: 1,
                jobs: 4,
            },
        );
        emit(
            None,
            ProgressEvent::RunFinished {
                duration: Duration::ZERO,
                degradations: 0,
            },
        );
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        assert!(seen[0].contains("RunStarted"));
    }

    #[test]
    fn to_json_emits_one_tagged_object_per_variant() {
        let started = ProgressEvent::OutputStarted {
            output: "y\"0".into(),
            position: 1,
            failing_total: 3,
        };
        assert_eq!(
            started.to_json(),
            "{\"event\":\"output_started\",\"output\":\"y\\\"0\",\"position\":1,\
             \"failing_total\":3}"
        );
        let searched = ProgressEvent::OutputSearched {
            output: "y".into(),
            position: 0,
            search: Duration::from_micros(1500),
            proposal: true,
        };
        assert!(searched.to_json().contains("\"search_us\":1500"));
        assert!(searched.to_json().contains("\"proposal\":true"));
        let rectified = ProgressEvent::OutputRectified {
            output: "y".into(),
            position: 0,
            action: OutputAction::AlreadyEquivalent,
            degraded: false,
        };
        assert!(rectified
            .to_json()
            .contains("\"action\":\"already equivalent\""));
        let finished = ProgressEvent::RunFinished {
            duration: Duration::from_micros(42),
            degradations: 0,
        };
        assert!(finished
            .to_json()
            .starts_with("{\"event\":\"run_finished\""));
    }

    #[test]
    fn output_action_displays() {
        assert_eq!(OutputAction::Rewired.to_string(), "rewired");
        assert_eq!(OutputAction::Fallback.to_string(), "fallback");
        assert_eq!(
            OutputAction::AlreadyEquivalent.to_string(),
            "already equivalent"
        );
    }
}
