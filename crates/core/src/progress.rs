//! Live progress reporting for rectification runs.
//!
//! A [`Session`](crate::Session) (or the engine internals) can carry a
//! [`ProgressCallback`]; the scheduler invokes it with a [`ProgressEvent`]
//! at every per-cone milestone. Events are emitted from worker threads, so
//! the callback must be `Send + Sync`; the `syseco` CLI uses one to print a
//! live per-cone status line.
//!
//! Event order within one output is always `OutputStarted` →
//! `OutputSearched` → `OutputRectified`, but events of *different* outputs
//! interleave freely under `jobs > 1`: the search phase runs on a worker
//! pool while the merge phase (which emits `OutputRectified`) is
//! deterministic and sequential.

use std::sync::Arc;
use std::time::Duration;

/// How one output ended up rectified (also recorded per output in
/// [`RectifyStats::per_output`](crate::RectifyStats::per_output)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OutputAction {
    /// A validated rewiring (possibly with cloned spec logic) was merged.
    Rewired,
    /// The §3.3 output-rewire fallback was applied.
    Fallback,
    /// The output needed no patch when its merge turn came — either it was
    /// equivalent all along (conservative detection) or an earlier merged
    /// rewire fixed it as a side effect.
    AlreadyEquivalent,
}

impl std::fmt::Display for OutputAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OutputAction::Rewired => write!(f, "rewired"),
            OutputAction::Fallback => write!(f, "fallback"),
            OutputAction::AlreadyEquivalent => write!(f, "already equivalent"),
        }
    }
}

/// One milestone of a rectification run.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ProgressEvent {
    /// Detection finished; the per-output searches are about to start.
    RunStarted {
        /// Matched output pairs.
        outputs_total: usize,
        /// Pairs initially non-equivalent (the work items).
        outputs_failing: usize,
        /// Worker threads the scheduler will use.
        jobs: usize,
    },
    /// A worker picked up one failing output's search.
    OutputStarted {
        /// Output label.
        output: String,
        /// Position in the deterministic merge order (0-based).
        position: usize,
        /// Number of failing outputs in this run.
        failing_total: usize,
    },
    /// A worker finished one failing output's search.
    OutputSearched {
        /// Output label.
        output: String,
        /// Position in the deterministic merge order (0-based).
        position: usize,
        /// Wall-clock time of the search.
        search: Duration,
        /// Whether the search produced a validated rewiring proposal (as
        /// opposed to needing the output-rewire fallback).
        proposal: bool,
    },
    /// The merge phase committed one output.
    OutputRectified {
        /// Output label.
        output: String,
        /// Position in the deterministic merge order (0-based).
        position: usize,
        /// How the output was rectified.
        action: OutputAction,
        /// Whether a [`Degradation`](crate::Degradation) was recorded.
        degraded: bool,
    },
    /// The run finished (merge complete, circuit swept).
    RunFinished {
        /// Total wall-clock time of detection + search + merge.
        duration: Duration,
        /// Number of degradations recorded.
        degradations: usize,
    },
}

/// Shared observer invoked with every [`ProgressEvent`].
///
/// Events arrive from worker threads; the callback must therefore be
/// `Send + Sync`, and should be cheap — it runs inline with the search.
pub type ProgressCallback = Arc<dyn Fn(&ProgressEvent) + Send + Sync>;

/// Invokes `observer` with `event` when an observer is installed.
pub(crate) fn emit(observer: Option<&ProgressCallback>, event: ProgressEvent) {
    if let Some(cb) = observer {
        cb(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn emit_reaches_observer_and_none_is_noop() {
        let seen: Arc<Mutex<Vec<String>>> = Arc::default();
        let sink = Arc::clone(&seen);
        let cb: ProgressCallback = Arc::new(move |e: &ProgressEvent| {
            sink.lock().unwrap().push(format!("{e:?}"));
        });
        emit(
            Some(&cb),
            ProgressEvent::RunStarted {
                outputs_total: 2,
                outputs_failing: 1,
                jobs: 4,
            },
        );
        emit(
            None,
            ProgressEvent::RunFinished {
                duration: Duration::ZERO,
                degradations: 0,
            },
        );
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        assert!(seen[0].contains("RunStarted"));
    }

    #[test]
    fn output_action_displays() {
        assert_eq!(OutputAction::Rewired.to_string(), "rewired");
        assert_eq!(OutputAction::Fallback.to_string(), "fallback");
        assert_eq!(
            OutputAction::AlreadyEquivalent.to_string(),
            "already equivalent"
        );
    }
}
