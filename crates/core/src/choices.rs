//! Candidate rewiring choices (paper §4.4).
//!
//! With a point-set `(p_1, …, p_m)` fixed and candidate rewiring nets
//! `S_i = (s_i0, s_i1, …)` per point, choice variables `c_i` parameterize
//! the consistency relation
//!
//! ```text
//! R(x, y, c) = ⋀_i ⋀_j ( c_i^j → (y_i ≡ r_ij(x)) )
//! ```
//!
//! and Theorem 1's bounds `L = f' ∧ R`, `U = f' ∨ ¬R` give the
//! characteristic function of all valid rewire operations:
//!
//! ```text
//! Ξ(c) = ∀x, y ( (L ⇒ h) ∧ (h ⇒ U) )
//! ```
//!
//! computed here in the sampling domain (`x` overloaded by `g(z)`, Figure 3).

use std::collections::HashMap;

use eco_bdd::{Bdd, BddError, BddManager};
use eco_netlist::{Circuit, NetId, Pin};

use crate::rewire_nets::RewireCandidate;
use crate::sampling::eval_cone_bdd;

/// Variable layout of the choice blocks `c = (c_1, …, c_m)`.
#[derive(Debug, Clone)]
pub struct ChoiceEncoding {
    blocks: Vec<(u32, u32, usize)>, // (base, bits, candidate count)
}

impl ChoiceEncoding {
    /// Lays out one block per point, sized `⌈log2 |S_i|⌉` bits, starting at
    /// variable `c_base`.
    pub fn new(c_base: u32, candidate_counts: &[usize]) -> Self {
        let mut blocks = Vec::with_capacity(candidate_counts.len());
        let mut base = c_base;
        for &count in candidate_counts {
            let bits = if count <= 1 {
                0
            } else {
                usize::BITS - (count - 1).leading_zeros()
            };
            blocks.push((base, bits, count));
            base += bits;
        }
        ChoiceEncoding { blocks }
    }

    /// Total `c` variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.blocks.iter().map(|&(_, bits, _)| bits).sum()
    }

    /// All `c` variable indices.
    pub fn vars(&self) -> Vec<u32> {
        self.blocks
            .iter()
            .flat_map(|&(base, bits, _)| base..base + bits)
            .collect()
    }

    /// The minterm `c_i^j`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the manager budget is exhausted.
    pub fn minterm(&self, m: &mut BddManager, block: usize, code: usize) -> Result<Bdd, BddError> {
        let (base, bits, _) = self.blocks[block];
        let mut cube = m.one();
        for b in 0..bits {
            let bit = (code >> (bits - 1 - b)) & 1 == 1;
            let var = base + b;
            let lit = if bit { m.var(var) } else { m.nvar(var) };
            cube = m.and(cube, lit)?;
        }
        Ok(cube)
    }

    /// Decodes the choice of block `i` from a satisfying cube of `Ξ(c)`:
    /// the smallest in-range code consistent with the cube's literals.
    pub fn decode_block(&self, cube: &eco_bdd::Cube, block: usize) -> usize {
        let (base, bits, count) = self.blocks[block];
        'code: for code in 0..count.max(1) {
            for b in 0..bits {
                let bit = (code >> (bits - 1 - b)) & 1 == 1;
                if let Some(phase) = cube.phase(base + b) {
                    if phase != bit {
                        continue 'code;
                    }
                }
            }
            return code;
        }
        0
    }
}

/// The functions `r_ij(z)` of every candidate, read from precomputed net
/// values over the sampling domain.
pub fn candidate_function(cand: &RewireCandidate, impl_vals: &[Bdd], spec_vals: &[Bdd]) -> Bdd {
    if cand.from_spec {
        spec_vals[cand.net.index()]
    } else {
        impl_vals[cand.net.index()]
    }
}

/// Computes `Ξ(c)` for one point-set and decodes up to `max_choices`
/// satisfying assignments into candidate-index vectors (one index per
/// point).
///
/// `impl_vals` / `spec_vals` are the z-domain values of every net (from
/// [`crate::sampling::eval_all_bdd`]); `fprime` is the revised output over
/// `z`; `y_base` is the first rectification-input variable; `z_vars` the
/// sampling block.
///
/// # Errors
///
/// [`BddError::NodeLimit`] when the manager budget is exhausted.
#[allow(clippy::too_many_arguments)]
pub fn find_choices(
    implementation: &Circuit,
    m: &mut BddManager,
    input_fns: &[Bdd],
    impl_vals: &[Bdd],
    spec_vals: &[Bdd],
    fprime: Bdd,
    root: NetId,
    output_index: u32,
    points: &[Pin],
    candidates: &[Vec<RewireCandidate>],
    y_base: u32,
    c_base: u32,
    z_vars: &[u32],
    max_choices: usize,
) -> Result<Vec<Vec<usize>>, BddError> {
    debug_assert_eq!(points.len(), candidates.len());
    let encoding =
        ChoiceEncoding::new(c_base, &candidates.iter().map(Vec::len).collect::<Vec<_>>());

    // h(z, y): the composition function with the selected pins freed.
    let mut pin_subst: HashMap<Pin, usize> = HashMap::new();
    let mut output_point: Option<usize> = None;
    for (i, &p) in points.iter().enumerate() {
        match p {
            Pin::Gate { .. } => {
                pin_subst.insert(p, i);
            }
            Pin::Output { index } if index == output_index => output_point = Some(i),
            Pin::Output { .. } => {}
        }
    }
    let mut subst = |mgr: &mut BddManager, i: usize, _orig: Bdd| -> Result<Bdd, BddError> {
        Ok(mgr.var(y_base + i as u32))
    };
    let mut h = eval_cone_bdd(implementation, m, input_fns, root, &pin_subst, &mut subst)?;
    if let Some(i) = output_point {
        // The output itself is the rectification point: the composition
        // function is the free input directly.
        h = m.var(y_base + i as u32);
    }

    // R(z, y, c) and the in-range validity constraint V(c).
    let mut big_r = m.one();
    let mut validity = m.one();
    for (i, cands) in candidates.iter().enumerate() {
        let y = m.var(y_base + i as u32);
        let mut any = m.zero();
        for (j, cand) in cands.iter().enumerate() {
            let cij = encoding.minterm(m, i, j)?;
            any = m.or(any, cij)?;
            let r = candidate_function(cand, impl_vals, spec_vals);
            let consistent = m.iff(y, r)?;
            let ncij = m.not(cij)?;
            let imp = m.or(ncij, consistent)?;
            big_r = m.and(big_r, imp)?;
        }
        validity = m.and(validity, any)?;
    }

    // Theorem 1: L ⇒ h and h ⇒ U.
    let l = m.and(fprime, big_r)?;
    let not_r = m.not(big_r)?;
    let u = m.or(fprime, not_r)?;
    let lh = m.implies(l, h)?;
    let hu = m.implies(h, u)?;
    let body = m.and(lh, hu)?;

    // Ξ(c) = ∀z,y body, restricted to in-range choices.
    let y_vars: Vec<u32> = (0..points.len()).map(|i| y_base + i as u32).collect();
    let mut quant_vars = z_vars.to_vec();
    quant_vars.extend(&y_vars);
    let cube = m.var_cube(&quant_vars)?;
    let xi = m.forall(body, cube)?;
    let xi = m.and(xi, validity)?;

    if xi == m.zero() {
        return Ok(Vec::new());
    }

    // Decode satisfying cubes into candidate-index vectors.
    let cubes = m.sat_cubes(xi, max_choices.saturating_mul(4).max(8));
    let mut out: Vec<Vec<usize>> = Vec::new();
    for cube in &cubes {
        let decoded: Vec<usize> = (0..points.len())
            .map(|i| encoding.decode_block(cube, i))
            .collect();
        if !out.contains(&decoded) {
            out.push(decoded);
            if out.len() >= max_choices {
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::{eval_all_bdd, SamplingDomain};
    use eco_netlist::GateKind;

    #[test]
    fn encoding_layout() {
        let e = ChoiceEncoding::new(10, &[3, 1, 5]);
        assert_eq!(e.num_vars(), 2 + 3);
        assert_eq!(e.vars(), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn minterms_partition() {
        let mut m = BddManager::new();
        let e = ChoiceEncoding::new(0, &[3]);
        let mut union = m.zero();
        for j in 0..3 {
            let c = e.minterm(&mut m, 0, j).unwrap();
            union = m.or(union, c).unwrap();
        }
        // Code 3 (out of range) is the only uncovered one with 2 bits.
        let c3 = e.minterm(&mut m, 0, 3).unwrap();
        let all = m.or(union, c3).unwrap();
        assert_eq!(all, m.one());
    }

    #[test]
    fn single_candidate_block_has_no_vars() {
        let mut m = BddManager::new();
        let e = ChoiceEncoding::new(0, &[1]);
        assert_eq!(e.num_vars(), 0);
        assert_eq!(e.minterm(&mut m, 0, 0).unwrap(), m.one());
    }

    /// and-vs-or at the output pin: rewiring the output to the spec's OR
    /// net (cloned) must be found as a valid choice; the trivial candidate
    /// (keeping the AND) must not.
    #[test]
    fn output_rewire_choice_found() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sg = s.add_gate(GateKind::Or, &[sa, sb]).unwrap();
        s.add_output("y", sg);

        let mut m = BddManager::new();
        // Layout: c block (2 cands -> 1 bit) at 0, y at 4, z from 5.
        let samples = vec![vec![true, false], vec![false, true]];
        let dom = SamplingDomain::new(samples, 5).unwrap();
        let gfun = dom.input_functions(&mut m, 2).unwrap();
        let impl_vals = eval_all_bdd(&c, &mut m, &gfun).unwrap();
        let spec_vals = eval_all_bdd(&s, &mut m, &gfun).unwrap();
        let fprime = spec_vals[sg.index()];

        let points = vec![Pin::output(0)];
        let cands = vec![vec![
            RewireCandidate {
                net: g,
                from_spec: false,
                utility: 0.0,
                arrival: 0.0,
            },
            RewireCandidate {
                net: sg,
                from_spec: true,
                utility: 1.0,
                arrival: 0.0,
            },
        ]];
        let choices = find_choices(
            &c,
            &mut m,
            &gfun,
            &impl_vals,
            &spec_vals,
            fprime,
            g,
            0,
            &points,
            &cands,
            4,
            0,
            &dom.z_vars(),
            8,
        )
        .unwrap();
        assert_eq!(choices, vec![vec![1]], "only the spec OR net rectifies");
    }

    /// Figure-1 flavour: y = (a & s0) | (b & s1); the revision replaces s0
    /// by NOT s1 — rewiring the single pin carrying s0 to the existing
    /// NOT(s1) net must be a valid choice.
    #[test]
    fn gate_pin_rewire_choice_found() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let s0 = c.add_input("s0");
        let s1 = c.add_input("s1");
        let ns1 = c.add_gate(GateKind::Not, &[s1]).unwrap();
        let t1 = c.add_gate(GateKind::And, &[a, s0]).unwrap();
        let t2 = c.add_gate(GateKind::And, &[b, s1]).unwrap();
        let y = c.add_gate(GateKind::Or, &[t1, t2]).unwrap();
        c.add_output("y", y);
        c.add_output("aux", ns1); // keeps ns1 alive and observable

        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let _ss0 = s.add_input("s0");
        let ss1 = s.add_input("s1");
        let sns1 = s.add_gate(GateKind::Not, &[ss1]).unwrap();
        let st1 = s.add_gate(GateKind::And, &[sa, sns1]).unwrap();
        let st2 = s.add_gate(GateKind::And, &[sb, ss1]).unwrap();
        let sy = s.add_gate(GateKind::Or, &[st1, st2]).unwrap();
        s.add_output("y", sy);
        s.add_output("aux", sns1);

        let mut m = BddManager::new();
        // Error samples: need patterns where s0 != !s1 and a = 1 matters.
        let samples = vec![
            vec![true, false, true, true],   // a=1, s0=1, s1=1: impl 1, spec 0
            vec![true, false, false, false], // a=1, s0=0, s1=0: impl 0, spec 1
        ];
        let dom = SamplingDomain::new(samples, 16).unwrap();
        let gfun = dom.input_functions(&mut m, 4).unwrap();
        let impl_vals = eval_all_bdd(&c, &mut m, &gfun).unwrap();
        let spec_vals = eval_all_bdd(&s, &mut m, &gfun).unwrap();
        let fprime = spec_vals[sy.index()];

        // Point: pin 1 of t1 (currently s0). Candidates: trivial, ns1, s1.
        let pin = Pin::gate(t1.source(), 1);
        let points = vec![pin];
        let cands = vec![vec![
            RewireCandidate {
                net: s0,
                from_spec: false,
                utility: 0.0,
                arrival: 0.0,
            },
            RewireCandidate {
                net: ns1,
                from_spec: false,
                utility: 1.0,
                arrival: 0.0,
            },
            RewireCandidate {
                net: s1,
                from_spec: false,
                utility: 0.5,
                arrival: 0.0,
            },
        ]];
        let choices = find_choices(
            &c,
            &mut m,
            &gfun,
            &impl_vals,
            &spec_vals,
            fprime,
            y,
            0,
            &points,
            &cands,
            12,
            0,
            &dom.z_vars(),
            8,
        )
        .unwrap();
        assert!(
            choices.contains(&vec![1]),
            "rewiring to NOT(s1) rectifies: {choices:?}"
        );
        assert!(
            !choices.contains(&vec![0]),
            "keeping s0 does not rectify: {choices:?}"
        );
    }
}
