//! Persistent incremental-ECO cache session (DESIGN.md §11).
//!
//! Bridges the content-addressed [`eco_cache::Store`] and the rectification
//! engine. Two record kinds are memoized:
//!
//! * **Run records** ([`KIND_RUN`]) — keyed by the full
//!   `(implementation, specification, options)` triple. They hold the
//!   committed rewire groups of a finished run, enough to *replay* the
//!   merge phase and re-derive the identical patch without searching.
//! * **Output records** ([`KIND_OUTPUT`]) — keyed by
//!   `(implementation, options, spec output cone, output label)`. They hold
//!   the validated proposal and the refinement counterexamples of one
//!   per-output search, so a later run against a *different* specification
//!   revision that leaves this output's spec cone untouched can warm-start
//!   §5.1 sampling and try the old proposal first.
//!
//! Cache payloads are advisory: every reused proposal is re-validated by
//! SAT and every replayed run is re-verified by [`classify_outputs`]
//! before the engine trusts it (see `engine.rs`). A stale or corrupt
//! record therefore costs time, never correctness.
//!
//! [`classify_outputs`]: crate::error_domain::classify_outputs

use eco_cache::{circuit_sig, fingerprint_words, hash_str, node_hashes, ConeWalk, Sig128, Store};
use eco_netlist::{Circuit, NetId, NetlistError, Pin};

use crate::budget::Budget;
use crate::correspond::OutputPair;
use crate::options::{EcoOptions, SamplePolicy};
use crate::rectify::RectifyStats;
use crate::rewire_nets::RewireCandidate;
use crate::validate::CandidateRewire;

/// Record kind of whole-run replay records.
pub(crate) const KIND_RUN: u8 = 1;
/// Record kind of per-output warm-start records.
pub(crate) const KIND_OUTPUT: u8 = 2;
/// Leading payload byte; bump on any encoding change so old records decode
/// as misses instead of garbage.
const PAYLOAD_VERSION: u8 = 1;
/// Folded into every options fingerprint; bump when the *semantics* behind
/// an option change without the encoding changing.
const FINGERPRINT_VERSION: u64 = 1;

/// Soft bounds on decoded collection sizes — a corrupt length prefix must
/// not trigger a huge allocation before the bounds checks catch it.
const MAX_DECODE_ITEMS: u32 = 1 << 20;

/// Fingerprint of every option that influences search results. `jobs`,
/// `timeout`, and the cache options themselves are excluded: they change
/// wall-clock behaviour, not the (deterministic) outcome.
pub(crate) fn options_fingerprint(options: &EcoOptions) -> Sig128 {
    let policy = match options.sample_policy {
        SamplePolicy::ErrorDomain => 0u64,
        SamplePolicy::Random => 1,
        SamplePolicy::Mixed => 2,
        // `SamplePolicy` is non_exhaustive; unknown future variants must
        // not silently collide with an existing code.
        #[allow(unreachable_patterns)]
        _ => u64::MAX,
    };
    fingerprint_words(&[
        FINGERPRINT_VERSION,
        options.num_samples as u64,
        policy,
        options.max_points as u64,
        options.max_candidate_pins as u64,
        options.max_point_sets as u64,
        options.max_decodes_per_prime as u64,
        options.max_rewire_candidates as u64,
        options.max_choices as u64,
        options.validation_budget,
        options.max_refinements as u64,
        options.max_validations_per_output as u64,
        options.good_enough_cost as u64,
        u64::from(options.level_driven),
        options.seed,
        options.bdd_node_limit as u64,
    ])
}

/// Decoded whole-run replay record.
pub(crate) struct RunRecord {
    /// Committed rewire groups in commit order (proposals that survived the
    /// merge rechecks plus fallbacks), ready for `apply_rewires`.
    pub groups: Vec<Vec<CandidateRewire>>,
    /// Summary counters of the original run, reported on a replay hit.
    pub outputs_total: usize,
    pub outputs_failing: usize,
    pub rewire_rectified: usize,
    pub fallbacks: usize,
}

/// Warm-start data decoded from one per-output record.
pub(crate) struct WarmStart {
    /// The previously validated proposal, if the record holds one.
    /// `from_spec` nets are already resolved against *this* run's spec.
    pub proposal: Option<Vec<CandidateRewire>>,
    /// Refinement counterexamples recorded by the previous search, used to
    /// seed the §5.1 sampling domain past its cold false-positive phase.
    pub minterms: Vec<Vec<bool>>,
}

/// One per-output cache slot: the key it lives under plus whatever warm
/// data was found there. Computed by the coordinator *before* fan-out so
/// lookups cannot perturb jobs-determinism.
pub(crate) struct OutputEntry {
    key: Sig128,
    pub warm: Option<WarmStart>,
}

/// A cache handle scoped to one `rectify` call.
///
/// Owns the open [`Store`], the run/base keys derived from the normalized
/// inputs, and the coordinator-side miss counter. Dropped without
/// [`commit`](Self::commit) the session writes nothing.
pub(crate) struct CacheSession {
    store: Store,
    run_key: Sig128,
    base_key: Sig128,
    /// Lookups (run probe or output probe) that found nothing usable.
    pub misses: u64,
}

impl CacheSession {
    /// Opens a session, or `None` when caching is off, the directory cannot
    /// be opened, or the inputs cannot be signed (cyclic circuits error
    /// later, on their own terms). A `None` here silently degrades to an
    /// uncached run.
    ///
    /// The `budget` supplies the I/O seam (DESIGN.md §13): its fault plan's
    /// cache VFS and retry schedule under test, real I/O with default
    /// retries otherwise.
    pub fn open(
        options: &EcoOptions,
        implementation: &Circuit,
        spec: &Circuit,
        budget: &Budget,
    ) -> Option<Self> {
        let dir = options.cache_dir.as_deref()?;
        if !options.cache_mode.is_enabled() {
            return None;
        }
        let vfs: std::sync::Arc<dyn eco_cache::Vfs> = budget
            .cache_vfs()
            .unwrap_or_else(|| std::sync::Arc::new(eco_cache::RealVfs));
        let store = Store::open_with(
            dir,
            options.cache_mode.is_read_only(),
            vfs,
            budget.io_retry(),
        )
        .ok()?;
        let impl_sig = circuit_sig(implementation).ok()?;
        let spec_sig = circuit_sig(spec).ok()?;
        let options_fp = options_fingerprint(options);
        Some(CacheSession {
            store,
            run_key: Sig128::fold(&[impl_sig, spec_sig, options_fp]),
            base_key: Sig128::fold(&[impl_sig, options_fp]),
            misses: 0,
        })
    }

    /// Damaged segments skipped when the store was opened.
    pub fn corrupt_segments(&self) -> u64 {
        self.store.corrupt_segments()
    }

    /// Cache I/O operations that failed even after bounded retries.
    pub fn io_errors(&self) -> u64 {
        self.store.io_errors()
    }

    /// Transient cache I/O failures absorbed by retry-with-backoff.
    pub fn retries(&self) -> u64 {
        self.store.retries()
    }

    /// Looks up and decodes the whole-run replay record, counting a miss
    /// when nothing usable is stored.
    pub fn run_record(&mut self) -> Option<RunRecord> {
        let record = self
            .store
            .get(self.run_key, KIND_RUN)
            .and_then(decode_run_record);
        if record.is_none() {
            self.misses += 1;
        }
        record
    }

    /// Records the committed rewire groups and summary counters of a
    /// finished cold run under the full run key.
    pub fn record_run(&mut self, groups: &[Vec<CandidateRewire>], stats: &RectifyStats) {
        let payload = encode_run_record(groups, stats);
        if self.store.get(self.run_key, KIND_RUN) == Some(payload.as_slice()) {
            return;
        }
        self.store.put(self.run_key, KIND_RUN, payload);
    }

    /// Computes the per-output cache slots for `order` (the fixed merge
    /// order), decoding any stored warm-start data against this run's
    /// `spec`. Every lookup that finds nothing counts as a miss.
    ///
    /// # Errors
    ///
    /// [`NetlistError::Cyclic`] on a cyclic specification.
    pub fn output_entries(
        &mut self,
        spec: &Circuit,
        order: &[OutputPair],
    ) -> Result<Vec<OutputEntry>, NetlistError> {
        let hashes = node_hashes(spec)?;
        let mut entries = Vec::with_capacity(order.len());
        for pair in order {
            let root = spec.outputs()[pair.spec_index as usize].net();
            let walk = ConeWalk::with_hashes(spec, &hashes, root)?;
            let key = Sig128::fold(&[self.base_key, walk.sig]).mix(hash_str(&pair.name));
            let warm = self
                .store
                .get(key, KIND_OUTPUT)
                .and_then(|payload| decode_output_record(payload, &walk));
            if warm.is_none() {
                self.misses += 1;
            }
            entries.push(OutputEntry { key, warm });
        }
        Ok(entries)
    }

    /// Records one output's search outcome under its entry key. Entries
    /// with nothing to offer a future run (no proposal, no refinements)
    /// are skipped, as are byte-identical re-records.
    pub fn record_output(
        &mut self,
        entry: &OutputEntry,
        spec: &Circuit,
        spec_root: NetId,
        proposal: Option<&[CandidateRewire]>,
        minterms: &[Vec<bool>],
    ) {
        if proposal.is_none() && minterms.is_empty() {
            return;
        }
        let Ok(walk) = ConeWalk::build(spec, spec_root) else {
            return;
        };
        let Some(payload) = encode_output_record(proposal, minterms, &walk) else {
            return;
        };
        if self.store.get(entry.key, KIND_OUTPUT) == Some(payload.as_slice()) {
            return;
        }
        self.store.put(entry.key, KIND_OUTPUT, payload);
    }

    /// Flushes staged records to disk. Errors are reported but non-fatal —
    /// the rectification result is already computed by the time this runs.
    pub fn commit(&mut self) -> std::io::Result<()> {
        self.store.commit()
    }
}

// --- encoding helpers (little-endian throughout) ---

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Cursor-style reader over a payload; every accessor returns `None` past
/// the end, so truncated records decode as misses.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        let bytes = self.buf.get(self.pos..self.pos + 4)?;
        self.pos += 4;
        Some(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// A length prefix, rejected when implausibly large.
    pub(crate) fn len(&mut self) -> Option<u32> {
        self.u32().filter(|&n| n <= MAX_DECODE_ITEMS)
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Encodes one rewire. In run records (`walk: None`) every net is a raw
/// index into its own circuit; in output records spec-side nets are encoded
/// as positions in the spec cone's [`ConeWalk`], which makes the record
/// valid across net-id renumberings of structurally identical cones.
/// Returns `None` when a spec net falls outside the walk (cannot happen for
/// candidates produced by the search, but guards future callers).
pub(crate) fn encode_rewire(
    buf: &mut Vec<u8>,
    r: &CandidateRewire,
    walk: Option<&ConeWalk>,
) -> Option<()> {
    match r.pin {
        Pin::Gate { node, pos } => {
            buf.push(0);
            put_u32(buf, node.index() as u32);
            buf.push(pos);
        }
        Pin::Output { index } => {
            buf.push(1);
            put_u32(buf, index);
            buf.push(0);
        }
    }
    let net = match walk {
        Some(walk) if r.candidate.from_spec => walk.position(r.candidate.net)?,
        _ => r.candidate.net.index() as u32,
    };
    put_u32(buf, net);
    buf.push(u8::from(r.candidate.from_spec));
    Some(())
}

pub(crate) fn decode_rewire(
    r: &mut Reader<'_>,
    walk: Option<&ConeWalk>,
) -> Option<CandidateRewire> {
    let pin = match r.u8()? {
        0 => {
            let node = r.u32()?;
            let pos = r.u8()?;
            Pin::gate(eco_netlist::NodeId::from_index(node as usize), pos)
        }
        1 => {
            let index = r.u32()?;
            r.u8()?;
            Pin::output(index)
        }
        _ => return None,
    };
    let raw = r.u32()?;
    let from_spec = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    let net = match walk {
        Some(walk) if from_spec => *walk.order.get(raw as usize)?,
        _ => NetId::from_index(raw as usize),
    };
    Some(CandidateRewire {
        pin,
        // Utility and arrival only rank candidates during the search; a
        // memoized proposal is past ranking, so placeholders suffice.
        candidate: RewireCandidate {
            net,
            from_spec,
            utility: 1.0,
            arrival: 0.0,
        },
    })
}

fn encode_run_record(groups: &[Vec<CandidateRewire>], stats: &RectifyStats) -> Vec<u8> {
    let mut buf = vec![PAYLOAD_VERSION];
    put_u32(&mut buf, stats.outputs_total as u32);
    put_u32(&mut buf, stats.outputs_failing as u32);
    put_u32(&mut buf, stats.rewire_rectified as u32);
    put_u32(&mut buf, stats.fallbacks as u32);
    put_u32(&mut buf, groups.len() as u32);
    for group in groups {
        put_u32(&mut buf, group.len() as u32);
        for rewire in group {
            // Raw-index encoding is infallible.
            let _ = encode_rewire(&mut buf, rewire, None);
        }
    }
    buf
}

fn decode_run_record(payload: &[u8]) -> Option<RunRecord> {
    let mut r = Reader::new(payload);
    if r.u8()? != PAYLOAD_VERSION {
        return None;
    }
    let outputs_total = r.u32()? as usize;
    let outputs_failing = r.u32()? as usize;
    let rewire_rectified = r.u32()? as usize;
    let fallbacks = r.u32()? as usize;
    let num_groups = r.len()?;
    let mut groups = Vec::with_capacity(num_groups as usize);
    for _ in 0..num_groups {
        let len = r.len()?;
        let mut group = Vec::with_capacity(len as usize);
        for _ in 0..len {
            group.push(decode_rewire(&mut r, None)?);
        }
        groups.push(group);
    }
    r.done().then_some(RunRecord {
        groups,
        outputs_total,
        outputs_failing,
        rewire_rectified,
        fallbacks,
    })
}

fn encode_output_record(
    proposal: Option<&[CandidateRewire]>,
    minterms: &[Vec<bool>],
    walk: &ConeWalk,
) -> Option<Vec<u8>> {
    let mut buf = vec![PAYLOAD_VERSION];
    match proposal {
        Some(group) => {
            buf.push(1);
            put_u32(&mut buf, group.len() as u32);
            for rewire in group {
                encode_rewire(&mut buf, rewire, Some(walk))?;
            }
        }
        None => buf.push(0),
    }
    put_u32(&mut buf, minterms.len() as u32);
    for m in minterms {
        put_u32(&mut buf, m.len() as u32);
        buf.extend(m.iter().map(|&b| u8::from(b)));
    }
    Some(buf)
}

fn decode_output_record(payload: &[u8], walk: &ConeWalk) -> Option<WarmStart> {
    let mut r = Reader::new(payload);
    if r.u8()? != PAYLOAD_VERSION {
        return None;
    }
    let proposal = match r.u8()? {
        0 => None,
        1 => {
            let len = r.len()?;
            let mut group = Vec::with_capacity(len as usize);
            for _ in 0..len {
                group.push(decode_rewire(&mut r, Some(walk))?);
            }
            Some(group)
        }
        _ => return None,
    };
    let num_minterms = r.len()?;
    let mut minterms = Vec::with_capacity(num_minterms as usize);
    for _ in 0..num_minterms {
        let len = r.len()?;
        let mut m = Vec::with_capacity(len as usize);
        for _ in 0..len {
            m.push(match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            });
        }
        minterms.push(m);
    }
    r.done().then_some(WarmStart { proposal, minterms })
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::{Circuit, GateKind};

    fn tiny() -> Circuit {
        let mut c = Circuit::new("tiny");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        c
    }

    fn sample_group(spec_net: NetId) -> Vec<CandidateRewire> {
        vec![
            CandidateRewire {
                pin: Pin::output(0),
                candidate: RewireCandidate {
                    net: spec_net,
                    from_spec: true,
                    utility: 1.0,
                    arrival: 0.0,
                },
            },
            CandidateRewire {
                pin: Pin::gate(eco_netlist::NodeId::from_index(2), 1),
                candidate: RewireCandidate {
                    net: NetId::from_index(0),
                    from_spec: false,
                    utility: 1.0,
                    arrival: 0.0,
                },
            },
        ]
    }

    #[test]
    fn run_record_roundtrip() {
        let spec = tiny();
        let root = spec.outputs()[0].net();
        let groups = vec![sample_group(root), vec![]];
        let stats = RectifyStats {
            outputs_total: 3,
            outputs_failing: 2,
            rewire_rectified: 1,
            fallbacks: 1,
            ..RectifyStats::default()
        };
        let payload = encode_run_record(&groups, &stats);
        let decoded = decode_run_record(&payload).unwrap();
        assert_eq!(decoded.outputs_total, 3);
        assert_eq!(decoded.outputs_failing, 2);
        assert_eq!(decoded.rewire_rectified, 1);
        assert_eq!(decoded.fallbacks, 1);
        assert_eq!(decoded.groups.len(), 2);
        assert_eq!(decoded.groups[0].len(), 2);
        assert_eq!(decoded.groups[0][0].pin, Pin::output(0));
        assert_eq!(decoded.groups[0][0].candidate.net, root);
        assert!(decoded.groups[0][0].candidate.from_spec);
        assert!(!decoded.groups[0][1].candidate.from_spec);
    }

    #[test]
    fn output_record_roundtrip_resolves_walk_positions() {
        let spec = tiny();
        let root = spec.outputs()[0].net();
        let walk = ConeWalk::build(&spec, root).unwrap();
        let group = sample_group(root);
        let minterms = vec![vec![true, false], vec![false, false]];
        let payload = encode_output_record(Some(&group), &minterms, &walk).unwrap();
        let decoded = decode_output_record(&payload, &walk).unwrap();
        let proposal = decoded.proposal.unwrap();
        assert_eq!(proposal.len(), 2);
        assert_eq!(proposal[0].candidate.net, root);
        assert!(proposal[0].candidate.from_spec);
        assert_eq!(decoded.minterms, minterms);
    }

    #[test]
    fn truncated_and_versioned_payloads_decode_as_misses() {
        let spec = tiny();
        let root = spec.outputs()[0].net();
        let walk = ConeWalk::build(&spec, root).unwrap();
        let payload = encode_output_record(Some(&sample_group(root)), &[], &walk).unwrap();
        for cut in 0..payload.len() {
            assert!(decode_output_record(&payload[..cut], &walk).is_none());
        }
        let mut wrong_version = payload.clone();
        wrong_version[0] = PAYLOAD_VERSION + 1;
        assert!(decode_output_record(&wrong_version, &walk).is_none());
        let mut trailing = payload;
        trailing.push(0);
        assert!(decode_output_record(&trailing, &walk).is_none());
    }

    #[test]
    fn fingerprint_tracks_semantic_fields_only() {
        let base = EcoOptions::default();
        let mut sem = EcoOptions::default();
        sem.seed ^= 1;
        assert_ne!(options_fingerprint(&base), options_fingerprint(&sem));

        let mech = EcoOptions {
            jobs: 7,
            timeout: Some(std::time::Duration::from_secs(1)),
            cache_dir: Some("/nonexistent".into()),
            checkpoint_dir: Some("/nonexistent-ckpt".into()),
            ..EcoOptions::default()
        };
        assert_eq!(options_fingerprint(&base), options_fingerprint(&mech));
    }

    #[test]
    fn session_none_when_cache_disabled() {
        let c = tiny();
        let off = EcoOptions::default();
        let budget = Budget::unlimited();
        assert!(CacheSession::open(&off, &c, &c, &budget).is_none());
        let disabled = EcoOptions {
            cache_dir: Some(std::env::temp_dir().join("eco-cache-memo-off")),
            cache_mode: eco_cache::CacheMode::Off,
            ..EcoOptions::default()
        };
        assert!(CacheSession::open(&disabled, &c, &c, &budget).is_none());
    }
}
