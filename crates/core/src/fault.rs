//! Named, deterministic fault injection across every layer of a run.
//!
//! The engine's robustness claim is an invariant, not a hope: *every run
//! ends in a verified patch or a clean degradation report — never
//! corruption, a poisoned lock, or a silently-missing output*. This module
//! gives that invariant a systematic adversary. A `FaultPlan` names one or
//! more **fault points** — places where a real deployment can fail — and
//! fires them deterministically at chosen call counts, so the chaos
//! harness (`syseco::fuzz::chaos`) can sweep the entire registry over
//! fuzz-generated scenarios and a failing combination replays exactly.
//!
//! The registry spans four layers:
//!
//! * **search resources** — forced BDD node-limit hits, SAT budget
//!   exhaustion, and synthetic per-output search panics (`FaultPolicy`,
//!   promoted here from `budget.rs` where PR 1 planted it under
//!   `cfg(test)`);
//! * **span boundaries** — cooperative cancellation or a simulated
//!   hard crash ([`SpanPoint`], one per telemetry span) exercised through
//!   `Budget::fault_span` hooks on the engine's hot path;
//! * **cache I/O** — transient or permanent read errors, short (torn)
//!   writes, and failed tempfile renames injected through the
//!   [`eco_cache::Vfs`] seam;
//! * **checkpoint I/O** — the same failure modes against the
//!   crash-safe checkpoint store.
//!
//! Everything here except [`SpanPoint`] is compiled only under `cfg(test)`
//! or the `fault-injection` feature; release builds pay nothing beyond a
//! handful of always-taken branches.

use std::fmt;

#[cfg(any(test, feature = "fault-injection"))]
use eco_cache::IoFaultSpec;

/// A point in the run where a span begins — the granularity at which
/// cancellation and simulated crashes are injected.
///
/// Names match the telemetry span names exactly (`SpanPoint::Samples` is
/// the `"samples"` span), so a trace viewer and a fault spec speak the
/// same vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanPoint {
    /// The whole-rectification root span.
    Run,
    /// Failing-output detection (initial CEC sweep).
    Detect,
    /// One per-output search (fires once per output).
    Search,
    /// Symbolic sample collection inside one search.
    Samples,
    /// Candidate point-set enumeration.
    PointSets,
    /// Resynthesis choice enumeration.
    Choices,
    /// SAT validation of one proposal.
    Validate,
    /// Merging one per-output result into the patch.
    Merge,
    /// Committing one merged proposal.
    Commit,
    /// The post-merge verification pass.
    Verify,
    /// Final patch input refinement.
    RefinePatch,
}

impl SpanPoint {
    /// Every span point, in pipeline order.
    pub const ALL: [SpanPoint; 11] = [
        SpanPoint::Run,
        SpanPoint::Detect,
        SpanPoint::Search,
        SpanPoint::Samples,
        SpanPoint::PointSets,
        SpanPoint::Choices,
        SpanPoint::Validate,
        SpanPoint::Merge,
        SpanPoint::Commit,
        SpanPoint::Verify,
        SpanPoint::RefinePatch,
    ];

    /// The telemetry span name this point corresponds to.
    pub fn name(self) -> &'static str {
        match self {
            SpanPoint::Run => "run",
            SpanPoint::Detect => "detect",
            SpanPoint::Search => "search",
            SpanPoint::Samples => "samples",
            SpanPoint::PointSets => "point_sets",
            SpanPoint::Choices => "choices",
            SpanPoint::Validate => "validate",
            SpanPoint::Merge => "merge",
            SpanPoint::Commit => "commit",
            SpanPoint::Verify => "verify",
            SpanPoint::RefinePatch => "refine_patch",
        }
    }

    /// Parses a span name back to its point.
    pub fn from_name(name: &str) -> Option<SpanPoint> {
        SpanPoint::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The index of this point in [`SpanPoint::ALL`].
    #[cfg(any(test, feature = "fault-injection"))]
    pub(crate) fn index(self) -> usize {
        SpanPoint::ALL
            .iter()
            .position(|p| *p == self)
            .expect("ALL is exhaustive")
    }
}

impl fmt::Display for SpanPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Deterministic fault schedule for the search-resource layer.
///
/// Counters are 1-based: `bdd_node_limit_from: Some(1)` faults every BDD
/// domain attempt from the first one on. Only available under `cfg(test)`
/// or the `fault-injection` feature.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Force the per-output BDD manager to a 1-node limit from the Nth
    /// domain attempt onwards.
    pub bdd_node_limit_from: Option<u64>,
    /// Force SAT validation to report exhaustion (`Unknown`) from the Nth
    /// validation onwards.
    pub sat_exhaust_from: Option<u64>,
    /// Panic inside the Nth per-output search (exactly once).
    pub panic_at: Option<u64>,
    /// Abort (veto through the BDD event hook) from the Nth garbage
    /// collection pass onwards, in any manager armed by this budget.
    pub bdd_gc_abort_from: Option<u64>,
    /// Abort from the Nth sifting reorder pass onwards, likewise.
    pub bdd_reorder_abort_from: Option<u64>,
}

/// A complete, named, replayable fault schedule for one run.
///
/// A plan is built either programmatically or from its textual *spec* — a
/// comma-separated list of `name@count` tokens (see [`FaultPlan::parse`])
/// — and the spec is what chaos repros embed, so a failing plan replays
/// byte-for-byte via `syseco-fuzz replay`.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Search-resource faults (BDD/SAT exhaustion, worker panics).
    pub policy: FaultPolicy,
    /// Trip the run's cancellation at the Nth entry to a span point.
    pub cancel_at: Option<(SpanPoint, u64)>,
    /// Simulate a hard crash (process kill) at the Nth entry to a span
    /// point: the run aborts with `EcoError::InjectedAbort`, leaving
    /// whatever checkpoint/cache state was durably committed.
    pub abort_at: Option<(SpanPoint, u64)>,
    /// Faults injected into persistent-cache I/O.
    pub cache_io: IoFaultSpec,
    /// Faults injected into checkpoint I/O.
    pub checkpoint_io: IoFaultSpec,
}

#[cfg(any(test, feature = "fault-injection"))]
impl FaultPlan {
    /// Whether this plan injects nothing.
    pub fn is_noop(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Every registered fault-point name, in canonical order.
    ///
    /// Each name, suffixed with `@count`, is a valid [`FaultPlan::parse`]
    /// token; the chaos harness sweeps exactly this list, so a fault point
    /// that is not exercised does not exist.
    pub fn point_names() -> Vec<String> {
        let mut names = vec![
            "bdd-node-limit".to_string(),
            "sat-exhaust".to_string(),
            "search-panic".to_string(),
            "bdd-gc".to_string(),
            "bdd-reorder".to_string(),
        ];
        for p in SpanPoint::ALL {
            names.push(format!("cancel:{}", p.name()));
        }
        for p in SpanPoint::ALL {
            names.push(format!("abort:{}", p.name()));
        }
        for layer in ["cache", "ckpt"] {
            for op in ["read-error", "short-write", "rename-error"] {
                names.push(format!("{layer}-{op}"));
                names.push(format!("{layer}-{op}-hard"));
            }
        }
        names
    }

    /// Parses a plan spec: comma-separated `name@count` tokens (`@count`
    /// defaults to `@1`), e.g. `"search-panic@2,cancel:merge@1"`.
    ///
    /// Counts are 1-based occurrence indices. I/O fault points are
    /// transient (one failing call, absorbed by retry) unless suffixed
    /// `-hard` (every call from the Nth onward fails).
    ///
    /// # Errors
    ///
    /// A human-readable message for an unknown point name or a malformed
    /// count.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (name, count) = match token.split_once('@') {
                Some((n, c)) => (
                    n,
                    c.parse::<u64>()
                        .map_err(|_| format!("bad fault count in {token:?}"))?,
                ),
                None => (token, 1),
            };
            if count == 0 {
                return Err(format!("fault counts are 1-based, got {token:?}"));
            }
            if let Some(span) = name.strip_prefix("cancel:") {
                let p = SpanPoint::from_name(span)
                    .ok_or_else(|| format!("unknown span point {span:?}"))?;
                plan.cancel_at = Some((p, count));
                continue;
            }
            if let Some(span) = name.strip_prefix("abort:") {
                let p = SpanPoint::from_name(span)
                    .ok_or_else(|| format!("unknown span point {span:?}"))?;
                plan.abort_at = Some((p, count));
                continue;
            }
            let (base, burst) = match name.strip_suffix("-hard") {
                Some(base) => (base, u64::MAX),
                None => (name, 1),
            };
            let window = Some((count, burst));
            match base {
                "bdd-node-limit" => plan.policy.bdd_node_limit_from = Some(count),
                "sat-exhaust" => plan.policy.sat_exhaust_from = Some(count),
                "search-panic" => plan.policy.panic_at = Some(count),
                "bdd-gc" => plan.policy.bdd_gc_abort_from = Some(count),
                "bdd-reorder" => plan.policy.bdd_reorder_abort_from = Some(count),
                "cache-read-error" => plan.cache_io.read_error_at = window,
                "cache-short-write" => plan.cache_io.short_write_at = window,
                "cache-rename-error" => plan.cache_io.rename_error_at = window,
                "ckpt-read-error" => plan.checkpoint_io.read_error_at = window,
                "ckpt-short-write" => plan.checkpoint_io.short_write_at = window,
                "ckpt-rename-error" => plan.checkpoint_io.rename_error_at = window,
                _ => return Err(format!("unknown fault point {name:?}")),
            }
        }
        Ok(plan)
    }

    /// The canonical spec of this plan; [`FaultPlan::parse`] of the result
    /// reproduces the plan exactly.
    pub fn spec(&self) -> String {
        let mut tokens = Vec::new();
        if let Some(n) = self.policy.bdd_node_limit_from {
            tokens.push(format!("bdd-node-limit@{n}"));
        }
        if let Some(n) = self.policy.sat_exhaust_from {
            tokens.push(format!("sat-exhaust@{n}"));
        }
        if let Some(n) = self.policy.panic_at {
            tokens.push(format!("search-panic@{n}"));
        }
        if let Some(n) = self.policy.bdd_gc_abort_from {
            tokens.push(format!("bdd-gc@{n}"));
        }
        if let Some(n) = self.policy.bdd_reorder_abort_from {
            tokens.push(format!("bdd-reorder@{n}"));
        }
        if let Some((p, n)) = self.cancel_at {
            tokens.push(format!("cancel:{}@{n}", p.name()));
        }
        if let Some((p, n)) = self.abort_at {
            tokens.push(format!("abort:{}@{n}", p.name()));
        }
        let io = |tokens: &mut Vec<String>, layer: &str, spec: &IoFaultSpec| {
            for (op, window) in [
                ("read-error", spec.read_error_at),
                ("short-write", spec.short_write_at),
                ("rename-error", spec.rename_error_at),
            ] {
                if let Some((at, burst)) = window {
                    let hard = if burst == u64::MAX { "-hard" } else { "" };
                    tokens.push(format!("{layer}-{op}{hard}@{at}"));
                }
            }
        };
        io(&mut tokens, "cache", &self.cache_io);
        io(&mut tokens, "ckpt", &self.checkpoint_io);
        tokens.join(",")
    }
}

/// Per-run mutable fault state, owned by the `Budget`.
///
/// Counters are atomic so one plan can be evaluated from every worker
/// thread; the lazily-built fault VFSs are shared so cache open and commit
/// see one continuous call sequence.
#[cfg(any(test, feature = "fault-injection"))]
#[derive(Debug, Default)]
pub(crate) struct FaultState {
    pub(crate) bdd_attempts: std::sync::atomic::AtomicU64,
    pub(crate) sat_validations: std::sync::atomic::AtomicU64,
    pub(crate) searches: std::sync::atomic::AtomicU64,
    /// GC / reorder passes observed across every manager this budget armed;
    /// `Arc` because the counting happens inside event-hook closures that
    /// outlive the borrow of the budget.
    pub(crate) bdd_gc_events: std::sync::Arc<std::sync::atomic::AtomicU64>,
    pub(crate) bdd_reorder_events: std::sync::Arc<std::sync::atomic::AtomicU64>,
    pub(crate) spans: [std::sync::atomic::AtomicU64; SpanPoint::ALL.len()],
    pub(crate) cancelled: std::sync::atomic::AtomicBool,
    pub(crate) injected: std::sync::Arc<std::sync::atomic::AtomicU64>,
    pub(crate) cache_vfs: std::sync::OnceLock<std::sync::Arc<eco_cache::FaultVfs>>,
    pub(crate) checkpoint_vfs: std::sync::OnceLock<std::sync::Arc<eco_cache::FaultVfs>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_names_roundtrip_and_match_telemetry_vocabulary() {
        for p in SpanPoint::ALL {
            assert_eq!(SpanPoint::from_name(p.name()), Some(p));
            assert_eq!(p.to_string(), p.name());
            assert_eq!(SpanPoint::ALL[p.index()], p);
        }
        assert_eq!(SpanPoint::from_name("nope"), None);
        assert_eq!(
            SpanPoint::from_name("point_sets"),
            Some(SpanPoint::PointSets)
        );
    }

    #[test]
    fn every_registered_point_parses_and_roundtrips() {
        for name in FaultPlan::point_names() {
            let spec = format!("{name}@2");
            let plan = FaultPlan::parse(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!plan.is_noop(), "{name} must do something");
            assert_eq!(plan.spec(), spec, "{name} spec must roundtrip");
            assert_eq!(FaultPlan::parse(&plan.spec()).unwrap(), plan);
        }
        assert_eq!(FaultPlan::point_names().len(), 5 + 22 + 12);
    }

    #[test]
    fn parse_combines_tokens_and_defaults_count() {
        let plan =
            FaultPlan::parse("search-panic, cancel:merge@3 ,cache-read-error-hard@2").unwrap();
        assert_eq!(plan.policy.panic_at, Some(1));
        assert_eq!(plan.cancel_at, Some((SpanPoint::Merge, 3)));
        assert_eq!(plan.cache_io.read_error_at, Some((2, u64::MAX)));
        assert_eq!(
            plan.spec(),
            "search-panic@1,cancel:merge@3,cache-read-error-hard@2"
        );
        assert!(FaultPlan::parse("").unwrap().is_noop());
    }

    #[test]
    fn parse_rejects_unknown_points_and_zero_counts() {
        assert!(FaultPlan::parse("warp-core-breach").is_err());
        assert!(FaultPlan::parse("cancel:nope").is_err());
        assert!(FaultPlan::parse("abort:nope@1").is_err());
        assert!(FaultPlan::parse("search-panic@0").is_err());
        assert!(FaultPlan::parse("search-panic@x").is_err());
    }
}
