//! Behavioural correspondence between an implementation and a revised
//! specification.
//!
//! Circuits correspond through their port labels (paper §3.1): inputs and
//! outputs with equal labels denote the same design signal. The engine
//! normalizes the implementation first (adding inputs that only the revised
//! specification reads), so the correspondence here can be total.

use std::collections::HashMap;

use eco_netlist::Circuit;

use crate::EcoError;

/// A matched output pair `(p_o, p'_o)` of §5.2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputPair {
    /// Port index in the implementation.
    pub impl_index: u32,
    /// Port index in the specification.
    pub spec_index: u32,
    /// The shared label.
    pub name: String,
}

/// Port correspondence between an implementation and a specification.
#[derive(Debug, Clone)]
pub struct Correspondence {
    /// Matched output pairs, in implementation port order.
    pub outputs: Vec<OutputPair>,
    /// For each implementation input position, the specification input
    /// position carrying the same label (`None` when the spec ignores it).
    pub spec_input_pos: Vec<Option<usize>>,
    spec_num_inputs: usize,
}

impl Correspondence {
    /// Builds the correspondence, requiring every implementation output and
    /// every specification input to be matched.
    ///
    /// # Errors
    ///
    /// [`EcoError::PortMismatch`] when an implementation output has no
    /// specification counterpart (its intended function would be unknown) or
    /// a specification input is absent from the implementation (the engine
    /// must add it before building the correspondence).
    pub fn build(implementation: &Circuit, spec: &Circuit) -> Result<Self, EcoError> {
        let spec_out_index: HashMap<&str, u32> = spec
            .outputs()
            .iter()
            .enumerate()
            .map(|(i, p)| (p.name(), i as u32))
            .collect();
        let mut outputs = Vec::with_capacity(implementation.num_outputs());
        for (i, port) in implementation.outputs().iter().enumerate() {
            match spec_out_index.get(port.name()) {
                Some(&si) => outputs.push(OutputPair {
                    impl_index: i as u32,
                    spec_index: si,
                    name: port.name().to_string(),
                }),
                None => {
                    return Err(EcoError::PortMismatch(format!(
                        "implementation output {:?} has no specification counterpart",
                        port.name()
                    )))
                }
            }
        }
        let spec_in_index: HashMap<&str, usize> = spec
            .inputs()
            .iter()
            .enumerate()
            .map(|(i, &id)| (spec.node(id).name().unwrap_or(""), i))
            .collect();
        let mut seen_spec_inputs = 0usize;
        let mut spec_input_pos = Vec::with_capacity(implementation.num_inputs());
        for &id in implementation.inputs() {
            let label = implementation.node(id).name().unwrap_or("");
            let pos = spec_in_index.get(label).copied();
            if pos.is_some() {
                seen_spec_inputs += 1;
            }
            spec_input_pos.push(pos);
        }
        if seen_spec_inputs != spec.num_inputs() {
            return Err(EcoError::PortMismatch(
                "specification reads inputs absent from the implementation".into(),
            ));
        }
        Ok(Correspondence {
            outputs,
            spec_input_pos,
            spec_num_inputs: spec.num_inputs(),
        })
    }

    /// Translates an implementation-ordered input assignment into the
    /// specification's input order.
    pub fn spec_assignment(&self, impl_assign: &[bool]) -> Vec<bool> {
        let mut out = vec![false; self.spec_num_inputs];
        for (pos, &v) in impl_assign.iter().enumerate() {
            if let Some(sp) = self.spec_input_pos[pos] {
                out[sp] = v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::GateKind;

    fn pair() -> (Circuit, Circuit) {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let extra = c.add_input("legacy");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        let h = c.add_gate(GateKind::Or, &[g, extra]).unwrap();
        c.add_output("y", h);

        let mut s = Circuit::new("spec");
        // Note: different declaration order.
        let sb = s.add_input("b");
        let sa = s.add_input("a");
        let sl = s.add_input("legacy");
        let g = s.add_gate(GateKind::And, &[sa, sb]).unwrap();
        let h = s.add_gate(GateKind::Or, &[g, sl]).unwrap();
        s.add_output("y", h);
        (c, s)
    }

    #[test]
    fn outputs_matched_by_name() {
        let (c, s) = pair();
        let corr = Correspondence::build(&c, &s).unwrap();
        assert_eq!(corr.outputs.len(), 1);
        assert_eq!(corr.outputs[0].name, "y");
    }

    #[test]
    fn input_translation_respects_names() {
        let (c, s) = pair();
        let corr = Correspondence::build(&c, &s).unwrap();
        // impl order: a, b, legacy; spec order: b, a, legacy.
        let translated = corr.spec_assignment(&[true, false, true]);
        assert_eq!(translated, vec![false, true, true]);
        // Behaviour must agree through the translation.
        let assign = [true, true, false];
        assert_eq!(
            c.eval(&assign).unwrap(),
            s.eval(&corr.spec_assignment(&assign)).unwrap()
        );
    }

    #[test]
    fn missing_spec_output_rejected() {
        let (mut c, s) = pair();
        let w = c.input_by_name("a").unwrap();
        c.add_output("impl_only", w);
        assert!(matches!(
            Correspondence::build(&c, &s),
            Err(EcoError::PortMismatch(_))
        ));
    }

    #[test]
    fn missing_impl_input_rejected() {
        let (c, mut s) = pair();
        let extra = s.add_input("brand_new");
        let old = s.outputs()[0].net();
        let g = s.add_gate(GateKind::And, &[old, extra]).unwrap();
        s.set_output_net(0, g).unwrap();
        assert!(matches!(
            Correspondence::build(&c, &s),
            Err(EcoError::PortMismatch(_))
        ));
    }

    #[test]
    fn spec_may_ignore_impl_inputs() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let _unused = c.add_input("unused_by_spec");
        c.add_output("y", a);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        s.add_output("y", sa);
        let corr = Correspondence::build(&c, &s).unwrap();
        assert_eq!(corr.spec_input_pos, vec![Some(0), None]);
    }
}
