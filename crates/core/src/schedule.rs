//! The multi-threaded per-output scheduler.
//!
//! Per-output rectification searches are independent (each owns its BDD
//! manager, SAT solvers, and RNG stream), so [`WorkerPool::run`] fans them
//! out over `std::thread::scope` workers. Determinism is preserved by
//! construction: work item `i` always writes result slot `i`, every item's
//! RNG stream is derived from the run seed and the item (not the worker),
//! and the caller merges slots in index order — so results are bit-identical
//! for any worker count; only wall-clock changes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// BDD and netlist traversals recurse; give workers a deep stack so a cone
/// that fits on the (8 MiB) main thread also fits on a worker.
const WORKER_STACK: usize = 16 << 20;

/// A fixed-width fan-out helper over scoped threads.
///
/// The pool itself is trivially cheap to construct; its value is the
/// deterministic slot-indexed result collection and the single place where
/// worker count policy lives. One pool instance is reused across the jobs of
/// a batch run ([`Syseco::rectify_all`](crate::Syseco::rectify_all)).
#[derive(Debug, Clone, Copy)]
pub(crate) struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool running `workers` searches concurrently (minimum 1).
    pub(crate) fn new(workers: usize) -> Self {
        WorkerPool {
            workers: workers.max(1),
        }
    }

    /// The configured worker width.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(worker, 0..n)` and returns the results in index order.
    ///
    /// `worker` identifies the executing lane in `0..workers()` — results
    /// must never depend on it (it only routes worker-local resources such
    /// as metrics shards); the item index is what seeds the search. With one
    /// worker (or one item) everything runs inline on the calling thread —
    /// no spawn overhead, same results. Otherwise `min(workers, n)` scoped
    /// threads claim indices from a shared counter; `f` must contain its own
    /// panics (the rectification worker does, via `catch_unwind`) — a panic
    /// escaping `f` aborts the whole run.
    pub(crate) fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        if self.workers == 1 || n <= 1 {
            return (0..n).map(|i| f(0, i)).collect();
        }
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let slots = Mutex::new(slots);
        let next = AtomicUsize::new(0);
        let threads = self.workers.min(n);
        let (f, slots_ref, next_ref) = (&f, &slots, &next);
        std::thread::scope(|scope| {
            for w in 0..threads {
                let worker = std::thread::Builder::new()
                    .name(format!("syseco-cone-{w}"))
                    .stack_size(WORKER_STACK);
                let handle = worker.spawn_scoped(scope, move || loop {
                    let i = next_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(w, i);
                    // A panic in another worker must not cascade through
                    // lock poisoning: the slot vector is only ever written
                    // whole-`Some` under the lock, so its contents stay
                    // valid even if a holder died.
                    slots_ref.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(result);
                });
                // Spawn failure (resource exhaustion) is not fatal: the work
                // is still drained by whichever workers did start, or by the
                // fallback loop below when none did.
                drop(handle);
            }
        });
        let mut slots = slots.into_inner().unwrap_or_else(PoisonError::into_inner);
        // If thread spawning failed entirely, finish inline.
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(f(0, i));
            }
        }
        slots.into_iter().map(|s| s.unwrap()).collect()
    }
}

/// Derives the RNG seed of one per-output search from the run seed.
///
/// SplitMix64 over the output index decorrelates the streams; tying the
/// stream to the *output* (not the worker or the completion order) is what
/// makes results independent of `jobs`.
pub(crate) fn per_output_seed(run_seed: u64, impl_index: u32) -> u64 {
    let mut z = run_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(impl_index) + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_are_slot_ordered_for_any_width() {
        let inputs: Vec<usize> = (0..37).collect();
        let expect: Vec<usize> = inputs.iter().map(|i| i * i).collect();
        for workers in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(workers);
            let got = pool.run(inputs.len(), |_, i| i * i);
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn zero_items_and_zero_workers_are_fine() {
        assert!(WorkerPool::new(0).run(0, |_, i| i).is_empty());
        assert_eq!(WorkerPool::new(0).workers(), 1);
        assert_eq!(WorkerPool::new(4).run(1, |_, i| i + 1), vec![1]);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = std::sync::Mutex::new(Vec::new());
        WorkerPool::new(7).run(100, |_, i| hits.lock().unwrap().push(i));
        let mut hits = hits.into_inner().unwrap();
        hits.sort_unstable();
        assert_eq!(hits, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn worker_index_stays_within_pool_width() {
        let workers = 5;
        let seen = std::sync::Mutex::new(HashSet::new());
        WorkerPool::new(workers).run(64, |w, i| {
            seen.lock().unwrap().insert(w);
            i
        });
        let seen = seen.into_inner().unwrap();
        assert!(!seen.is_empty());
        assert!(seen.iter().all(|&w| w < workers), "{seen:?}");
    }

    #[test]
    fn per_output_seeds_are_distinct_and_stable() {
        let seeds: HashSet<u64> = (0..1000).map(|i| per_output_seed(0xEC0, i)).collect();
        assert_eq!(seeds.len(), 1000, "seed streams must not collide");
        assert_eq!(per_output_seed(1, 2), per_output_seed(1, 2));
        assert_ne!(per_output_seed(1, 2), per_output_seed(2, 2));
    }
}
