//! The `Syseco` engine facade.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use eco_netlist::{Circuit, NetId};
use eco_telemetry::{ArgValue, Counter, SpanRecord, Telemetry};

use crate::budget::Budget;
use crate::checkpoint::CheckpointSession;
use crate::correspond::Correspondence;
use crate::error_domain::{classify_outputs, Equivalence};
use crate::fault::SpanPoint;
use crate::memo::{CacheSession, RunRecord};
use crate::options::EcoOptions;
use crate::patch::{refine_patch_inputs_timed, Patch, PatchStats};
use crate::progress::ProgressCallback;
use crate::rectify::{rewire_rectify_with, RectifyStats};
use crate::schedule::WorkerPool;
use crate::session::Session;
use crate::validate::apply_rewires;
use crate::EcoError;

/// Result of a rectification run.
#[derive(Debug)]
pub struct EcoResult {
    /// The rectified implementation.
    pub patched: Circuit,
    /// The applied patch (rewires and cloned logic).
    pub patch: Patch,
    /// Table-2 style patch attributes.
    pub stats: PatchStats,
    /// Search statistics.
    pub rectify: RectifyStats,
    /// Wall-clock time of the run.
    pub runtime: Duration,
    /// Structured trace spans of the run, in deterministic merge-slot
    /// order. Empty unless the run was given an enabled
    /// [`Telemetry`] (see [`Session::with_telemetry`]).
    pub trace: Vec<SpanRecord>,
}

/// The symbolic-sampling ECO engine of the paper.
///
/// # Example
///
/// ```
/// use eco_netlist::{Circuit, GateKind};
/// use syseco::{EcoOptions, Syseco};
///
/// # fn main() -> Result<(), syseco::EcoError> {
/// // Implementation computes AND; the revised specification wants OR.
/// let mut c = Circuit::new("impl");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let g = c.add_gate(GateKind::And, &[a, b])?;
/// c.add_output("y", g);
/// let mut s = Circuit::new("spec");
/// let a = s.add_input("a");
/// let b = s.add_input("b");
/// let g = s.add_gate(GateKind::Or, &[a, b])?;
/// s.add_output("y", g);
///
/// let engine = Syseco::new(EcoOptions::builder().num_samples(64).jobs(1).build());
/// let result = engine.rectify(&c, &s)?;
/// assert!(syseco::verify_rectification(&result.patched, &s)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Syseco {
    options: EcoOptions,
}

impl Syseco {
    /// Creates an engine with the given options.
    pub fn new(options: EcoOptions) -> Self {
        Syseco { options }
    }

    /// The engine's options.
    pub fn options(&self) -> &EcoOptions {
        &self.options
    }

    /// Rectifies `implementation` against the revised specification `spec`,
    /// returning the patched circuit and the patch.
    ///
    /// Specification inputs absent from the implementation are added as new
    /// primary inputs; specification-only outputs are added as new ports
    /// (initially constant) and rectified like any failing output.
    ///
    /// # Errors
    ///
    /// [`EcoError::PortMismatch`] when an implementation output has no
    /// specification counterpart, and [`EcoError`] wrappers for malformed
    /// circuits.
    pub fn rectify(&self, implementation: &Circuit, spec: &Circuit) -> Result<EcoResult, EcoError> {
        let budget = self.default_budget();
        self.rectify_with_budget(implementation, spec, &budget)
    }

    /// Like [`Syseco::rectify`], but governed by an explicit [`Budget`]
    /// (deadline and/or [`crate::CancelToken`]). On exhaustion the run
    /// degrades gracefully — remaining outputs take the output-rewire
    /// fallback and the cuts are recorded in
    /// [`RectifyStats::degradations`] — instead of aborting.
    ///
    /// # Errors
    ///
    /// Same as [`Syseco::rectify`].
    pub fn rectify_with_budget(
        &self,
        implementation: &Circuit,
        spec: &Circuit,
        budget: &Budget,
    ) -> Result<EcoResult, EcoError> {
        let pool = WorkerPool::new(self.options.effective_jobs());
        self.rectify_with(
            implementation,
            spec,
            budget,
            None,
            &pool,
            &Telemetry::disabled(),
        )
    }

    /// Rectifies a batch of (implementation, specification) pairs with one
    /// shared worker pool.
    ///
    /// Jobs run sequentially in input order (results line up with `jobs`);
    /// parallelism is applied *within* each job, across its failing outputs.
    /// Each job gets its own budget derived from
    /// [`EcoOptions::timeout`] — use a [`Session`] with a
    /// [`crate::CancelToken`] to cancel a whole batch.
    ///
    /// # Errors
    ///
    /// Returns the first job's [`EcoError`], abandoning the rest.
    pub fn rectify_all(&self, jobs: &[(&Circuit, &Circuit)]) -> Result<Vec<EcoResult>, EcoError> {
        let pool = WorkerPool::new(self.options.effective_jobs());
        let telemetry = Telemetry::disabled();
        jobs.iter()
            .map(|(implementation, spec)| {
                let budget = self.default_budget();
                self.rectify_with(implementation, spec, &budget, None, &pool, &telemetry)
            })
            .collect()
    }

    /// Starts a [`Session`] over this engine's options — the handle for
    /// attaching a cancellation token and a progress observer.
    pub fn session(&self) -> Session {
        Session::new(self.options.clone())
    }

    /// A budget derived from the configured timeout.
    pub(crate) fn default_budget(&self) -> Budget {
        match self.options.timeout {
            Some(t) => Budget::with_deadline(t),
            None => Budget::unlimited(),
        }
    }

    /// The full engine flow with an explicit observer, worker pool, and
    /// telemetry sink — the internal entry shared by [`Session`] and the
    /// batch API.
    pub(crate) fn rectify_with(
        &self,
        implementation: &Circuit,
        spec: &Circuit,
        budget: &Budget,
        observer: Option<&ProgressCallback>,
        pool: &WorkerPool,
        telemetry: &Telemetry,
    ) -> Result<EcoResult, EcoError> {
        let start = Instant::now();
        implementation.check_well_formed()?;
        spec.check_well_formed()?;
        let named = name_spec_inputs(spec)?;
        let spec = named.as_ref().unwrap_or(spec);
        let mut patched = implementation.clone();
        normalize_ports(&mut patched, spec)?;
        // Persistent cache (DESIGN.md §11). On a full-key hit the run is
        // *replayed* — the recorded rewire groups are applied and the result
        // re-verified end to end — so a stale or colliding record degrades
        // to the cold path instead of corrupting the output.
        let mut cache = CacheSession::open(&self.options, &patched, spec, budget);
        let mut replay_rejects = 0u64;
        if let Some(session) = cache.as_mut() {
            if let Some(record) = session.run_record() {
                match self.replay_run(&patched, spec, &record, budget, telemetry, start, session) {
                    Some(result) => return Ok(result),
                    None => replay_rejects = 1,
                }
            }
        }
        // Crash-safe checkpointing (DESIGN.md §13). Opened on the
        // post-normalization circuit — the exact one the fan-out searches —
        // so the run key covers what resume will actually rectify.
        let checkpoint = CheckpointSession::open(&self.options, &patched, spec, budget);
        let (patch, mut rectify, mut trace, committed) = rewire_rectify_with(
            &mut patched,
            spec,
            &self.options,
            budget,
            observer,
            pool,
            telemetry,
            cache.as_mut(),
            checkpoint.as_ref(),
        )?;
        // Patch-input refinement (§5.2 post-processing): reuse existing
        // implementation logic inside the cloned patch. Under level-driven
        // selection the merge is timing-aware. It is a pure optimisation,
        // so a spent budget skips it and the run returns promptly.
        if !budget.is_exhausted() {
            let mut tb = telemetry.buffer(0);
            let span = tb.start();
            budget.fault_span(SpanPoint::RefinePatch)?;
            let model = eco_timing::DelayModel::default();
            refine_patch_inputs_timed(
                &mut patched,
                &patch,
                self.options.validation_budget,
                self.options.seed ^ 0x9e3779b97f4a7c15,
                self.options.level_driven.then_some(&model),
            )?;
            let rewires = patch.rewires().len() as u64;
            tb.end_with(span, "refine_patch", "rectify", || {
                vec![("rewires", ArgValue::U64(rewires))]
            });
            trace.extend(tb.into_spans());
        }
        patched.sweep();
        let stats = patch.stats(&patched);
        rectify.cache_verify_rejects += replay_rejects;
        if let Some(session) = cache.as_mut() {
            session.record_run(&committed, &rectify);
            // A commit failure loses warm-start data for future runs, never
            // this run's result.
            let _ = session.commit();
            rectify.cache_misses = session.misses;
            // `+=`: the checkpoint store's counters are already folded in.
            rectify.cache_corrupt_segments += session.corrupt_segments();
            rectify.cache_io_errors += session.io_errors();
            rectify.cache_retries += session.retries();
            let shard = telemetry.shard();
            if shard.is_enabled() {
                shard.add(Counter::CacheMisses, session.misses);
                shard.add(Counter::CacheVerifyRejects, replay_rejects);
            }
        }
        let shard = telemetry.shard();
        if shard.is_enabled() {
            shard.add(
                Counter::CacheCorruptSegments,
                rectify.cache_corrupt_segments,
            );
            shard.add(Counter::CacheIoErrors, rectify.cache_io_errors);
            shard.add(Counter::CacheRetries, rectify.cache_retries);
            shard.add(Counter::FaultInjections, budget.faults_fired());
        }
        Ok(EcoResult {
            stats,
            rectify,
            runtime: start.elapsed(),
            patched,
            patch,
            trace,
        })
    }

    /// Attempts to reproduce a finished run from its cache record: applies
    /// the committed rewire groups in order, reruns the deterministic
    /// post-processing, and accepts only when a full equivalence check
    /// passes. By construction this replay is byte-identical to the cold
    /// run that recorded it (`apply_rewires` is the merge phase's only
    /// circuit mutation and the post-processing is seeded). Returns `None`
    /// on any mismatch — apply error, damaged verification, budget-unknown
    /// verdicts — and the caller falls back to the cold path.
    #[allow(clippy::too_many_arguments)]
    fn replay_run(
        &self,
        base: &Circuit,
        spec: &Circuit,
        record: &RunRecord,
        budget: &Budget,
        telemetry: &Telemetry,
        start: Instant,
        session: &mut CacheSession,
    ) -> Option<EcoResult> {
        let mut patched = base.clone();
        let mut patch = Patch::new(patched.num_nodes());
        let mut shared_clones: HashMap<NetId, NetId> = HashMap::new();
        for group in &record.groups {
            let (ops, cloned) =
                apply_rewires(&mut patched, spec, group, &mut shared_clones).ok()?;
            patch.record_cloned(cloned);
            for op in ops {
                patch.record_rewire(op);
            }
        }
        patched.sweep();
        if !budget.is_exhausted() {
            let model = eco_timing::DelayModel::default();
            refine_patch_inputs_timed(
                &mut patched,
                &patch,
                self.options.validation_budget,
                self.options.seed ^ 0x9e3779b97f4a7c15,
                self.options.level_driven.then_some(&model),
            )
            .ok()?;
        }
        patched.sweep();
        let corr = Correspondence::build(&patched, spec).ok()?;
        let verdicts = classify_outputs(
            &patched,
            spec,
            &corr,
            Some(self.options.validation_budget.saturating_mul(10)),
            Some(budget),
        )
        .ok()?;
        if !verdicts
            .iter()
            .all(|v| matches!(v, Equivalence::Equivalent))
        {
            return None;
        }
        let rectify = RectifyStats {
            outputs_total: record.outputs_total,
            outputs_failing: record.outputs_failing,
            rewire_rectified: record.rewire_rectified,
            fallbacks: record.fallbacks,
            cache_hits: 1,
            cache_misses: session.misses,
            cache_corrupt_segments: session.corrupt_segments(),
            cache_io_errors: session.io_errors(),
            cache_retries: session.retries(),
            ..Default::default()
        };
        let shard = telemetry.shard();
        if shard.is_enabled() {
            shard.add(Counter::CacheHits, 1);
            shard.add(Counter::CacheMisses, session.misses);
            shard.add(Counter::CacheCorruptSegments, session.corrupt_segments());
            shard.add(Counter::CacheIoErrors, session.io_errors());
            shard.add(Counter::CacheRetries, session.retries());
        }
        let stats = patch.stats(&patched);
        Some(EcoResult {
            stats,
            rectify,
            runtime: start.elapsed(),
            patched,
            patch,
            trace: Vec::new(),
        })
    }
}

/// Gives every unnamed (empty-labelled) specification input a stable
/// generated name `__pi<position>`, so it cannot silently alias another port
/// during normalization. Returns the renamed clone, or `None` when every
/// input already has a proper name.
///
/// # Errors
///
/// [`EcoError::PortMismatch`] when two specification inputs share a
/// (non-empty) name.
pub(crate) fn name_spec_inputs(spec: &Circuit) -> Result<Option<Circuit>, EcoError> {
    let mut taken: std::collections::HashSet<String> = std::collections::HashSet::new();
    // Existing names are claimed first so generated ones cannot collide.
    for &id in spec.inputs() {
        let name = spec.node(id).name().unwrap_or("");
        if name.is_empty() {
            continue;
        }
        if !taken.insert(name.to_string()) {
            return Err(EcoError::PortMismatch(format!(
                "specification has duplicate input name {name:?}"
            )));
        }
    }
    let mut renames: Vec<(usize, String)> = Vec::new();
    for (pos, &id) in spec.inputs().iter().enumerate() {
        if !spec.node(id).name().unwrap_or("").is_empty() {
            continue;
        }
        let mut label = format!("__pi{pos}");
        while !taken.insert(label.clone()) {
            label.push('_');
        }
        renames.push((pos, label));
    }
    if renames.is_empty() {
        return Ok(None);
    }
    let mut named = spec.clone();
    for (pos, label) in renames {
        named.set_input_name(pos, label)?;
    }
    Ok(Some(named))
}

/// Adds spec-only inputs and outputs to the implementation so the port
/// correspondence becomes total. Call [`name_spec_inputs`] first: unnamed
/// spec inputs would otherwise all map to the empty-string label.
///
/// # Errors
///
/// [`EcoError::PortMismatch`] when the specification declares a duplicate
/// input or output name.
pub(crate) fn normalize_ports(
    implementation: &mut Circuit,
    spec: &Circuit,
) -> Result<(), EcoError> {
    let mut seen_in = std::collections::HashSet::new();
    for &id in spec.inputs() {
        let label = spec.node(id).name().unwrap_or("").to_string();
        if !seen_in.insert(label.clone()) {
            return Err(EcoError::PortMismatch(format!(
                "specification has duplicate input name {label:?}"
            )));
        }
        if implementation.input_by_name(&label).is_none() {
            implementation.add_input(label);
        }
    }
    let mut seen_out = std::collections::HashSet::new();
    for port in spec.outputs() {
        if !seen_out.insert(port.name().to_string()) {
            return Err(EcoError::PortMismatch(format!(
                "specification has duplicate output name {:?}",
                port.name()
            )));
        }
        if implementation.output_by_name(port.name()).is_none() {
            let k = implementation.constant(false);
            implementation.add_output(port.name(), k);
        }
    }
    Ok(())
}

/// Verifies full behavioural equivalence of a patched implementation
/// against the specification (unbudgeted SAT per output pair).
///
/// # Errors
///
/// [`EcoError`] on port mismatches or malformed circuits.
pub fn verify_rectification(patched: &Circuit, spec: &Circuit) -> Result<bool, EcoError> {
    let corr = Correspondence::build(patched, spec)?;
    let verdicts = classify_outputs(patched, spec, &corr, None, None)?;
    Ok(verdicts
        .iter()
        .all(|v| matches!(v, Equivalence::Equivalent)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::GateKind;

    #[test]
    fn normalize_adds_missing_ports() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        c.add_output("y", a);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b_new");
        let g = s.add_gate(GateKind::And, &[sa, sb]).unwrap();
        s.add_output("y", g);
        s.add_output("extra", sb);
        normalize_ports(&mut c, &s).unwrap();
        assert!(c.input_by_name("b_new").is_some());
        assert!(c.output_by_name("extra").is_some());
        assert!(Correspondence::build(&c, &s).is_ok());
    }

    #[test]
    fn unnamed_spec_inputs_get_stable_generated_names() {
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input(""); // unnamed
        let g = s.add_gate(GateKind::And, &[sa, sb]).unwrap();
        s.add_output("y", g);
        let named = name_spec_inputs(&s).unwrap().expect("rename required");
        assert_eq!(named.node(named.inputs()[1]).name(), Some("__pi1"));
        // Deterministic: running it again on the renamed spec is a no-op.
        assert!(name_spec_inputs(&named).unwrap().is_none());
        // The generated name flows into normalization without collisions.
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        c.add_output("y", a);
        normalize_ports(&mut c, &named).unwrap();
        assert!(c.input_by_name("__pi1").is_some());
        assert!(c.check_well_formed().is_ok());
    }

    #[test]
    fn generated_input_names_avoid_existing_labels() {
        let mut s = Circuit::new("spec");
        s.add_input("__pi1"); // occupies the name position 1 would get
        let sb = s.add_input("");
        s.add_output("y", sb);
        let named = name_spec_inputs(&s).unwrap().expect("rename required");
        assert_eq!(named.node(named.inputs()[1]).name(), Some("__pi1_"));
        assert!(named.check_well_formed().is_ok());
    }

    #[test]
    fn duplicate_spec_output_names_are_rejected() {
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        s.add_output("y", sa);
        s.add_output("y", sa);
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        c.add_output("y", a);
        assert!(matches!(
            normalize_ports(&mut c, &s),
            Err(EcoError::PortMismatch(_))
        ));
    }

    #[test]
    fn engine_rectifies_with_new_ports() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        c.add_output("y", a);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b_new");
        let g = s.add_gate(GateKind::And, &[sa, sb]).unwrap();
        s.add_output("y", g);
        let engine = Syseco::new(EcoOptions::with_seed(2));
        let result = engine.rectify(&c, &s).unwrap();
        assert!(verify_rectification(&result.patched, &s).unwrap());
    }

    #[test]
    fn batch_api_rectifies_every_pair_in_order() {
        let mut c1 = Circuit::new("impl1");
        let a = c1.add_input("a");
        let b = c1.add_input("b");
        let g = c1.add_gate(GateKind::And, &[a, b]).unwrap();
        c1.add_output("y", g);
        let mut s1 = Circuit::new("spec1");
        let sa = s1.add_input("a");
        let sb = s1.add_input("b");
        let sg = s1.add_gate(GateKind::Or, &[sa, sb]).unwrap();
        s1.add_output("y", sg);
        // Second job is already equivalent.
        let c2 = s1.clone();
        let s2 = s1.clone();
        let engine = Syseco::new(EcoOptions::with_seed(4));
        let results = engine.rectify_all(&[(&c1, &s1), (&c2, &s2)]).unwrap();
        assert_eq!(results.len(), 2);
        assert!(verify_rectification(&results[0].patched, &s1).unwrap());
        assert_eq!(results[0].rectify.outputs_failing, 1);
        assert_eq!(results[1].rectify.outputs_failing, 0);
    }

    #[test]
    fn verify_detects_wrong_circuit() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sg = s.add_gate(GateKind::Or, &[sa, sb]).unwrap();
        s.add_output("y", sg);
        assert!(!verify_rectification(&c, &s).unwrap());
        assert!(verify_rectification(&c, &c.clone()).unwrap());
    }
}
