//! The `Syseco` engine facade.

use std::time::{Duration, Instant};

use eco_netlist::Circuit;

use crate::correspond::Correspondence;
use crate::error_domain::{classify_outputs, Equivalence};
use crate::options::EcoOptions;
use crate::patch::{refine_patch_inputs_timed, Patch, PatchStats};
use crate::rectify::{rewire_rectification, RectifyStats};
use crate::EcoError;

/// Result of a rectification run.
#[derive(Debug)]
pub struct EcoResult {
    /// The rectified implementation.
    pub patched: Circuit,
    /// The applied patch (rewires and cloned logic).
    pub patch: Patch,
    /// Table-2 style patch attributes.
    pub stats: PatchStats,
    /// Search statistics.
    pub rectify: RectifyStats,
    /// Wall-clock time of the run.
    pub runtime: Duration,
}

/// The symbolic-sampling ECO engine of the paper.
///
/// # Example
///
/// ```
/// use eco_netlist::{Circuit, GateKind};
/// use syseco::{EcoOptions, Syseco};
///
/// # fn main() -> Result<(), syseco::EcoError> {
/// // Implementation computes AND; the revised specification wants OR.
/// let mut c = Circuit::new("impl");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let g = c.add_gate(GateKind::And, &[a, b])?;
/// c.add_output("y", g);
/// let mut s = Circuit::new("spec");
/// let a = s.add_input("a");
/// let b = s.add_input("b");
/// let g = s.add_gate(GateKind::Or, &[a, b])?;
/// s.add_output("y", g);
///
/// let engine = Syseco::new(EcoOptions::default());
/// let result = engine.rectify(&c, &s)?;
/// assert!(syseco::verify_rectification(&result.patched, &s)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Syseco {
    options: EcoOptions,
}

impl Syseco {
    /// Creates an engine with the given options.
    pub fn new(options: EcoOptions) -> Self {
        Syseco { options }
    }

    /// The engine's options.
    pub fn options(&self) -> &EcoOptions {
        &self.options
    }

    /// Rectifies `implementation` against the revised specification `spec`,
    /// returning the patched circuit and the patch.
    ///
    /// Specification inputs absent from the implementation are added as new
    /// primary inputs; specification-only outputs are added as new ports
    /// (initially constant) and rectified like any failing output.
    ///
    /// # Errors
    ///
    /// [`EcoError::PortMismatch`] when an implementation output has no
    /// specification counterpart, and [`EcoError`] wrappers for malformed
    /// circuits.
    pub fn rectify(&self, implementation: &Circuit, spec: &Circuit) -> Result<EcoResult, EcoError> {
        let start = Instant::now();
        implementation.check_well_formed()?;
        spec.check_well_formed()?;
        let mut patched = implementation.clone();
        normalize_ports(&mut patched, spec);
        let (patch, rectify) = rewire_rectification(&mut patched, spec, &self.options)?;
        // Patch-input refinement (§5.2 post-processing): reuse existing
        // implementation logic inside the cloned patch. Under level-driven
        // selection the merge is timing-aware.
        let model = eco_timing::DelayModel::default();
        refine_patch_inputs_timed(
            &mut patched,
            &patch,
            self.options.validation_budget,
            self.options.seed ^ 0x9e3779b97f4a7c15,
            self.options.level_driven.then_some(&model),
        )?;
        patched.sweep();
        let stats = patch.stats(&patched);
        Ok(EcoResult {
            stats,
            rectify,
            runtime: start.elapsed(),
            patched,
            patch,
        })
    }
}

/// Adds spec-only inputs and outputs to the implementation so the port
/// correspondence becomes total.
pub(crate) fn normalize_ports(implementation: &mut Circuit, spec: &Circuit) {
    for &id in spec.inputs() {
        let label = spec.node(id).name().unwrap_or("").to_string();
        if implementation.input_by_name(&label).is_none() {
            implementation.add_input(label);
        }
    }
    for port in spec.outputs() {
        if implementation.output_by_name(port.name()).is_none() {
            let k = implementation.constant(false);
            implementation.add_output(port.name(), k);
        }
    }
}

/// Verifies full behavioural equivalence of a patched implementation
/// against the specification (unbudgeted SAT per output pair).
///
/// # Errors
///
/// [`EcoError`] on port mismatches or malformed circuits.
pub fn verify_rectification(patched: &Circuit, spec: &Circuit) -> Result<bool, EcoError> {
    let corr = Correspondence::build(patched, spec)?;
    let verdicts = classify_outputs(patched, spec, &corr, None)?;
    Ok(verdicts
        .iter()
        .all(|v| matches!(v, Equivalence::Equivalent)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use eco_netlist::GateKind;

    #[test]
    fn normalize_adds_missing_ports() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        c.add_output("y", a);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b_new");
        let g = s.add_gate(GateKind::And, &[sa, sb]).unwrap();
        s.add_output("y", g);
        s.add_output("extra", sb);
        normalize_ports(&mut c, &s);
        assert!(c.input_by_name("b_new").is_some());
        assert!(c.output_by_name("extra").is_some());
        assert!(Correspondence::build(&c, &s).is_ok());
    }

    #[test]
    fn engine_rectifies_with_new_ports() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        c.add_output("y", a);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b_new");
        let g = s.add_gate(GateKind::And, &[sa, sb]).unwrap();
        s.add_output("y", g);
        let engine = Syseco::new(EcoOptions::with_seed(2));
        let result = engine.rectify(&c, &s).unwrap();
        assert!(verify_rectification(&result.patched, &s).unwrap());
    }

    #[test]
    fn verify_detects_wrong_circuit() {
        let mut c = Circuit::new("impl");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let g = c.add_gate(GateKind::And, &[a, b]).unwrap();
        c.add_output("y", g);
        let mut s = Circuit::new("spec");
        let sa = s.add_input("a");
        let sb = s.add_input("b");
        let sg = s.add_gate(GateKind::Or, &[sa, sb]).unwrap();
        s.add_output("y", sg);
        assert!(!verify_rectification(&c, &s).unwrap());
        assert!(verify_rectification(&c, &c.clone()).unwrap());
    }
}
