//! Differential fuzzing front end for the syseco engine.
//!
//! ```text
//! syseco-fuzz run --seed N --iters N [--out-dir DIR] [--cache-every N]
//!                 [--heavy] [--mutations N]
//! syseco-fuzz chaos --seed N --scenarios N [--out-dir DIR] [--heavy]
//!                   [--mutations N]
//! syseco-fuzz replay <file.eco-repro>
//! ```
//!
//! `run` generates mutation-based ECO scenarios (implementation plus a
//! semantics-changed spec with a known delta) and pushes each through the
//! full cross-oracle conformance matrix: bit-parallel simulation, SAT CEC,
//! BDD equivalence, `Syseco` rectification at one and four workers
//! (byte-identical patched netlists, patch verified against the spec),
//! and — every `--cache-every`-th iteration — cold/warm replay through a
//! scratch persistent cache. Any disagreement is shrunk and written to
//! `DIR/repro-<seed>.eco-repro` (default `fuzz-repros/`). Standard output
//! is byte-stable for a fixed `--seed`/`--iters`; progress goes to stderr.
//!
//! `chaos` (builds with `--features fault-injection` only) sweeps every
//! registered fault point of the engine's `FaultPlan` over each generated
//! scenario: checkpointed rectification with the fault armed, asserting
//! that every run ends in a verified patch or a clean degradation — and
//! that a simulated crash resumes from its checkpoint directory to a
//! byte-identical patch. Violations are written as `.eco-repro` files with
//! the triggering fault plan embedded. See DESIGN.md §13.
//!
//! `replay` re-runs the whole matrix on a saved `.eco-repro` file and
//! prints each disagreement. A repro carrying a `fault` line re-arms the
//! same fault plan (requires `--features fault-injection`).
//!
//! Exit codes: 0 no disagreements, 1 disagreements found, 2 usage error.

use std::process::ExitCode;

use syseco::fuzz::{parse_repro, write_repro, FuzzConfig, FuzzRunner, Repro};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  syseco-fuzz run --seed N --iters N [--out-dir DIR] [--cache-every N]\n                  \
         [--heavy] [--mutations N]\n  syseco-fuzz chaos --seed N --scenarios N [--out-dir DIR] [--heavy]\n                    \
         [--mutations N]\n  syseco-fuzz replay <file.eco-repro>"
    );
    ExitCode::from(2)
}

fn parse_u64(flag: &str, value: Option<&String>) -> Result<u64, String> {
    let value = value.ok_or_else(|| format!("{flag} needs a value"))?;
    value
        .parse()
        .map_err(|_| format!("{flag}: not a number: {value}"))
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut seed = None;
    let mut iters = None;
    let mut out_dir = String::from("fuzz-repros");
    let mut config = FuzzConfig::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = args.get(i + 1);
        let step = match arg {
            "--seed" => match parse_u64(arg, value) {
                Ok(v) => {
                    seed = Some(v);
                    2
                }
                Err(e) => return fail_usage(&e),
            },
            "--iters" => match parse_u64(arg, value) {
                Ok(v) => {
                    iters = Some(v);
                    2
                }
                Err(e) => return fail_usage(&e),
            },
            "--cache-every" => match parse_u64(arg, value) {
                Ok(v) => {
                    config.cache_every = v;
                    2
                }
                Err(e) => return fail_usage(&e),
            },
            "--mutations" => match parse_u64(arg, value) {
                Ok(v) if v >= 1 => {
                    config.scenario.mutations = (v as usize, v as usize);
                    2
                }
                _ => return fail_usage("--mutations needs a number >= 1"),
            },
            "--out-dir" => match value {
                Some(v) => {
                    out_dir = v.clone();
                    2
                }
                None => return fail_usage("--out-dir needs a value"),
            },
            "--heavy" => {
                config.scenario.heavy_optimization = true;
                1
            }
            other => return fail_usage(&format!("unknown flag: {other}")),
        };
        i += step;
    }
    let (Some(seed), Some(iters)) = (seed, iters) else {
        return fail_usage("run needs both --seed and --iters");
    };

    let runner = FuzzRunner::new(config);
    let report = match runner.run(seed, iters, |done, failures| {
        if done % 50 == 0 || done == iters {
            eprintln!("[syseco-fuzz] {done}/{iters} iterations, {failures} failure(s)");
        }
    }) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("syseco-fuzz: infrastructure error: {e}");
            return ExitCode::from(2);
        }
    };

    for failure in &report.failures {
        println!(
            "FAIL iteration {} seed {:#018x}: {}",
            failure.iteration, failure.seed, failure.repro.check
        );
        for d in &failure.disagreements {
            println!("  {d}");
        }
        let path = format!("{out_dir}/repro-{:016x}.eco-repro", failure.seed);
        if let Err(e) = save_repro(&path, &failure.repro) {
            eprintln!("syseco-fuzz: cannot write {path}: {e}");
        } else {
            println!("  repro written to {path}");
        }
    }
    println!(
        "ran {} iteration(s) ({} with cache replay): {} failure(s)",
        report.iterations,
        report.cache_checked,
        report.failures.len()
    );
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// The chaos fault sweep. Compiled only with `fault-injection`; the
/// stub below keeps the verb discoverable in default builds.
#[cfg(feature = "fault-injection")]
fn cmd_chaos(args: &[String]) -> ExitCode {
    use syseco::fuzz::chaos::{ChaosConfig, ChaosRunner};

    let mut seed = None;
    let mut scenarios = None;
    let mut out_dir = String::from("fuzz-repros");
    let mut config = ChaosConfig::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let value = args.get(i + 1);
        let step = match arg {
            "--seed" => match parse_u64(arg, value) {
                Ok(v) => {
                    seed = Some(v);
                    2
                }
                Err(e) => return fail_usage(&e),
            },
            "--scenarios" => match parse_u64(arg, value) {
                Ok(v) => {
                    scenarios = Some(v);
                    2
                }
                Err(e) => return fail_usage(&e),
            },
            "--mutations" => match parse_u64(arg, value) {
                Ok(v) if v >= 1 => {
                    config.scenario.mutations = (v as usize, v as usize);
                    2
                }
                _ => return fail_usage("--mutations needs a number >= 1"),
            },
            "--out-dir" => match value {
                Some(v) => {
                    out_dir = v.clone();
                    2
                }
                None => return fail_usage("--out-dir needs a value"),
            },
            "--heavy" => {
                config.scenario.heavy_optimization = true;
                1
            }
            other => return fail_usage(&format!("unknown flag: {other}")),
        };
        i += step;
    }
    let (Some(seed), Some(scenarios)) = (seed, scenarios) else {
        return fail_usage("chaos needs both --seed and --scenarios");
    };

    let runner = ChaosRunner::new(config);
    let report = match runner.run(seed, scenarios, |done, violations| {
        if done % 10 == 0 || done == scenarios {
            eprintln!(
                "[syseco-fuzz] {done}/{scenarios} scenario(s) swept, {violations} violation(s)"
            );
        }
    }) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("syseco-fuzz: infrastructure error: {e}");
            return ExitCode::from(2);
        }
    };

    for violation in &report.violations {
        println!(
            "VIOLATION scenario {} seed {:#018x} fault {}: {}",
            violation.iteration, violation.seed, violation.fault, violation.repro.check
        );
        for d in &violation.disagreements {
            println!("  {d}");
        }
        let path = format!(
            "{out_dir}/chaos-{:016x}-{}.eco-repro",
            violation.seed,
            violation.fault.replace([':', '@', ','], "_")
        );
        if let Err(e) = save_repro(&path, &violation.repro) {
            eprintln!("syseco-fuzz: cannot write {path}: {e}");
        } else {
            println!("  repro written to {path}");
        }
    }
    let covered = report.coverage.values().filter(|&&n| n > 0).count();
    println!(
        "swept {} scenario(s) x {} fault point(s): {} run(s), {} crash-resume(s), \
         {} degraded, {} point(s) fired, {} violation(s)",
        report.scenarios,
        report.coverage.len(),
        report.runs,
        report.aborted,
        report.degraded,
        covered,
        report.violations.len()
    );
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

#[cfg(not(feature = "fault-injection"))]
fn cmd_chaos(_args: &[String]) -> ExitCode {
    eprintln!(
        "syseco-fuzz: the chaos verb needs fault injection compiled in; \
         rebuild with --features fault-injection"
    );
    ExitCode::from(2)
}

fn save_repro(path: &str, repro: &Repro) -> std::io::Result<()> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, write_repro(repro))
}

fn cmd_replay(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("syseco-fuzz: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let repro = match parse_repro(&text) {
        Ok(repro) => repro,
        Err(e) => {
            eprintln!("syseco-fuzz: cannot parse {path}: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replaying seed {:#018x} iteration {} ({})",
        repro.seed, repro.iteration, repro.check
    );
    let runner = FuzzRunner::new(FuzzConfig::default());
    match runner.replay(&repro) {
        Ok(disagreements) if disagreements.is_empty() => {
            println!("no disagreements: the repro no longer fails");
            ExitCode::SUCCESS
        }
        Ok(disagreements) => {
            for d in &disagreements {
                println!("  {d}");
            }
            println!("{} disagreement(s)", disagreements.len());
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("syseco-fuzz: infrastructure error: {e}");
            ExitCode::from(2)
        }
    }
}

fn fail_usage(message: &str) -> ExitCode {
    eprintln!("syseco-fuzz: {message}");
    usage()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => usage(),
    }
}
